//! Online anomaly detection over streaming watts.
//!
//! A meter stream can lie in three ways this module watches for:
//!
//! * **Spikes** — a sample far outside the recent noise band. The
//!   detector tracks a fast EWMA of the level and an EWMA of the absolute
//!   residual (a MAD-style scale that is robust to single outliers), and
//!   flags samples whose residual exceeds `spike_z` scale units.
//!   Consecutive spiky samples coalesce into one event.
//! * **Drift** — the level creeping away from its long-term baseline
//!   (meter mis-calibration, thermal creep). A fast EWMA
//!   (`fast_alpha`) is compared against a very slow one (`slow_alpha`);
//!   when their relative gap exceeds `drift_ratio` for `drift_min_run`
//!   consecutive samples, a drift event opens, and closes when the gap
//!   shrinks back.
//! * **Dropouts** — the meter going dark: either a time gap much larger
//!   than the running sampling cadence (`gap_factor` × the EWMA of
//!   inter-sample spacing) or a *flatline*, `flatline_run` bit-identical
//!   readings in a row (real meters quantize but still jitter; a frozen
//!   value means a stuck register, and a genuinely constant source is
//!   indistinguishable from one by design).
//!
//! Updates are **winsorized**: residuals are clamped to ±4 scale units
//! before feeding the EWMAs, so a spike cannot drag the baseline (and
//! thereby hide itself or fake a drift). After a flatline ends the spike
//! test is muted for `warmup` samples while the collapsed residual scale
//! re-inflates. All state is O(1) per stream — the detector never buffers
//! samples, which is what lets the store-backed scan run at tens of
//! millions of samples per second.

use crate::persist::StoreBackedTrace;
use crate::trace::PowerTrace;
use serde::{Deserialize, Serialize};
use tgi_trace_store::StoreError;

/// Tuning knobs for [`AnomalyDetector`]. The defaults are calibrated for
/// wall-meter streams (watts at ~1 Hz–1 kHz cadence with quantized noise)
/// and hold zero false positives on clean noisy traces.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnomalyConfig {
    /// Spike threshold in robust scale units (EWMA of |residual|). The
    /// scale is a mean absolute deviation, so for Gaussian noise a value
    /// of 8 corresponds to ≈6.4σ.
    pub spike_z: f64,
    /// Samples before spike/drift detection arms (EWMAs settling).
    pub warmup: usize,
    /// Longest coalesced spike run; a longer excursion is closed out and
    /// the baseline snaps to the new level (it is a step, not a spike).
    pub max_spike_run: usize,
    /// Fast level EWMA coefficient.
    pub fast_alpha: f64,
    /// Slow baseline EWMA coefficient.
    pub slow_alpha: f64,
    /// Residual-scale EWMA coefficient.
    pub dev_alpha: f64,
    /// Relative |fast − slow| gap that counts as drifting.
    pub drift_ratio: f64,
    /// Consecutive drifting samples before a drift event opens.
    pub drift_min_run: usize,
    /// Bit-identical samples in a row that count as a stuck meter.
    pub flatline_run: usize,
    /// A time gap beyond `gap_factor ×` the cadence EWMA is a dropout.
    pub gap_factor: f64,
}

impl Default for AnomalyConfig {
    fn default() -> Self {
        AnomalyConfig {
            spike_z: 8.0,
            warmup: 64,
            max_spike_run: 64,
            fast_alpha: 0.3,
            slow_alpha: 0.002,
            dev_alpha: 0.05,
            drift_ratio: 0.10,
            drift_min_run: 16,
            flatline_run: 32,
            gap_factor: 15.0,
        }
    }
}

/// What kind of misbehavior an [`AnomalyEvent`] flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AnomalyKind {
    /// A sample (or short run) far outside the noise band.
    Spike,
    /// The level creeping away from the long-term baseline.
    Drift,
    /// The meter going dark: a time gap or a flatlined register.
    Dropout,
}

impl AnomalyKind {
    /// Lowercase label used in JSON and metrics.
    pub fn label(&self) -> &'static str {
        match self {
            AnomalyKind::Spike => "spike",
            AnomalyKind::Drift => "drift",
            AnomalyKind::Dropout => "dropout",
        }
    }
}

/// One detected anomaly, as a closed `[start, end]` interval in trace
/// time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnomalyEvent {
    /// What misbehaved.
    pub kind: AnomalyKind,
    /// Trace time where the anomaly began.
    pub start: f64,
    /// Trace time of the last affected sample (== `start` for
    /// single-sample events; the far edge of the gap for gap dropouts).
    pub end: f64,
    /// Samples inside the interval (0 for pure time-gap dropouts).
    pub samples: usize,
    /// Kind-specific magnitude: peak robust z for spikes, peak relative
    /// gap for drifts, gap/cadence ratio or run length for dropouts.
    pub severity: f64,
    /// Kind-specific level: extreme watts for spikes, the fast EWMA at
    /// open for drifts, the stuck value for flatlines, 0 for gaps.
    pub value: f64,
}

/// Running per-kind totals, cheap to merge and serialize (the server's
/// `/healthz`, `FleetTable` rows).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnomalyCounts {
    /// Spike events.
    pub spikes: u64,
    /// Drift events.
    pub drifts: u64,
    /// Dropout events (gaps and flatlines).
    pub dropouts: u64,
}

impl AnomalyCounts {
    /// Sum over kinds.
    pub fn total(&self) -> u64 {
        self.spikes + self.drifts + self.dropouts
    }

    /// Adds another tally into this one.
    pub fn absorb(&mut self, other: AnomalyCounts) {
        self.spikes += other.spikes;
        self.drifts += other.drifts;
        self.dropouts += other.dropouts;
    }

    fn bump(&mut self, kind: AnomalyKind) {
        match kind {
            AnomalyKind::Spike => self.spikes += 1,
            AnomalyKind::Drift => self.drifts += 1,
            AnomalyKind::Dropout => self.dropouts += 1,
        }
    }
}

/// An interval event still being extended.
#[derive(Debug, Clone, Copy)]
struct OpenEvent {
    kind: AnomalyKind,
    start: f64,
    last: f64,
    samples: usize,
    severity: f64,
    value: f64,
}

impl OpenEvent {
    fn close(self) -> AnomalyEvent {
        AnomalyEvent {
            kind: self.kind,
            start: self.start,
            end: self.last,
            samples: self.samples,
            severity: self.severity,
            value: self.value,
        }
    }
}

/// Streaming detector; see the module docs for the three tests it runs.
/// Feed it samples in time order via [`push`](Self::push) and call
/// [`finish`](Self::finish) at end of stream to close open intervals.
#[derive(Debug, Clone)]
pub struct AnomalyDetector {
    config: AnomalyConfig,
    counts: AnomalyCounts,
    n: usize,
    last_t: Option<f64>,
    /// EWMA of inter-sample spacing (the cadence).
    dt_ewma: Option<f64>,
    /// Fast level, slow baseline, and robust residual scale.
    fast: f64,
    slow: f64,
    dev: f64,
    /// Current run of bit-identical watts.
    flat_bits: u64,
    flat_run: usize,
    flat_start: f64,
    /// Samples left before the spike test re-arms after a flatline.
    spike_mute: usize,
    drift_run: usize,
    drift_start: f64,
    open_spike: Option<OpenEvent>,
    open_drift: Option<OpenEvent>,
    open_flatline: Option<OpenEvent>,
}

impl AnomalyDetector {
    /// A detector with the given tuning.
    pub fn new(config: AnomalyConfig) -> Self {
        AnomalyDetector {
            config,
            counts: AnomalyCounts::default(),
            n: 0,
            last_t: None,
            dt_ewma: None,
            fast: 0.0,
            slow: 0.0,
            dev: 0.0,
            flat_bits: 0,
            flat_run: 0,
            flat_start: 0.0,
            spike_mute: 0,
            drift_run: 0,
            drift_start: 0.0,
            open_spike: None,
            open_drift: None,
            open_flatline: None,
        }
    }

    /// The tuning this detector runs with.
    pub fn config(&self) -> &AnomalyConfig {
        &self.config
    }

    /// Events opened so far, by kind (incremented when an event *opens*,
    /// so live dashboards see an anomaly while it is still in progress).
    pub fn counts(&self) -> AnomalyCounts {
        self.counts
    }

    /// Samples consumed.
    pub fn samples_seen(&self) -> usize {
        self.n
    }

    /// The minimum watts floor used for relative comparisons.
    fn scale_floor(&self) -> f64 {
        (0.002 * self.fast.abs()).max(1e-9)
    }

    /// Consumes one sample, appending any events that *close* at this
    /// sample to `out`. Gap dropouts close immediately; spikes, drifts,
    /// and flatlines close when the stream returns to normal (or at
    /// [`finish`](Self::finish)).
    pub fn push(&mut self, t: f64, watts: f64, out: &mut Vec<AnomalyEvent>) {
        let cfg = self.config;
        self.n += 1;
        if self.n == 1 {
            self.fast = watts;
            self.slow = watts;
            self.flat_bits = watts.to_bits();
            self.flat_run = 1;
            self.flat_start = t;
            self.last_t = Some(t);
            return;
        }
        let last_t = self.last_t.unwrap_or(t);
        let dt = (t - last_t).max(0.0);

        // --- Dropout: time gap vs the cadence EWMA ------------------------
        if let Some(cadence) = self.dt_ewma {
            if self.n > 8 && cadence > 0.0 && dt > cfg.gap_factor * cadence {
                let event = AnomalyEvent {
                    kind: AnomalyKind::Dropout,
                    start: last_t,
                    end: t,
                    samples: 0,
                    severity: dt / cadence,
                    value: 0.0,
                };
                self.counts.bump(AnomalyKind::Dropout);
                out.push(event);
                // The gap itself must not stretch the cadence estimate.
            } else {
                let clamped = dt.min(4.0 * cadence.max(1e-12));
                self.dt_ewma = Some(cadence + 0.1 * (clamped - cadence));
            }
        } else {
            self.dt_ewma = Some(dt);
        }

        // --- Dropout: flatlined register ---------------------------------
        if watts.to_bits() == self.flat_bits {
            self.flat_run += 1;
            if self.flat_run == cfg.flatline_run {
                self.open_flatline = Some(OpenEvent {
                    kind: AnomalyKind::Dropout,
                    start: self.flat_start,
                    last: t,
                    samples: self.flat_run,
                    severity: self.flat_run as f64,
                    value: watts,
                });
                self.counts.bump(AnomalyKind::Dropout);
            } else if let Some(open) = &mut self.open_flatline {
                open.last = t;
                open.samples = self.flat_run;
                open.severity = self.flat_run as f64;
            }
        } else {
            if let Some(open) = self.open_flatline.take() {
                out.push(open.close());
                // The frozen run collapsed the residual scale; re-arm the
                // spike test only after it re-inflates.
                self.spike_mute = cfg.warmup;
            }
            self.flat_bits = watts.to_bits();
            self.flat_run = 1;
            self.flat_start = t;
        }
        let flatlined = self.open_flatline.is_some();

        // --- Spike: robust z on the fast-EWMA residual --------------------
        let residual = watts - self.fast;
        let scale = self.dev.max(self.scale_floor());
        let z = residual.abs() / scale;
        let armed = self.n > cfg.warmup && self.spike_mute == 0 && !flatlined;
        if armed && z >= cfg.spike_z {
            let level = self.fast;
            if let Some(open) = &mut self.open_spike {
                open.last = t;
                open.samples += 1;
                if z > open.severity {
                    open.severity = z;
                }
                if (watts - level).abs() > (open.value - level).abs() {
                    open.value = watts;
                }
            } else {
                self.open_spike = Some(OpenEvent {
                    kind: AnomalyKind::Spike,
                    start: t,
                    last: t,
                    samples: 1,
                    severity: z,
                    value: watts,
                });
                self.counts.bump(AnomalyKind::Spike);
            }
            if self.open_spike.as_ref().is_some_and(|o| o.samples >= cfg.max_spike_run) {
                // A sustained excursion is a level step, not a spike:
                // close the event and accept the new level as baseline.
                let open = self.open_spike.take().expect("just observed Some");
                out.push(open.close());
                self.fast = watts;
            }
        } else if let Some(open) = self.open_spike.take() {
            out.push(open.close());
        }

        // --- EWMA updates, winsorized so outliers cannot steer them ------
        let clamp = 4.0 * scale;
        let bounded = residual.clamp(-clamp, clamp);
        self.fast += cfg.fast_alpha * bounded;
        self.slow += cfg.slow_alpha * (self.fast - self.slow);
        self.dev += cfg.dev_alpha * (bounded.abs() - self.dev);

        // --- Drift: fast level vs slow baseline --------------------------
        if self.n > cfg.warmup && !flatlined {
            let rel = (self.fast - self.slow).abs() / self.slow.abs().max(self.scale_floor());
            if rel > cfg.drift_ratio {
                if self.drift_run == 0 {
                    self.drift_start = t;
                }
                self.drift_run += 1;
                if self.drift_run == cfg.drift_min_run {
                    self.open_drift = Some(OpenEvent {
                        kind: AnomalyKind::Drift,
                        start: self.drift_start,
                        last: t,
                        samples: self.drift_run,
                        severity: rel,
                        value: self.fast,
                    });
                    self.counts.bump(AnomalyKind::Drift);
                } else if let Some(open) = &mut self.open_drift {
                    open.last = t;
                    open.samples = self.drift_run;
                    if rel > open.severity {
                        open.severity = rel;
                    }
                }
            } else {
                self.drift_run = 0;
                if let Some(open) = self.open_drift.take() {
                    out.push(open.close());
                }
            }
        }

        if self.spike_mute > 0 {
            self.spike_mute -= 1;
        }
        self.last_t = Some(t);
    }

    /// Closes any still-open intervals at end of stream.
    pub fn finish(&mut self, out: &mut Vec<AnomalyEvent>) {
        if let Some(open) = self.open_spike.take() {
            out.push(open.close());
        }
        if let Some(open) = self.open_drift.take() {
            out.push(open.close());
        }
        if let Some(open) = self.open_flatline.take() {
            out.push(open.close());
        }
        self.drift_run = 0;
    }
}

/// Scans raw sample columns with a fresh detector, returning every event
/// in time order. `times` and `watts` must be equal length and
/// `times` non-decreasing (as produced by [`PowerTrace`]).
pub fn scan_columns(times: &[f64], watts: &[f64], config: AnomalyConfig) -> Vec<AnomalyEvent> {
    assert_eq!(times.len(), watts.len(), "column lengths differ");
    let mut detector = AnomalyDetector::new(config);
    let mut out = Vec::new();
    for (&t, &w) in times.iter().zip(watts) {
        detector.push(t, w, &mut out);
    }
    detector.finish(&mut out);
    out.sort_by(|a, b| a.start.partial_cmp(&b.start).unwrap_or(std::cmp::Ordering::Equal));
    out
}

/// Scans an in-memory trace; see [`scan_columns`].
pub fn scan(trace: &PowerTrace, config: AnomalyConfig) -> Vec<AnomalyEvent> {
    scan_columns(trace.times(), trace.watts(), config)
}

/// Scans a window of a store-backed trace (whole trace when unbounded),
/// decompressing only the covered chunks.
pub fn scan_stored(
    trace: &StoreBackedTrace,
    config: AnomalyConfig,
    from: Option<f64>,
    to: Option<f64>,
) -> Result<Vec<AnomalyEvent>, StoreError> {
    let Some((first, last)) = trace.time_bounds() else {
        return Ok(Vec::new());
    };
    let window = trace.window(from.unwrap_or(first), to.unwrap_or(last))?;
    Ok(scan(&window, config))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic splitmix-style generator.
    struct Rng(u64);

    impl Rng {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        fn uniform(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Meter-like noise: ±2 W, quantized to 0.1 W.
        fn noise(&mut self) -> f64 {
            ((self.uniform() * 4.0 - 2.0) * 10.0).round() / 10.0
        }
    }

    fn clean_columns(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut rng = Rng(seed);
        let times: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let watts: Vec<f64> = (0..n).map(|_| 200.0 + rng.noise()).collect();
        (times, watts)
    }

    #[test]
    fn clean_noisy_trace_has_zero_false_positives() {
        for seed in [1, 7, 42, 1234] {
            let (times, watts) = clean_columns(50_000, seed);
            let events = scan_columns(&times, &watts, AnomalyConfig::default());
            assert!(events.is_empty(), "seed {seed}: false positives {events:?}");
        }
    }

    #[test]
    fn spike_is_detected_and_coalesced() {
        let (times, mut watts) = clean_columns(2_000, 3);
        for w in &mut watts[700..703] {
            *w = 900.0;
        }
        let events = scan_columns(&times, &watts, AnomalyConfig::default());
        let spikes: Vec<_> = events.iter().filter(|e| e.kind == AnomalyKind::Spike).collect();
        assert_eq!(spikes.len(), 1, "{events:?}");
        let spike = spikes[0];
        assert_eq!(spike.start, 700.0);
        assert_eq!(spike.end, 702.0);
        assert_eq!(spike.samples, 3);
        assert!((spike.value - 900.0).abs() < 1e-9);
        assert!(spike.severity > 100.0, "z was {}", spike.severity);
        assert!(
            events.iter().all(|e| e.kind == AnomalyKind::Spike),
            "spike must not fake drift/dropout: {events:?}"
        );
    }

    #[test]
    fn drift_ramp_is_detected_without_spike_noise() {
        let (times, mut watts) = clean_columns(3_000, 9);
        // +0.2 W per sample from t=1000 to t=1400: a +80 W (40%) creep,
        // held afterward.
        for (i, w) in watts.iter_mut().enumerate().skip(1_000) {
            *w += 0.2 * ((i - 1_000).min(400)) as f64;
        }
        let events = scan_columns(&times, &watts, AnomalyConfig::default());
        let drifts: Vec<_> = events.iter().filter(|e| e.kind == AnomalyKind::Drift).collect();
        assert!(!drifts.is_empty(), "{events:?}");
        assert!(drifts[0].start >= 1_000.0 && drifts[0].start <= 1_400.0, "{:?}", drifts[0]);
        assert!(drifts[0].severity > 0.10);
        assert!(
            events.iter().all(|e| e.kind == AnomalyKind::Drift),
            "a gentle ramp must not read as spikes/dropouts: {events:?}"
        );
    }

    #[test]
    fn flatline_is_a_dropout_and_recovery_is_not_a_spike() {
        let (times, mut watts) = clean_columns(2_000, 11);
        for w in &mut watts[800..880] {
            *w = 203.4; // frozen register
        }
        let events = scan_columns(&times, &watts, AnomalyConfig::default());
        let dropouts: Vec<_> = events.iter().filter(|e| e.kind == AnomalyKind::Dropout).collect();
        assert_eq!(dropouts.len(), 1, "{events:?}");
        assert_eq!(dropouts[0].start, 800.0);
        assert_eq!(dropouts[0].end, 879.0);
        assert_eq!(dropouts[0].samples, 80);
        assert!((dropouts[0].value - 203.4).abs() < 1e-9);
        assert!(
            events.iter().all(|e| e.kind == AnomalyKind::Dropout),
            "flatline entry/exit must not fire the spike test: {events:?}"
        );
    }

    #[test]
    fn time_gap_is_a_dropout() {
        let (mut times, watts) = clean_columns(1_000, 13);
        for t in &mut times[500..] {
            *t += 120.0; // two minutes of darkness at 1 Hz cadence
        }
        let events = scan_columns(&times, &watts, AnomalyConfig::default());
        let gaps: Vec<_> =
            events.iter().filter(|e| e.kind == AnomalyKind::Dropout && e.samples == 0).collect();
        assert_eq!(gaps.len(), 1, "{events:?}");
        assert_eq!(gaps[0].start, 499.0);
        assert_eq!(gaps[0].end, 620.0);
        assert!(gaps[0].severity > 100.0);
        assert_eq!(events.len(), 1, "gap must not disturb the level tests: {events:?}");
    }

    #[test]
    fn all_three_kinds_detected_in_one_stream() {
        let (times, mut watts) = clean_columns(4_000, 17);
        watts[900] = 1_250.0;
        for (i, w) in watts.iter_mut().enumerate().take(2_400).skip(1_500) {
            *w += 0.25 * ((i - 1_500) as f64).min(600.0);
        }
        for w in &mut watts[3_000..3_100] {
            *w = 111.1;
        }
        let events = scan_columns(&times, &watts, AnomalyConfig::default());
        let counts = |k: AnomalyKind| events.iter().filter(|e| e.kind == k).count();
        assert!(counts(AnomalyKind::Spike) >= 1, "{events:?}");
        assert!(counts(AnomalyKind::Drift) >= 1, "{events:?}");
        assert!(counts(AnomalyKind::Dropout) >= 1, "{events:?}");
    }

    #[test]
    fn detector_counts_match_emitted_events() {
        let (times, mut watts) = clean_columns(2_000, 23);
        watts[500] = 2_000.0;
        for w in &mut watts[1_200..1_260] {
            *w = 55.5;
        }
        let mut detector = AnomalyDetector::new(AnomalyConfig::default());
        let mut events = Vec::new();
        for (&t, &w) in times.iter().zip(&watts) {
            detector.push(t, w, &mut events);
        }
        detector.finish(&mut events);
        let counts = detector.counts();
        assert_eq!(
            counts.spikes,
            events.iter().filter(|e| e.kind == AnomalyKind::Spike).count() as u64
        );
        assert_eq!(
            counts.dropouts,
            events.iter().filter(|e| e.kind == AnomalyKind::Dropout).count() as u64
        );
        assert_eq!(counts.total(), events.len() as u64);
    }

    #[test]
    fn constant_source_flatlines_by_design() {
        // A perfectly constant stream is indistinguishable from a stuck
        // register — the detector flags it, documenting the contract.
        let times: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let watts = vec![250.0; 200];
        let events = scan_columns(&times, &watts, AnomalyConfig::default());
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, AnomalyKind::Dropout);
        assert_eq!(events[0].samples, 200);
    }

    #[test]
    fn empty_and_single_sample_streams_are_silent() {
        assert!(scan_columns(&[], &[], AnomalyConfig::default()).is_empty());
        assert!(scan_columns(&[0.0], &[100.0], AnomalyConfig::default()).is_empty());
    }
}
