//! Subsystem utilization: what a workload does to the machine over time.
//!
//! A [`UtilizationSample`] is an instantaneous load vector (CPU, memory,
//! disk, network, each in `[0, 1]`); a [`UtilizationProfile`] is a piecewise
//! sequence of phases, which is how the cluster simulator describes a
//! benchmark run (e.g. HPL: short memory-bound generation phase, long
//! compute phase).

use serde::{Deserialize, Serialize};

/// Instantaneous per-subsystem utilization, each in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UtilizationSample {
    /// CPU utilization across the node's cores.
    pub cpu: f64,
    /// Memory-bandwidth utilization.
    pub memory: f64,
    /// Storage utilization.
    pub disk: f64,
    /// Network utilization.
    pub network: f64,
    /// Accelerator (GPU) utilization; 0 on nodes without devices.
    #[serde(default)]
    pub accelerator: f64,
}

impl UtilizationSample {
    /// The idle vector.
    pub const IDLE: UtilizationSample =
        UtilizationSample { cpu: 0.0, memory: 0.0, disk: 0.0, network: 0.0, accelerator: 0.0 };

    /// Builds a sample, clamping every component into `[0, 1]`. Accelerator
    /// utilization starts at 0; set it with [`UtilizationSample::with_accelerator`].
    pub fn new(cpu: f64, memory: f64, disk: f64, network: f64) -> Self {
        UtilizationSample {
            cpu: clamp01(cpu),
            memory: clamp01(memory),
            disk: clamp01(disk),
            network: clamp01(network),
            accelerator: 0.0,
        }
    }

    /// Sets the accelerator utilization (clamped to `[0, 1]`).
    pub fn with_accelerator(mut self, u: f64) -> Self {
        self.accelerator = clamp01(u);
        self
    }

    /// CPU-only load (e.g. a compute kernel).
    pub fn cpu_bound(cpu: f64) -> Self {
        UtilizationSample::new(cpu, 0.3 * cpu, 0.0, 0.0)
    }

    /// Memory-bound load (e.g. STREAM): saturated memory, moderate CPU.
    pub fn memory_bound(memory: f64) -> Self {
        UtilizationSample::new(0.4 * memory, memory, 0.0, 0.0)
    }

    /// I/O-bound load (e.g. IOzone): busy disk, light CPU.
    pub fn io_bound(disk: f64) -> Self {
        UtilizationSample::new(0.15 * disk, 0.1 * disk, disk, 0.05 * disk)
    }
}

fn clamp01(v: f64) -> f64 {
    if v.is_nan() {
        0.0
    } else {
        v.clamp(0.0, 1.0)
    }
}

/// One phase of a profile: constant utilization for a duration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Phase length in seconds.
    pub duration_s: f64,
    /// Utilization during the phase.
    pub load: UtilizationSample,
}

/// A piecewise-constant utilization timeline.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct UtilizationProfile {
    phases: Vec<Phase>,
}

impl UtilizationProfile {
    /// An empty profile (zero duration).
    pub fn new() -> Self {
        UtilizationProfile::default()
    }

    /// A single-phase profile.
    pub fn constant(duration_s: f64, load: UtilizationSample) -> Self {
        let mut p = UtilizationProfile::new();
        p.push(duration_s, load);
        p
    }

    /// Appends a phase.
    ///
    /// # Panics
    /// Panics on a non-finite or negative duration.
    pub fn push(&mut self, duration_s: f64, load: UtilizationSample) {
        assert!(duration_s.is_finite() && duration_s >= 0.0, "phase duration must be non-negative");
        self.phases.push(Phase { duration_s, load });
    }

    /// Total profile duration in seconds.
    pub fn duration_s(&self) -> f64 {
        self.phases.iter().map(|p| p.duration_s).sum()
    }

    /// The phases in order.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Utilization at time `t` seconds from the start. Before 0 or past the
    /// end, the machine is idle.
    pub fn at(&self, t: f64) -> UtilizationSample {
        if t < 0.0 {
            return UtilizationSample::IDLE;
        }
        let mut elapsed = 0.0;
        for p in &self.phases {
            if t < elapsed + p.duration_s {
                return p.load;
            }
            elapsed += p.duration_s;
        }
        UtilizationSample::IDLE
    }

    /// Time-weighted average utilization over the whole profile.
    pub fn average(&self) -> UtilizationSample {
        let total = self.duration_s();
        if total == 0.0 {
            return UtilizationSample::IDLE;
        }
        let mut acc = [0.0f64; 4];
        for p in &self.phases {
            let w = p.duration_s / total;
            acc[0] += w * p.load.cpu;
            acc[1] += w * p.load.memory;
            acc[2] += w * p.load.disk;
            acc[3] += w * p.load.network;
        }
        UtilizationSample::new(acc[0], acc[1], acc[2], acc[3])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn samples_clamp_to_unit_interval() {
        let s = UtilizationSample::new(1.5, -0.2, 0.5, f64::NAN);
        assert_eq!(s.cpu, 1.0);
        assert_eq!(s.memory, 0.0);
        assert_eq!(s.disk, 0.5);
        assert_eq!(s.network, 0.0);
    }

    #[test]
    fn workload_shapes() {
        let c = UtilizationSample::cpu_bound(1.0);
        assert!(c.cpu > c.memory && c.disk == 0.0);
        let m = UtilizationSample::memory_bound(1.0);
        assert!(m.memory > m.cpu);
        let io = UtilizationSample::io_bound(1.0);
        assert!(io.disk > io.cpu && io.disk > io.memory);
    }

    #[test]
    fn profile_lookup_and_duration() {
        let mut p = UtilizationProfile::new();
        p.push(10.0, UtilizationSample::cpu_bound(1.0));
        p.push(5.0, UtilizationSample::io_bound(0.8));
        assert_eq!(p.duration_s(), 15.0);
        assert_eq!(p.at(0.0), UtilizationSample::cpu_bound(1.0));
        assert_eq!(p.at(9.999), UtilizationSample::cpu_bound(1.0));
        assert_eq!(p.at(10.0), UtilizationSample::io_bound(0.8));
        assert_eq!(p.at(14.9), UtilizationSample::io_bound(0.8));
        assert_eq!(p.at(15.0), UtilizationSample::IDLE);
        assert_eq!(p.at(-1.0), UtilizationSample::IDLE);
    }

    #[test]
    fn constant_profile() {
        let p = UtilizationProfile::constant(7.0, UtilizationSample::memory_bound(0.9));
        assert_eq!(p.duration_s(), 7.0);
        assert_eq!(p.phases().len(), 1);
        assert_eq!(p.at(3.0), UtilizationSample::memory_bound(0.9));
    }

    #[test]
    fn average_is_time_weighted() {
        let mut p = UtilizationProfile::new();
        p.push(3.0, UtilizationSample::new(1.0, 0.0, 0.0, 0.0));
        p.push(1.0, UtilizationSample::new(0.0, 1.0, 0.0, 0.0));
        let avg = p.average();
        assert!((avg.cpu - 0.75).abs() < 1e-12);
        assert!((avg.memory - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_profile_average_is_idle() {
        assert_eq!(UtilizationProfile::new().average(), UtilizationSample::IDLE);
        assert_eq!(UtilizationProfile::new().duration_s(), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_panics() {
        UtilizationProfile::new().push(-1.0, UtilizationSample::IDLE);
    }

    proptest! {
        /// The average always lies in the unit hypercube.
        #[test]
        fn prop_average_in_bounds(
            phases in proptest::collection::vec((0.1..100.0f64, 0.0..1.0f64, 0.0..1.0f64), 1..8)
        ) {
            let mut p = UtilizationProfile::new();
            for (d, cpu, mem) in phases {
                p.push(d, UtilizationSample::new(cpu, mem, 0.0, 0.0));
            }
            let avg = p.average();
            prop_assert!((0.0..=1.0).contains(&avg.cpu));
            prop_assert!((0.0..=1.0).contains(&avg.memory));
        }

        /// at() never escapes phase bounds: any query returns a sample equal
        /// to one of the phase loads or IDLE.
        #[test]
        fn prop_at_returns_known_sample(t in -10.0..200.0f64) {
            let mut p = UtilizationProfile::new();
            p.push(10.0, UtilizationSample::cpu_bound(0.5));
            p.push(20.0, UtilizationSample::io_bound(0.7));
            let s = p.at(t);
            let known = [
                UtilizationSample::cpu_bound(0.5),
                UtilizationSample::io_bound(0.7),
                UtilizationSample::IDLE,
            ];
            prop_assert!(known.contains(&s));
        }
    }
}
