//! Reading and writing meter logs.
//!
//! Watts Up?-class loggers emit one `elapsed_seconds,watts` sample per
//! line; studies archive those CSVs. This module round-trips
//! [`PowerTrace`]s through that format, with strict parsing (a corrupted
//! log should fail loudly, not silently skew an energy number).
//!
//! Both directions stream: [`write_log`] emits lines into any
//! [`io::Write`] through a `BufWriter` (no whole-file `String` is built),
//! and [`from_reader`] parses line-by-line from any [`BufRead`]. Each
//! parsed line is validated once here — with a line number for the error —
//! and then appended without the trace re-checking the same invariants.

use crate::trace::PowerTrace;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Errors while parsing a meter log.
#[derive(Debug)]
pub enum LogError {
    /// Filesystem error.
    Io(std::io::Error),
    /// A line that is not `seconds,watts`.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// Timestamps went backwards or values were negative/non-finite.
    Invalid {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: &'static str,
    },
}

impl std::fmt::Display for LogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogError::Io(e) => write!(f, "I/O error: {e}"),
            LogError::Malformed { line, content } => {
                write!(f, "malformed meter log line {line}: `{content}`")
            }
            LogError::Invalid { line, reason } => {
                write!(f, "invalid sample at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for LogError {}

impl From<std::io::Error> for LogError {
    fn from(e: std::io::Error) -> Self {
        LogError::Io(e)
    }
}

/// Streams a trace as `seconds,watts` lines with a header into `writer`,
/// buffering internally.
pub fn write_log<W: Write>(trace: &PowerTrace, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(b"seconds,watts\n")?;
    for (t, p) in trace.times().iter().zip(trace.watts()) {
        writeln!(w, "{t},{p}")?;
    }
    w.flush()
}

/// Serializes a trace as `seconds,watts` lines with a header. Thin wrapper
/// over [`write_log`] into an in-memory buffer.
pub fn to_log(trace: &PowerTrace) -> String {
    let mut buf = Vec::with_capacity(16 * trace.len() + 16);
    write_log(trace, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("meter logs are ASCII")
}

/// Parses and validates one log line, appending the sample on success. The
/// trace does not re-validate: this is the single validation pass.
///
/// `seen_content` tracks whether any header or sample has appeared yet:
/// the `seconds,watts` header is accepted on the first *non-blank* line
/// (real archives open with blank lines, CRLF endings, or a UTF-8 BOM),
/// but a header after data — or a second header — stays a hard error.
fn parse_line(
    trace: &mut PowerTrace,
    last_t: &mut f64,
    seen_content: &mut bool,
    line: usize,
    raw: &str,
) -> Result<(), LogError> {
    // A leading byte-order mark is only tolerated before any content —
    // exactly where editors and exporters put one.
    let content =
        if *seen_content { raw.trim() } else { raw.trim_start_matches('\u{feff}').trim() };
    if content.is_empty() {
        return Ok(());
    }
    if !*seen_content && content.eq_ignore_ascii_case("seconds,watts") {
        *seen_content = true;
        return Ok(());
    }
    *seen_content = true;
    let (ts, ws) = content
        .split_once(',')
        .ok_or_else(|| LogError::Malformed { line, content: content.to_string() })?;
    let t: f64 = ts
        .trim()
        .parse()
        .map_err(|_| LogError::Malformed { line, content: content.to_string() })?;
    let w: f64 = ws
        .trim()
        .parse()
        .map_err(|_| LogError::Malformed { line, content: content.to_string() })?;
    if !t.is_finite() || t < 0.0 {
        return Err(LogError::Invalid { line, reason: "timestamp not finite/non-negative" });
    }
    if t < *last_t {
        return Err(LogError::Invalid { line, reason: "timestamps went backwards" });
    }
    if !w.is_finite() || w < 0.0 {
        return Err(LogError::Invalid { line, reason: "power not finite/non-negative" });
    }
    *last_t = t;
    trace.push_unvalidated(t, w);
    Ok(())
}

/// Parses a meter log from text. Accepts an optional `seconds,watts`
/// header on the first non-blank line, CRLF line endings, a leading UTF-8
/// BOM, and blank lines anywhere (including a trailing run); rejects
/// anything else.
pub fn from_log(text: &str) -> Result<PowerTrace, LogError> {
    let mut trace = PowerTrace::new();
    let mut last_t = f64::NEG_INFINITY;
    let mut seen_content = false;
    for (idx, raw) in text.lines().enumerate() {
        parse_line(&mut trace, &mut last_t, &mut seen_content, idx + 1, raw)?;
    }
    Ok(trace)
}

/// Streams a meter log out of any buffered reader without materializing the
/// whole file, line-validating as it goes. Tolerates the same dialect as
/// [`from_log`]: optional header, CRLF endings, leading BOM, blank lines.
pub fn from_reader<R: BufRead>(reader: R) -> Result<PowerTrace, LogError> {
    let mut trace = PowerTrace::new();
    let mut last_t = f64::NEG_INFINITY;
    let mut seen_content = false;
    for (idx, line) in reader.lines().enumerate() {
        parse_line(&mut trace, &mut last_t, &mut seen_content, idx + 1, &line?)?;
    }
    Ok(trace)
}

/// Writes a trace to a log file.
pub fn write_log_file(trace: &PowerTrace, path: &Path) -> Result<(), LogError> {
    Ok(write_log(trace, std::fs::File::create(path)?)?)
}

/// Reads a trace from a log file through a `BufReader` (long telemetry
/// archives never sit fully in memory).
pub fn read_log(path: &Path) -> Result<PowerTrace, LogError> {
    from_reader(BufReader::new(std::fs::File::open(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use tgi_core::Watts;

    fn trace(points: &[(f64, f64)]) -> PowerTrace {
        let mut t = PowerTrace::new();
        for &(time, w) in points {
            t.push(time, Watts::new(w));
        }
        t
    }

    #[test]
    fn text_round_trip_preserves_energy() {
        let t = trace(&[(0.0, 100.0), (1.0, 150.5), (2.0, 120.25)]);
        let back = from_log(&to_log(&t)).expect("well-formed");
        assert_eq!(back.len(), 3);
        assert!((back.energy().value() - t.energy().value()).abs() < 1e-9);
        assert_eq!(back.sample(1).watts, 150.5);
    }

    #[test]
    fn streamed_writer_and_reader_round_trip() {
        let t = trace(&[(0.0, 250.0), (0.5, 245.5), (1.5, 251.0)]);
        let mut buf = Vec::new();
        write_log(&t, &mut buf).expect("in-memory write");
        assert_eq!(String::from_utf8(buf.clone()).unwrap(), to_log(&t));
        let back = from_reader(buf.as_slice()).expect("streamed read");
        assert_eq!(back, t);
        assert_eq!(back.prefix_energy(), t.prefix_energy());
    }

    #[test]
    fn header_and_blank_lines_accepted() {
        let text = "seconds,watts\n\n0,100\n1,200\n\n";
        let t = from_log(text).expect("tolerates blanks");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn headerless_log_accepted() {
        let t = from_log("0,100\n1,110\n").expect("headerless");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn crlf_logs_with_trailing_blanks_accepted() {
        // Windows-archived logs: CRLF endings and a run of trailing blank
        // lines, through both the text and the streaming entry points.
        let text = "seconds,watts\r\n0,100\r\n1,200\r\n\r\n\r\n";
        let t = from_log(text).expect("CRLF text");
        assert_eq!(t.len(), 2);
        let t = from_reader(text.as_bytes()).expect("CRLF stream");
        assert_eq!(t.len(), 2);
        assert_eq!(t.sample(1).watts, 200.0);
    }

    #[test]
    fn header_after_leading_blank_lines_accepted() {
        let t = from_log("\n\nseconds,watts\n0,100\n1,110\n").expect("leading blanks");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn bom_prefixed_header_accepted() {
        let t = from_log("\u{feff}seconds,watts\n0,100\n").expect("BOM header");
        assert_eq!(t.len(), 1);
        let t = from_reader("\u{feff}0,100\n1,110\n".as_bytes()).expect("BOM data");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn header_is_only_accepted_before_data() {
        // A second header, or a header after samples, is still corruption.
        assert!(matches!(
            from_log("seconds,watts\nseconds,watts\n0,100\n"),
            Err(LogError::Malformed { line: 2, .. })
        ));
        assert!(matches!(
            from_log("0,100\nseconds,watts\n"),
            Err(LogError::Malformed { line: 2, .. })
        ));
    }

    #[test]
    fn malformed_lines_rejected_with_position() {
        for (text, bad_line) in
            [("0,100\ngarbage\n", 2), ("0,100\n1;200\n", 2), ("abc,100\n", 1), ("0,watts\n", 1)]
        {
            match from_log(text) {
                Err(LogError::Malformed { line, .. }) => assert_eq!(line, bad_line, "{text}"),
                other => panic!("expected Malformed for {text:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn invalid_values_rejected() {
        assert!(matches!(from_log("0,100\n0.5,-5\n"), Err(LogError::Invalid { line: 2, .. })));
        assert!(matches!(from_log("1,100\n0.5,100\n"), Err(LogError::Invalid { line: 2, .. })));
        assert!(matches!(from_log("-1,100\n"), Err(LogError::Invalid { line: 1, .. })));
        assert!(matches!(from_log("0,inf\n"), Err(LogError::Invalid { line: 1, .. })));
    }

    #[test]
    fn file_round_trip() {
        let path = std::env::temp_dir().join(format!("tgi_meter_log_{}.csv", std::process::id()));
        let t = trace(&[(0.0, 250.0), (1.0, 260.0)]);
        write_log_file(&t, &path).expect("writable");
        let back = read_log(&path).expect("readable");
        assert_eq!(back.len(), 2);
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn error_messages_are_actionable() {
        let err = from_log("nope").unwrap_err();
        assert!(err.to_string().contains("line 1"));
        assert!(err.to_string().contains("nope"));
    }

    proptest! {
        /// Any valid trace survives the text round trip sample-for-sample.
        #[test]
        fn prop_round_trip(
            powers in proptest::collection::vec(0.0..5000.0f64, 1..64),
        ) {
            let mut t = PowerTrace::new();
            for (i, &w) in powers.iter().enumerate() {
                t.push(i as f64 * 0.5, Watts::new(w));
            }
            let back = from_log(&to_log(&t)).expect("round trip");
            prop_assert_eq!(back.len(), t.len());
            for (a, b) in back.iter().zip(t.iter()) {
                prop_assert!((a.t - b.t).abs() < 1e-12);
                prop_assert!((a.watts - b.watts).abs() < 1e-12);
            }
        }
    }
}
