//! Reading and writing meter logs.
//!
//! Watts Up?-class loggers emit one `elapsed_seconds,watts` sample per
//! line; studies archive those CSVs. This module round-trips
//! [`PowerTrace`]s through that format, with strict parsing (a corrupted
//! log should fail loudly, not silently skew an energy number).

use crate::trace::PowerTrace;
use std::path::Path;
use tgi_core::Watts;

/// Errors while parsing a meter log.
#[derive(Debug)]
pub enum LogError {
    /// Filesystem error.
    Io(std::io::Error),
    /// A line that is not `seconds,watts`.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// Timestamps went backwards or values were negative/non-finite.
    Invalid {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: &'static str,
    },
}

impl std::fmt::Display for LogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogError::Io(e) => write!(f, "I/O error: {e}"),
            LogError::Malformed { line, content } => {
                write!(f, "malformed meter log line {line}: `{content}`")
            }
            LogError::Invalid { line, reason } => {
                write!(f, "invalid sample at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for LogError {}

impl From<std::io::Error> for LogError {
    fn from(e: std::io::Error) -> Self {
        LogError::Io(e)
    }
}

/// Serializes a trace as `seconds,watts` lines with a header.
pub fn to_log(trace: &PowerTrace) -> String {
    let mut out = String::from("seconds,watts\n");
    for s in trace.samples() {
        out.push_str(&format!("{},{}\n", s.t, s.watts));
    }
    out
}

/// Parses a meter log. Accepts an optional `seconds,watts` header and blank
/// lines; rejects anything else.
pub fn from_log(text: &str) -> Result<PowerTrace, LogError> {
    let mut trace = PowerTrace::new();
    let mut last_t = f64::NEG_INFINITY;
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let content = raw.trim();
        if content.is_empty() || (idx == 0 && content.eq_ignore_ascii_case("seconds,watts")) {
            continue;
        }
        let (ts, ws) = content
            .split_once(',')
            .ok_or_else(|| LogError::Malformed { line, content: content.to_string() })?;
        let t: f64 = ts
            .trim()
            .parse()
            .map_err(|_| LogError::Malformed { line, content: content.to_string() })?;
        let w: f64 = ws
            .trim()
            .parse()
            .map_err(|_| LogError::Malformed { line, content: content.to_string() })?;
        if !t.is_finite() || t < 0.0 {
            return Err(LogError::Invalid { line, reason: "timestamp not finite/non-negative" });
        }
        if t < last_t {
            return Err(LogError::Invalid { line, reason: "timestamps went backwards" });
        }
        if !w.is_finite() || w < 0.0 {
            return Err(LogError::Invalid { line, reason: "power not finite/non-negative" });
        }
        last_t = t;
        trace.push(t, Watts::new(w));
    }
    Ok(trace)
}

/// Writes a trace to a log file.
pub fn write_log(trace: &PowerTrace, path: &Path) -> Result<(), LogError> {
    Ok(std::fs::write(path, to_log(trace))?)
}

/// Reads a trace from a log file.
pub fn read_log(path: &Path) -> Result<PowerTrace, LogError> {
    from_log(&std::fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn trace(points: &[(f64, f64)]) -> PowerTrace {
        let mut t = PowerTrace::new();
        for &(time, w) in points {
            t.push(time, Watts::new(w));
        }
        t
    }

    #[test]
    fn text_round_trip_preserves_energy() {
        let t = trace(&[(0.0, 100.0), (1.0, 150.5), (2.0, 120.25)]);
        let back = from_log(&to_log(&t)).expect("well-formed");
        assert_eq!(back.len(), 3);
        assert!((back.energy().value() - t.energy().value()).abs() < 1e-9);
        assert_eq!(back.samples()[1].watts, 150.5);
    }

    #[test]
    fn header_and_blank_lines_accepted() {
        let text = "seconds,watts\n\n0,100\n1,200\n\n";
        let t = from_log(text).expect("tolerates blanks");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn headerless_log_accepted() {
        let t = from_log("0,100\n1,110\n").expect("headerless");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn malformed_lines_rejected_with_position() {
        for (text, bad_line) in
            [("0,100\ngarbage\n", 2), ("0,100\n1;200\n", 2), ("abc,100\n", 1), ("0,watts\n", 1)]
        {
            match from_log(text) {
                Err(LogError::Malformed { line, .. }) => assert_eq!(line, bad_line, "{text}"),
                other => panic!("expected Malformed for {text:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn invalid_values_rejected() {
        assert!(matches!(from_log("0,100\n0.5,-5\n"), Err(LogError::Invalid { line: 2, .. })));
        assert!(matches!(from_log("1,100\n0.5,100\n"), Err(LogError::Invalid { line: 2, .. })));
        assert!(matches!(from_log("-1,100\n"), Err(LogError::Invalid { line: 1, .. })));
        assert!(matches!(from_log("0,inf\n"), Err(LogError::Invalid { line: 1, .. })));
    }

    #[test]
    fn file_round_trip() {
        let path = std::env::temp_dir().join(format!("tgi_meter_log_{}.csv", std::process::id()));
        let t = trace(&[(0.0, 250.0), (1.0, 260.0)]);
        write_log(&t, &path).expect("writable");
        let back = read_log(&path).expect("readable");
        assert_eq!(back.len(), 2);
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn error_messages_are_actionable() {
        let err = from_log("nope").unwrap_err();
        assert!(err.to_string().contains("line 1"));
        assert!(err.to_string().contains("nope"));
    }

    proptest! {
        /// Any valid trace survives the text round trip sample-for-sample.
        #[test]
        fn prop_round_trip(
            powers in proptest::collection::vec(0.0..5000.0f64, 1..64),
        ) {
            let mut t = PowerTrace::new();
            for (i, &w) in powers.iter().enumerate() {
                t.push(i as f64 * 0.5, Watts::new(w));
            }
            let back = from_log(&to_log(&t)).expect("round trip");
            prop_assert_eq!(back.len(), t.len());
            for (a, b) in back.samples().iter().zip(t.samples()) {
                prop_assert!((a.t - b.t).abs() < 1e-12);
                prop_assert!((a.watts - b.watts).abs() < 1e-12);
            }
        }
    }
}
