//! Time-stamped power traces and energy integration.
//!
//! A real Watts Up? logger produces a sequence of `(time, watts)` samples;
//! energy is the integral of power over time. [`PowerTrace`] stores samples
//! and integrates with the trapezoidal rule, which is exact for the
//! piecewise-linear interpolation of the samples.

use serde::{Deserialize, Serialize};
use tgi_core::{Joules, Seconds, Watts};

/// One power sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerSample {
    /// Seconds from trace start.
    pub t: f64,
    /// Instantaneous wall power.
    pub watts: f64,
}

/// A sequence of power samples with monotonically non-decreasing timestamps.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PowerTrace {
    samples: Vec<PowerSample>,
}

impl PowerTrace {
    /// An empty trace.
    pub fn new() -> Self {
        PowerTrace::default()
    }

    /// Appends a sample.
    ///
    /// # Panics
    /// Panics if `t` precedes the previous sample or any value is not
    /// finite/non-negative.
    pub fn push(&mut self, t: f64, watts: Watts) {
        assert!(t.is_finite() && t >= 0.0, "sample time must be finite and non-negative");
        let w = watts.value();
        assert!(w.is_finite() && w >= 0.0, "power must be finite and non-negative");
        if let Some(last) = self.samples.last() {
            assert!(t >= last.t, "sample times must be non-decreasing");
        }
        self.samples.push(PowerSample { t, watts: w });
    }

    /// The samples in order.
    pub fn samples(&self) -> &[PowerSample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Trace duration: time between the first and last sample.
    pub fn duration(&self) -> Seconds {
        match (self.samples.first(), self.samples.last()) {
            (Some(a), Some(b)) => Seconds::new(b.t - a.t),
            _ => Seconds::new(0.0),
        }
    }

    /// Total energy by trapezoidal integration.
    pub fn energy(&self) -> Joules {
        let mut e = 0.0;
        for w in self.samples.windows(2) {
            let dt = w[1].t - w[0].t;
            e += 0.5 * (w[0].watts + w[1].watts) * dt;
        }
        Joules::new(e)
    }

    /// Time-weighted average power (energy / duration). Falls back to the
    /// plain sample mean when the trace spans zero time.
    pub fn average_power(&self) -> Watts {
        let d = self.duration().value();
        if d > 0.0 {
            Watts::new(self.energy().value() / d)
        } else if !self.samples.is_empty() {
            Watts::new(self.samples.iter().map(|s| s.watts).sum::<f64>() / self.len() as f64)
        } else {
            Watts::new(0.0)
        }
    }

    /// Peak sampled power.
    pub fn peak_power(&self) -> Watts {
        Watts::new(self.samples.iter().map(|s| s.watts).fold(0.0, f64::max))
    }

    /// Minimum sampled power (0 for an empty trace).
    pub fn min_power(&self) -> Watts {
        if self.samples.is_empty() {
            return Watts::new(0.0);
        }
        Watts::new(self.samples.iter().map(|s| s.watts).fold(f64::INFINITY, f64::min))
    }

    /// Concatenates another trace, shifting its timestamps to start at this
    /// trace's end.
    ///
    /// # Panics
    /// Panics under the same invariants as [`PowerTrace::push`]: the shifted
    /// samples must keep timestamps non-decreasing and values finite.
    pub fn extend_shifted(&mut self, other: &PowerTrace) {
        let offset = self.samples.last().map(|s| s.t).unwrap_or(0.0);
        for s in &other.samples {
            self.push(offset + s.t, Watts::new(s.watts));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn trace(points: &[(f64, f64)]) -> PowerTrace {
        let mut t = PowerTrace::new();
        for &(time, w) in points {
            t.push(time, Watts::new(w));
        }
        t
    }

    #[test]
    fn constant_power_energy() {
        // 100 W for 10 s = 1000 J.
        let t = trace(&[(0.0, 100.0), (5.0, 100.0), (10.0, 100.0)]);
        assert!((t.energy().value() - 1000.0).abs() < 1e-9);
        assert!((t.average_power().value() - 100.0).abs() < 1e-9);
        assert_eq!(t.duration().value(), 10.0);
    }

    #[test]
    fn ramp_energy_is_trapezoid() {
        // Linear ramp 0→100 W over 10 s: energy = 500 J.
        let t = trace(&[(0.0, 0.0), (10.0, 100.0)]);
        assert!((t.energy().value() - 500.0).abs() < 1e-9);
        assert!((t.average_power().value() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn peak_and_min() {
        let t = trace(&[(0.0, 80.0), (1.0, 250.0), (2.0, 120.0)]);
        assert_eq!(t.peak_power().value(), 250.0);
        assert_eq!(t.min_power().value(), 80.0);
    }

    #[test]
    fn empty_trace_defaults() {
        let t = PowerTrace::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.energy().value(), 0.0);
        assert_eq!(t.duration().value(), 0.0);
        assert_eq!(t.average_power().value(), 0.0);
        // Regression: this used to report f64::MAX.
        assert_eq!(t.min_power().value(), 0.0);
        assert_eq!(t.peak_power().value(), 0.0);
    }

    #[test]
    fn single_sample_average_is_that_sample() {
        let t = trace(&[(3.0, 42.0)]);
        assert_eq!(t.average_power().value(), 42.0);
        assert_eq!(t.energy().value(), 0.0);
    }

    #[test]
    fn extend_shifted_concatenates() {
        let mut a = trace(&[(0.0, 100.0), (10.0, 100.0)]);
        let b = trace(&[(0.0, 200.0), (5.0, 200.0)]);
        a.extend_shifted(&b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.samples()[2].t, 10.0);
        assert_eq!(a.samples()[3].t, 15.0);
        // Energy: 1000 J + 1000 J + transition trapezoid (0 s wide) = 2000 J.
        assert!((a.energy().value() - 2000.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn extend_shifted_validates_samples() {
        // Regression: extend_shifted used to push into `samples` directly,
        // so a trace that bypassed `push` validation (e.g. deserialized from
        // JSON) could smuggle invalid samples into a clean trace.
        let bad: PowerTrace =
            serde_json::from_str(r#"{"samples":[{"t":0.0,"watts":-25.0}]}"#).unwrap();
        let mut clean = trace(&[(0.0, 100.0)]);
        clean.extend_shifted(&bad);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn out_of_order_push_panics() {
        let mut t = trace(&[(5.0, 100.0)]);
        t.push(4.0, Watts::new(100.0));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_power_panics() {
        let mut t = PowerTrace::new();
        t.push(0.0, Watts::new(-5.0));
    }

    proptest! {
        /// Energy is within [min·T, max·T] for any trace.
        #[test]
        fn prop_energy_bounds(
            powers in proptest::collection::vec(1.0..1000.0f64, 2..32),
            dt in 0.1..10.0f64,
        ) {
            let mut t = PowerTrace::new();
            for (i, &w) in powers.iter().enumerate() {
                t.push(i as f64 * dt, Watts::new(w));
            }
            let dur = t.duration().value();
            let lo = powers.iter().cloned().fold(f64::INFINITY, f64::min) * dur;
            let hi = powers.iter().cloned().fold(0.0, f64::max) * dur;
            let e = t.energy().value();
            prop_assert!(e >= lo - 1e-6);
            prop_assert!(e <= hi + 1e-6);
            // average power equals energy / duration by construction
            prop_assert!((t.average_power().value() - e / dur).abs() < 1e-9);
        }

        /// Doubling every power value doubles the energy (linearity).
        #[test]
        fn prop_energy_linear(
            powers in proptest::collection::vec(1.0..500.0f64, 2..16),
        ) {
            let mut t1 = PowerTrace::new();
            let mut t2 = PowerTrace::new();
            for (i, &w) in powers.iter().enumerate() {
                t1.push(i as f64, Watts::new(w));
                t2.push(i as f64, Watts::new(2.0 * w));
            }
            prop_assert!((t2.energy().value() - 2.0 * t1.energy().value()).abs() < 1e-6);
        }
    }
}
