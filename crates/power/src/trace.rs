//! Time-stamped power traces: indexed struct-of-arrays storage with
//! O(1)/O(log n) energy queries.
//!
//! A real Watts Up? logger produces a sequence of `(time, watts)` samples;
//! energy is the integral of power over time, integrated with the
//! trapezoidal rule (exact for the piecewise-linear interpolation of the
//! samples). Deployments ingest long high-rate telemetry streams and query
//! them constantly, so [`PowerTrace`] is an *analytics structure*, not a
//! plain vector:
//!
//! * samples are stored as parallel `times`/`watts` arrays
//!   (struct-of-arrays), so scans touch only the column they need;
//! * a prefix index is maintained incrementally on every append:
//!   `cum_energy[i]` is the trapezoidal energy of samples `0..=i` and
//!   `cum_watts[i]` is the running sum of the first `i + 1` power values,
//!   alongside running peak/min watts;
//! * [`PowerTrace::energy`], [`PowerTrace::average_power`],
//!   [`PowerTrace::peak_power`] and [`PowerTrace::min_power`] are O(1);
//!   [`PowerTrace::energy_between`], [`PowerTrace::power_at`] and
//!   [`PowerTrace::window`] are O(log n) binary searches over the index.
//!
//! `cum_energy` is accumulated in sample order with exactly the operations
//! the naive trapezoid loop performs, so `energy()` is bit-identical to a
//! from-scratch integration of the same samples.

use serde::{DeError, Deserialize, Serialize, Value};
use tgi_core::{Joules, Seconds, Watts};

/// One power sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerSample {
    /// Seconds from trace start.
    pub t: f64,
    /// Instantaneous wall power.
    pub watts: f64,
}

/// A sequence of power samples with monotonically non-decreasing timestamps,
/// stored as struct-of-arrays with an incrementally maintained prefix index.
#[derive(Debug, Clone)]
pub struct PowerTrace {
    times: Vec<f64>,
    watts: Vec<f64>,
    /// `cum_energy[i]` = trapezoidal energy over samples `0..=i` (so
    /// `cum_energy[0] == 0` and `cum_energy.last()` is the total energy).
    cum_energy: Vec<f64>,
    /// `cum_watts[i]` = `watts[0] + … + watts[i]`, accumulated in order.
    cum_watts: Vec<f64>,
    /// Running maximum power (0 until the first sample, matching the old
    /// `fold(0.0, f64::max)` semantics for non-negative watts).
    peak_w: f64,
    /// Running minimum power (+∞ until the first sample).
    min_w: f64,
}

impl Default for PowerTrace {
    fn default() -> Self {
        PowerTrace::new()
    }
}

impl PartialEq for PowerTrace {
    fn eq(&self, other: &Self) -> bool {
        // The index and running extrema are functions of the samples.
        self.times == other.times && self.watts == other.watts
    }
}

impl PowerTrace {
    /// An empty trace.
    pub fn new() -> Self {
        PowerTrace::with_capacity(0)
    }

    /// An empty trace with room for `n` samples (telemetry ingest paths
    /// know their cadence and duration up front).
    pub fn with_capacity(n: usize) -> Self {
        PowerTrace {
            times: Vec::with_capacity(n),
            watts: Vec::with_capacity(n),
            cum_energy: Vec::with_capacity(n),
            cum_watts: Vec::with_capacity(n),
            peak_w: 0.0,
            min_w: f64::INFINITY,
        }
    }

    /// Appends a sample and extends the prefix index — O(1) amortized.
    ///
    /// # Panics
    /// Panics if `t` precedes the previous sample or any value is not
    /// finite/non-negative.
    pub fn push(&mut self, t: f64, watts: Watts) {
        assert!(t.is_finite() && t >= 0.0, "sample time must be finite and non-negative");
        let w = watts.value();
        assert!(w.is_finite() && w >= 0.0, "power must be finite and non-negative");
        if let Some(&last) = self.times.last() {
            assert!(t >= last, "sample times must be non-decreasing");
        }
        self.append(t, w);
    }

    /// Appends a pre-validated sample (ingest paths that have already
    /// checked the invariants line-by-line, e.g. the meter-log parser).
    pub(crate) fn push_unvalidated(&mut self, t: f64, w: f64) {
        self.append(t, w);
    }

    /// Appends a sample and maintains the index. No validation.
    fn append(&mut self, t: f64, w: f64) {
        let (ce, cw) = match self.times.last() {
            Some(&lt) => {
                let dt = t - lt;
                let prev_w = *self.watts.last().expect("columns stay in lockstep");
                (
                    self.cum_energy.last().unwrap() + 0.5 * (prev_w + w) * dt,
                    self.cum_watts.last().unwrap() + w,
                )
            }
            None => (0.0, w),
        };
        self.times.push(t);
        self.watts.push(w);
        self.cum_energy.push(ce);
        self.cum_watts.push(cw);
        self.peak_w = self.peak_w.max(w);
        self.min_w = self.min_w.min(w);
    }

    /// Batch-ingests parallel `times`/`watts` columns: one tight validation
    /// pass over the input, then a straight append (no per-sample `push`
    /// re-validation against the growing trace).
    ///
    /// # Panics
    /// Panics under the same invariants as [`PowerTrace::push`], or if the
    /// slices have different lengths.
    pub fn extend_from_slices(&mut self, times: &[f64], watts: &[f64]) {
        assert_eq!(times.len(), watts.len(), "times and watts must have equal lengths");
        let mut last = self.times.last().copied().unwrap_or(f64::NEG_INFINITY);
        for (&t, &w) in times.iter().zip(watts) {
            assert!(t.is_finite() && t >= 0.0, "sample time must be finite and non-negative");
            assert!(w.is_finite() && w >= 0.0, "power must be finite and non-negative");
            assert!(t >= last, "sample times must be non-decreasing");
            last = t;
        }
        self.reserve(times.len());
        for (&t, &w) in times.iter().zip(watts) {
            self.append(t, w);
        }
    }

    /// Reserves room for `n` more samples across all columns.
    pub fn reserve(&mut self, n: usize) {
        self.times.reserve(n);
        self.watts.reserve(n);
        self.cum_energy.reserve(n);
        self.cum_watts.reserve(n);
    }

    /// The sample timestamps, in seconds from trace start.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// The sampled power values, in watts.
    pub fn watts(&self) -> &[f64] {
        &self.watts
    }

    /// The prefix-energy index: `prefix_energy()[i]` is the trapezoidal
    /// energy of samples `0..=i`. Exposed for analysis code and tests that
    /// verify the index invariant.
    pub fn prefix_energy(&self) -> &[f64] {
        &self.cum_energy
    }

    /// The inclusive prefix sums of the power column (crate-internal: the
    /// analysis module differences these for O(1) window means).
    pub(crate) fn prefix_watts(&self) -> &[f64] {
        &self.cum_watts
    }

    /// The `i`-th sample.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn sample(&self, i: usize) -> PowerSample {
        PowerSample { t: self.times[i], watts: self.watts[i] }
    }

    /// Iterates the samples in order without materializing them.
    pub fn iter(&self) -> impl Iterator<Item = PowerSample> + '_ {
        self.times.iter().zip(&self.watts).map(|(&t, &w)| PowerSample { t, watts: w })
    }

    /// Materializes the samples as an array-of-structs `Vec` (compatibility
    /// accessor; allocates — hot paths should use [`PowerTrace::times`] /
    /// [`PowerTrace::watts`] or [`PowerTrace::iter`]).
    pub fn samples(&self) -> Vec<PowerSample> {
        self.iter().collect()
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// First and last sample timestamps, when the trace is non-empty.
    pub fn time_bounds(&self) -> Option<(f64, f64)> {
        match (self.times.first(), self.times.last()) {
            (Some(&a), Some(&b)) => Some((a, b)),
            _ => None,
        }
    }

    /// Trace duration: time between the first and last sample. O(1).
    pub fn duration(&self) -> Seconds {
        match self.time_bounds() {
            Some((a, b)) => Seconds::new(b - a),
            None => Seconds::new(0.0),
        }
    }

    /// Total energy by trapezoidal integration — O(1) from the prefix
    /// index, bit-identical to integrating the samples from scratch.
    pub fn energy(&self) -> Joules {
        Joules::new(self.cum_energy.last().copied().unwrap_or(0.0))
    }

    /// Time-weighted average power (energy / duration) — O(1). Falls back
    /// to the plain sample mean when the trace spans zero time.
    pub fn average_power(&self) -> Watts {
        let d = self.duration().value();
        if d > 0.0 {
            Watts::new(self.energy().value() / d)
        } else if let Some(&total) = self.cum_watts.last() {
            Watts::new(total / self.len() as f64)
        } else {
            Watts::new(0.0)
        }
    }

    /// Peak sampled power — O(1).
    pub fn peak_power(&self) -> Watts {
        Watts::new(if self.is_empty() { 0.0 } else { self.peak_w })
    }

    /// Minimum sampled power (0 for an empty trace) — O(1).
    pub fn min_power(&self) -> Watts {
        Watts::new(if self.is_empty() { 0.0 } else { self.min_w })
    }

    /// Cumulative trapezoidal energy from the trace start to time `t`,
    /// assuming a non-empty trace and `first <= t <= last`.
    fn cum_energy_at(&self, t: f64) -> f64 {
        // Greatest index whose timestamp is <= t; duplicates resolve to the
        // last of the group, so the partial segment below has dt > 0.
        let i = self.times.partition_point(|&x| x <= t) - 1;
        let base = self.cum_energy[i];
        if t <= self.times[i] {
            return base;
        }
        let dt = t - self.times[i];
        let seg = self.times[i + 1] - self.times[i];
        let w_t = self.watts[i] + (self.watts[i + 1] - self.watts[i]) * (dt / seg);
        base + 0.5 * (self.watts[i] + w_t) * dt
    }

    /// Trapezoidal energy over `[t0, t1]` (clamped to the trace span) —
    /// O(log n) from the prefix index. Returns 0 for an empty trace or an
    /// empty clamped interval.
    ///
    /// # Panics
    /// Panics if either bound is NaN (infinities clamp to the trace span).
    pub fn energy_between(&self, t0: f64, t1: f64) -> Joules {
        assert!(!t0.is_nan() && !t1.is_nan(), "window bounds must not be NaN");
        let (first, last) = match self.time_bounds() {
            Some(b) => b,
            None => return Joules::new(0.0),
        };
        let a = t0.max(first);
        let b = t1.min(last);
        if b <= a {
            return Joules::new(0.0);
        }
        Joules::new(self.cum_energy_at(b) - self.cum_energy_at(a))
    }

    /// Time-weighted average power over `[t0, t1]` (clamped to the trace
    /// span) — O(log n). A zero-width clamped window reports the
    /// interpolated instantaneous power at that point; a window entirely
    /// outside the trace reports 0.
    pub fn average_power_between(&self, t0: f64, t1: f64) -> Watts {
        assert!(!t0.is_nan() && !t1.is_nan(), "window bounds must not be NaN");
        let (first, last) = match self.time_bounds() {
            Some(b) => b,
            None => return Watts::new(0.0),
        };
        let a = t0.max(first);
        let b = t1.min(last);
        if b > a {
            Watts::new((self.cum_energy_at(b) - self.cum_energy_at(a)) / (b - a))
        } else if b == a {
            self.power_at(a).unwrap_or_else(|| Watts::new(0.0))
        } else {
            Watts::new(0.0)
        }
    }

    /// Linearly interpolated instantaneous power at time `t` — O(log n).
    /// `None` outside the trace span (or for an empty trace).
    pub fn power_at(&self, t: f64) -> Option<Watts> {
        let (first, last) = self.time_bounds()?;
        if t.is_nan() || t < first || t > last {
            return None;
        }
        let i = self.times.partition_point(|&x| x <= t) - 1;
        if t <= self.times[i] {
            return Some(Watts::new(self.watts[i]));
        }
        let seg = self.times[i + 1] - self.times[i];
        let frac = (t - self.times[i]) / seg;
        Some(Watts::new(self.watts[i] + (self.watts[i + 1] - self.watts[i]) * frac))
    }

    /// The sub-trace covering `[t0, t1]` (clamped to the trace span), with
    /// linearly interpolated boundary samples so that
    /// `window(t0, t1).energy() == energy_between(t0, t1)` — O(log n + k)
    /// for k samples in the window.
    pub fn window(&self, t0: f64, t1: f64) -> PowerTrace {
        assert!(!t0.is_nan() && !t1.is_nan(), "window bounds must not be NaN");
        let (first, last) = match self.time_bounds() {
            Some(b) => b,
            None => return PowerTrace::new(),
        };
        let a = t0.max(first);
        let b = t1.min(last);
        if b < a {
            return PowerTrace::new();
        }
        let lo = self.times.partition_point(|&x| x < a);
        let hi = self.times.partition_point(|&x| x <= b);
        let mut out = PowerTrace::with_capacity(hi.saturating_sub(lo) + 2);
        if lo == hi || self.times[lo] > a {
            // `a` falls strictly inside a segment: open with an
            // interpolated sample (`a >= first` guarantees `lo > 0`).
            out.append(a, self.power_at(a).expect("a is in range").value());
        }
        for i in lo..hi {
            out.append(self.times[i], self.watts[i]);
        }
        if out.time_bounds().map(|(_, end)| end < b).unwrap_or(true) {
            out.append(b, self.power_at(b).expect("b is in range").value());
        }
        out
    }

    /// Concatenates another trace, shifting its timestamps to start at this
    /// trace's end.
    ///
    /// # Panics
    /// Panics under the same invariants as [`PowerTrace::push`]: the shifted
    /// samples must keep timestamps non-decreasing and values finite.
    pub fn extend_shifted(&mut self, other: &PowerTrace) {
        let offset = self.times.last().copied().unwrap_or(0.0);
        self.reserve(other.len());
        for s in other.iter() {
            self.push(offset + s.t, Watts::new(s.watts));
        }
    }
}

// The archived JSON shape is `{"samples":[{"t":..,"watts":..}]}` — the
// array-of-structs layout the trace used to store directly. Hand-written
// (de)serialization keeps that wire format stable over the SoA layout, so
// existing journals and regression fixtures keep parsing. Deserialization
// enforces the same invariants as `push` — finite non-negative values,
// non-decreasing timestamps — with a descriptive `DeError` naming the first
// offending sample, so a corrupt archive can never poison the prefix index
// that `energy()`/`energy_between()` answer from. Well-formed archives
// rebuild the index with exactly the operations `push` performs, so legacy
// journals parse bit-identically.
impl Serialize for PowerTrace {
    fn to_value(&self) -> Value {
        let samples: Vec<Value> = self.iter().map(|s| s.to_value()).collect();
        Value::Object(vec![("samples".to_string(), Value::Array(samples))])
    }
}

impl Deserialize for PowerTrace {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let samples = v.get("samples").ok_or_else(|| DeError::new("missing field `samples`"))?;
        let arr = samples.as_array().ok_or_else(|| DeError::new("`samples` must be an array"))?;
        let mut trace = PowerTrace::with_capacity(arr.len());
        let mut last_t = f64::NEG_INFINITY;
        for (i, entry) in arr.iter().enumerate() {
            let s = PowerSample::from_value(entry)?;
            if !s.t.is_finite() || s.t < 0.0 {
                return Err(DeError::new(format!(
                    "sample {i}: time must be finite and non-negative (got {})",
                    s.t
                )));
            }
            if s.t < last_t {
                return Err(DeError::new(format!(
                    "sample {i}: timestamps must be non-decreasing (got {} after {last_t})",
                    s.t
                )));
            }
            if !s.watts.is_finite() || s.watts < 0.0 {
                return Err(DeError::new(format!(
                    "sample {i}: power must be finite and non-negative (got {})",
                    s.watts
                )));
            }
            last_t = s.t;
            trace.push_unvalidated(s.t, s.watts);
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn trace(points: &[(f64, f64)]) -> PowerTrace {
        let mut t = PowerTrace::new();
        for &(time, w) in points {
            t.push(time, Watts::new(w));
        }
        t
    }

    /// Naive trapezoid over the full trace — the reference the index must
    /// reproduce bit-for-bit.
    fn naive_energy(t: &PowerTrace) -> f64 {
        let mut e = 0.0;
        for i in 1..t.len() {
            let dt = t.times()[i] - t.times()[i - 1];
            e += 0.5 * (t.watts()[i - 1] + t.watts()[i]) * dt;
        }
        e
    }

    #[test]
    fn constant_power_energy() {
        // 100 W for 10 s = 1000 J.
        let t = trace(&[(0.0, 100.0), (5.0, 100.0), (10.0, 100.0)]);
        assert!((t.energy().value() - 1000.0).abs() < 1e-9);
        assert!((t.average_power().value() - 100.0).abs() < 1e-9);
        assert_eq!(t.duration().value(), 10.0);
    }

    #[test]
    fn ramp_energy_is_trapezoid() {
        // Linear ramp 0→100 W over 10 s: energy = 500 J.
        let t = trace(&[(0.0, 0.0), (10.0, 100.0)]);
        assert!((t.energy().value() - 500.0).abs() < 1e-9);
        assert!((t.average_power().value() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn peak_and_min() {
        let t = trace(&[(0.0, 80.0), (1.0, 250.0), (2.0, 120.0)]);
        assert_eq!(t.peak_power().value(), 250.0);
        assert_eq!(t.min_power().value(), 80.0);
    }

    #[test]
    fn empty_trace_defaults() {
        let t = PowerTrace::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.energy().value(), 0.0);
        assert_eq!(t.duration().value(), 0.0);
        assert_eq!(t.average_power().value(), 0.0);
        // Regression: this used to report f64::MAX.
        assert_eq!(t.min_power().value(), 0.0);
        assert_eq!(t.peak_power().value(), 0.0);
        assert_eq!(t.energy_between(0.0, 100.0).value(), 0.0);
        assert!(t.power_at(0.0).is_none());
        assert!(t.window(0.0, 1.0).is_empty());
    }

    #[test]
    fn single_sample_average_is_that_sample() {
        let t = trace(&[(3.0, 42.0)]);
        assert_eq!(t.average_power().value(), 42.0);
        assert_eq!(t.energy().value(), 0.0);
    }

    #[test]
    fn prefix_index_matches_naive_integration() {
        let t = trace(&[(0.0, 80.0), (1.5, 250.0), (2.0, 120.0), (7.0, 90.0), (7.0, 300.0)]);
        assert_eq!(t.energy().value(), naive_energy(&t));
        // Invariant: prefix_energy()[i] is the energy of the first i+1 samples.
        for i in 0..t.len() {
            let head = trace(
                &t.times()[..=i]
                    .iter()
                    .zip(&t.watts()[..=i])
                    .map(|(&a, &b)| (a, b))
                    .collect::<Vec<_>>(),
            );
            assert_eq!(t.prefix_energy()[i], head.energy().value());
        }
    }

    #[test]
    fn energy_between_subintervals() {
        // 100 W flat from 0..10: any window's energy is 100 * width.
        let t = trace(&[(0.0, 100.0), (4.0, 100.0), (10.0, 100.0)]);
        assert!((t.energy_between(0.0, 10.0).value() - 1000.0).abs() < 1e-9);
        assert!((t.energy_between(2.0, 3.0).value() - 100.0).abs() < 1e-9);
        assert!((t.energy_between(3.5, 7.25).value() - 375.0).abs() < 1e-9);
        // Clamping: out-of-range bounds behave like the trace span.
        assert!((t.energy_between(-5.0, 50.0).value() - 1000.0).abs() < 1e-9);
        assert_eq!(t.energy_between(7.0, 3.0).value(), 0.0);
        assert_eq!(t.energy_between(12.0, 15.0).value(), 0.0);
        // Additivity: windows that tile the span sum to the total.
        let parts = t.energy_between(0.0, 3.3).value()
            + t.energy_between(3.3, 8.1).value()
            + t.energy_between(8.1, 10.0).value();
        assert!((parts - t.energy().value()).abs() < 1e-9);
    }

    #[test]
    fn energy_between_interpolates_ramps() {
        // Ramp 0→100 W over 10 s. Energy in [0, 5] = ∫ 10t dt = 125 J.
        let t = trace(&[(0.0, 0.0), (10.0, 100.0)]);
        assert!((t.energy_between(0.0, 5.0).value() - 125.0).abs() < 1e-9);
        assert!((t.energy_between(5.0, 10.0).value() - 375.0).abs() < 1e-9);
        assert!((t.average_power_between(0.0, 5.0).value() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn power_at_interpolates() {
        let t = trace(&[(0.0, 0.0), (10.0, 100.0)]);
        assert_eq!(t.power_at(0.0).unwrap().value(), 0.0);
        assert!((t.power_at(2.5).unwrap().value() - 25.0).abs() < 1e-12);
        assert_eq!(t.power_at(10.0).unwrap().value(), 100.0);
        assert!(t.power_at(-0.1).is_none());
        assert!(t.power_at(10.1).is_none());
    }

    #[test]
    fn window_preserves_energy_and_bounds() {
        let t = trace(&[(0.0, 50.0), (2.0, 150.0), (5.0, 100.0), (9.0, 220.0)]);
        let w = t.window(1.0, 6.5);
        assert_eq!(w.time_bounds(), Some((1.0, 6.5)));
        assert!((w.energy().value() - t.energy_between(1.0, 6.5).value()).abs() < 1e-9);
        // Boundary samples are interpolated.
        assert!((w.sample(0).watts - 100.0).abs() < 1e-9);
        // Exact-boundary windows reuse the stored samples.
        let exact = t.window(2.0, 5.0);
        assert_eq!(exact.len(), 2);
        assert_eq!(exact.sample(0).watts, 150.0);
        // A zero-width window is a single interpolated sample.
        let point = t.window(3.0, 3.0);
        assert_eq!(point.len(), 1);
        assert!((point.sample(0).watts - t.power_at(3.0).unwrap().value()).abs() < 1e-12);
    }

    #[test]
    fn extend_from_slices_matches_pushes() {
        let times = [0.0, 1.0, 1.0, 2.5];
        let watts = [100.0, 140.0, 90.0, 120.0];
        let mut batched = trace(&[(0.0, 80.0)]);
        batched.extend_from_slices(&times, &watts);
        let mut pushed = trace(&[(0.0, 80.0)]);
        for (&t, &w) in times.iter().zip(&watts) {
            pushed.push(t, Watts::new(w));
        }
        assert_eq!(batched, pushed);
        assert_eq!(batched.energy().value(), pushed.energy().value());
        assert_eq!(batched.prefix_energy(), pushed.prefix_energy());
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn extend_from_slices_validates_order() {
        let mut t = trace(&[(5.0, 100.0)]);
        t.extend_from_slices(&[4.0], &[100.0]);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn extend_from_slices_validates_lengths() {
        let mut t = PowerTrace::new();
        t.extend_from_slices(&[0.0, 1.0], &[100.0]);
    }

    #[test]
    fn extend_shifted_concatenates() {
        let mut a = trace(&[(0.0, 100.0), (10.0, 100.0)]);
        let b = trace(&[(0.0, 200.0), (5.0, 200.0)]);
        a.extend_shifted(&b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.sample(2).t, 10.0);
        assert_eq!(a.sample(3).t, 15.0);
        // Energy: 1000 J + 1000 J + transition trapezoid (0 s wide) = 2000 J.
        assert!((a.energy().value() - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn serde_rejects_invalid_samples_at_the_boundary() {
        // Regression: deserialization used to rebuild the prefix index from
        // whatever the archive contained (`from_soa_unchecked`), so negative
        // watts or backwards timestamps silently poisoned every O(1)/O(log n)
        // energy query. The ingest boundary now rejects them outright.
        let cases: &[(&str, &str)] = &[
            // Negative power.
            (r#"{"samples":[{"t":0.0,"watts":-25.0}]}"#, "power must be finite"),
            // Non-finite power (JSON has no NaN literal; 1e999 parses to +inf).
            (r#"{"samples":[{"t":0.0,"watts":1e999}]}"#, "power must be finite"),
            // Backwards timestamps.
            (
                r#"{"samples":[{"t":5.0,"watts":100.0},{"t":1.0,"watts":100.0}]}"#,
                "timestamps must be non-decreasing",
            ),
            // Negative timestamp.
            (r#"{"samples":[{"t":-1.0,"watts":100.0}]}"#, "time must be finite"),
            // Non-finite timestamp.
            (r#"{"samples":[{"t":1e999,"watts":100.0}]}"#, "time must be finite"),
        ];
        for (json, reason) in cases {
            let err = serde_json::from_str::<PowerTrace>(json).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains(reason), "payload {json}: expected {reason:?}, got {msg:?}");
        }
    }

    #[test]
    fn serde_error_names_the_offending_sample() {
        let err = serde_json::from_str::<PowerTrace>(
            r#"{"samples":[{"t":0.0,"watts":100.0},{"t":1.0,"watts":100.0},{"t":0.5,"watts":100.0}]}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("sample 2"), "got {err:?}");
    }

    #[test]
    fn poisoned_archive_cannot_corrupt_energy_queries() {
        // A journal with a backwards timestamp would have produced a negative
        // trapezoid in `cum_energy`, skewing `energy()` and every windowed
        // query derived from the index. The only way to obtain a trace from
        // an archive now is through the validated path, so the bad record
        // never becomes a queryable trace at all.
        let poisoned = r#"{"samples":[
            {"t":0.0,"watts":100.0},{"t":10.0,"watts":100.0},{"t":2.0,"watts":100.0}
        ]}"#;
        assert!(serde_json::from_str::<PowerTrace>(poisoned).is_err());
        // The well-formed prefix of the same archive still parses and
        // reports the expected energy.
        let clean: PowerTrace = serde_json::from_str(
            r#"{"samples":[{"t":0.0,"watts":100.0},{"t":10.0,"watts":100.0}]}"#,
        )
        .unwrap();
        assert!((clean.energy().value() - 1000.0).abs() < 1e-9);
        assert!((clean.energy_between(0.0, 5.0).value() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn serde_round_trips_legacy_shape() {
        let t = trace(&[(0.0, 100.0), (1.0, 150.5), (2.0, 120.25)]);
        let json = serde_json::to_string(&t).unwrap();
        // The wire format is still the array-of-structs layout.
        assert!(json.contains("\"samples\""), "{json}");
        assert!(json.contains("\"t\""), "{json}");
        assert!(json.contains("\"watts\""), "{json}");
        let back: PowerTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
        // The prefix index is rebuilt on deserialization.
        assert_eq!(back.prefix_energy(), t.prefix_energy());
        assert_eq!(back.peak_power().value(), t.peak_power().value());
    }

    #[test]
    fn serde_rejects_missing_samples_field() {
        assert!(serde_json::from_str::<PowerTrace>(r#"{"nope":[]}"#).is_err());
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn out_of_order_push_panics() {
        let mut t = trace(&[(5.0, 100.0)]);
        t.push(4.0, Watts::new(100.0));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_power_panics() {
        let mut t = PowerTrace::new();
        t.push(0.0, Watts::new(-5.0));
    }

    proptest! {
        /// Energy is within [min·T, max·T] for any trace, and the O(1)
        /// indexed total matches the naive integration bit-for-bit.
        #[test]
        fn prop_energy_bounds(
            powers in proptest::collection::vec(1.0..1000.0f64, 2..32),
            dt in 0.1..10.0f64,
        ) {
            let mut t = PowerTrace::new();
            for (i, &w) in powers.iter().enumerate() {
                t.push(i as f64 * dt, Watts::new(w));
            }
            let dur = t.duration().value();
            let lo = powers.iter().cloned().fold(f64::INFINITY, f64::min) * dur;
            let hi = powers.iter().cloned().fold(0.0, f64::max) * dur;
            let e = t.energy().value();
            prop_assert_eq!(e, naive_energy(&t));
            prop_assert!(e >= lo - 1e-6);
            prop_assert!(e <= hi + 1e-6);
            // average power equals energy / duration by construction
            prop_assert!((t.average_power().value() - e / dur).abs() < 1e-9);
        }

        /// Doubling every power value doubles the energy (linearity).
        #[test]
        fn prop_energy_linear(
            powers in proptest::collection::vec(1.0..500.0f64, 2..16),
        ) {
            let mut t1 = PowerTrace::new();
            let mut t2 = PowerTrace::new();
            for (i, &w) in powers.iter().enumerate() {
                t1.push(i as f64, Watts::new(w));
                t2.push(i as f64, Watts::new(2.0 * w));
            }
            prop_assert!((t2.energy().value() - 2.0 * t1.energy().value()).abs() < 1e-6);
        }

        /// Splitting the span at any interior point conserves energy, and
        /// window() agrees with energy_between().
        #[test]
        fn prop_energy_between_additive(
            powers in proptest::collection::vec(1.0..1000.0f64, 2..32),
            split in 0.0..1.0f64,
        ) {
            let mut t = PowerTrace::new();
            for (i, &w) in powers.iter().enumerate() {
                t.push(i as f64, Watts::new(w));
            }
            let (first, last) = t.time_bounds().unwrap();
            let mid = first + split * (last - first);
            let a = t.energy_between(first, mid).value();
            let b = t.energy_between(mid, last).value();
            let total = t.energy().value();
            prop_assert!((a + b - total).abs() < 1e-9 * total.max(1.0),
                "{a} + {b} != {total}");
            let w = t.window(first, mid);
            prop_assert!((w.energy().value() - a).abs() < 1e-9 * total.max(1.0));
        }
    }
}
