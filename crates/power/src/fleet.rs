//! Fleet-level trace analytics: many per-node traces analyzed in parallel.
//!
//! A cluster run produces one wall-meter trace per node (or per benchmark);
//! the numbers a study reports — total fleet energy, aggregate idle floor,
//! peak concurrent draw — are reductions over all of them. [`TraceSet`]
//! holds labeled [`PowerTrace`]s and computes per-node summaries and fleet
//! aggregates with `rayon` (the workspace's real work-sharing pool), so a
//! 1000-node fleet summarizes in per-node-trace time divided by the core
//! count. Per-node results are collected in input order, so summaries are
//! deterministic at every `TGI_NUM_THREADS` setting.

use crate::analysis::PercentileCache;
use crate::trace::PowerTrace;
use rayon::prelude::*;
use serde::Serialize;
use tgi_core::{Joules, Watts};

/// A labeled collection of per-node power traces.
#[derive(Debug, Clone, Default)]
pub struct TraceSet {
    entries: Vec<(String, PowerTrace)>,
}

/// Summary statistics for one node's trace.
#[derive(Debug, Clone, Serialize)]
pub struct NodeSummary {
    /// The node/benchmark label supplied at insert time.
    pub label: String,
    /// Number of samples in the trace.
    pub samples: usize,
    /// Trace duration, seconds.
    pub duration_s: f64,
    /// Trapezoidal energy, joules.
    pub energy_j: f64,
    /// Time-weighted average power, watts.
    pub average_w: f64,
    /// Peak sampled power, watts.
    pub peak_w: f64,
    /// Minimum sampled power, watts.
    pub min_w: f64,
    /// Estimated idle (5th percentile) power, watts; 0 for an empty trace.
    pub idle_w: f64,
    /// Median (50th percentile) power, watts; 0 for an empty trace.
    pub median_w: f64,
    /// 95th percentile power, watts; 0 for an empty trace.
    pub p95_w: f64,
}

/// Fleet-wide aggregates over every node in a [`TraceSet`].
#[derive(Debug, Clone, Serialize)]
pub struct FleetSummary {
    /// Per-node summaries, in insertion order.
    pub nodes: Vec<NodeSummary>,
    /// Total samples across the fleet.
    pub total_samples: usize,
    /// Sum of per-node energies, joules.
    pub total_energy_j: f64,
    /// Longest single-node trace duration, seconds.
    pub max_duration_s: f64,
    /// Highest single-node peak, watts.
    pub peak_node_w: f64,
    /// Sum of per-node peaks — an upper bound on simultaneous draw, watts.
    pub peak_aggregate_w: f64,
    /// Sum of per-node time-weighted averages, watts.
    pub average_aggregate_w: f64,
    /// Sum of per-node idle estimates — the fleet's baseline floor, watts.
    pub idle_aggregate_w: f64,
}

fn summarize_node(label: &str, trace: &PowerTrace) -> NodeSummary {
    // One sort services idle/median/p95 (the cache is O(1) per query).
    let cache = PercentileCache::new(trace);
    let pct = |p: f64| cache.percentile(p).map(|w| w.value()).unwrap_or(0.0);
    NodeSummary {
        label: label.to_string(),
        samples: trace.len(),
        duration_s: trace.duration().value(),
        energy_j: trace.energy().value(),
        average_w: trace.average_power().value(),
        peak_w: trace.peak_power().value(),
        min_w: trace.min_power().value(),
        idle_w: pct(5.0),
        median_w: pct(50.0),
        p95_w: pct(95.0),
    }
}

impl TraceSet {
    /// An empty set.
    pub fn new() -> Self {
        TraceSet::default()
    }

    /// Builds a set from `(label, trace)` pairs.
    pub fn from_entries(entries: Vec<(String, PowerTrace)>) -> Self {
        TraceSet { entries }
    }

    /// Adds a labeled trace.
    pub fn push(&mut self, label: impl Into<String>, trace: PowerTrace) {
        self.entries.push((label.into(), trace));
    }

    /// Number of traces.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the set holds no traces.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates the labeled traces in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &PowerTrace)> {
        self.entries.iter().map(|(l, t)| (l.as_str(), t))
    }

    /// The trace with the given label, if present (first match).
    pub fn get(&self, label: &str) -> Option<&PowerTrace> {
        self.entries.iter().find(|(l, _)| l == label).map(|(_, t)| t)
    }

    /// Total fleet energy: sum of per-node O(1) energy queries.
    pub fn total_energy(&self) -> Joules {
        Joules::new(self.entries.iter().map(|(_, t)| t.energy().value()).sum())
    }

    /// Highest peak across all nodes — O(nodes), each node query O(1).
    pub fn peak_power(&self) -> Watts {
        Watts::new(self.entries.iter().map(|(_, t)| t.peak_power().value()).fold(0.0, f64::max))
    }

    /// Fleet energy inside `[t0, t1]` (each node clamped to its own span):
    /// parallel O(log n) indexed window queries per node.
    pub fn energy_between(&self, t0: f64, t1: f64) -> Joules {
        Joules::new(
            self.entries
                .par_iter()
                .map(|(_, t)| t.energy_between(t0, t1).value())
                .collect::<Vec<f64>>()
                .iter()
                .sum(),
        )
    }

    /// Summarizes every node in parallel and reduces the fleet aggregates.
    pub fn summarize(&self) -> FleetSummary {
        let nodes: Vec<NodeSummary> =
            self.entries.par_iter().map(|(l, t)| summarize_node(l, t)).collect();
        let mut summary = FleetSummary {
            total_samples: nodes.iter().map(|n| n.samples).sum(),
            total_energy_j: nodes.iter().map(|n| n.energy_j).sum(),
            max_duration_s: nodes.iter().map(|n| n.duration_s).fold(0.0, f64::max),
            peak_node_w: nodes.iter().map(|n| n.peak_w).fold(0.0, f64::max),
            peak_aggregate_w: nodes.iter().map(|n| n.peak_w).sum(),
            average_aggregate_w: nodes.iter().map(|n| n.average_w).sum(),
            idle_aggregate_w: nodes.iter().map(|n| n.idle_w).sum(),
            nodes,
        };
        // Guard against an empty fleet producing -0.0 style noise.
        if summary.nodes.is_empty() {
            summary.total_energy_j = 0.0;
        }
        summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(points: &[(f64, f64)]) -> PowerTrace {
        let mut t = PowerTrace::new();
        for &(time, w) in points {
            t.push(time, Watts::new(w));
        }
        t
    }

    fn fleet() -> TraceSet {
        let mut set = TraceSet::new();
        set.push("node0", trace(&[(0.0, 100.0), (10.0, 100.0)]));
        set.push("node1", trace(&[(0.0, 200.0), (5.0, 300.0), (10.0, 200.0)]));
        set.push("node2", trace(&[(0.0, 50.0), (20.0, 50.0)]));
        set
    }

    #[test]
    fn aggregates_sum_per_node_queries() {
        let set = fleet();
        assert_eq!(set.len(), 3);
        // 1000 + 2500 + 1000 J.
        assert!((set.total_energy().value() - 4500.0).abs() < 1e-9);
        assert_eq!(set.peak_power().value(), 300.0);
        // Window [0, 10]: node2 contributes only its first 10 s (500 J).
        assert!((set.energy_between(0.0, 10.0).value() - 4000.0).abs() < 1e-9);
    }

    #[test]
    fn summary_is_deterministic_and_ordered() {
        let set = fleet();
        let s = set.summarize();
        assert_eq!(s.nodes.len(), 3);
        assert_eq!(s.nodes[0].label, "node0");
        assert_eq!(s.nodes[2].label, "node2");
        assert_eq!(s.total_samples, 7);
        assert!((s.total_energy_j - set.total_energy().value()).abs() < 1e-9);
        assert_eq!(s.max_duration_s, 20.0);
        assert_eq!(s.peak_node_w, 300.0);
        assert!((s.peak_aggregate_w - 450.0).abs() < 1e-9);
        assert!((s.idle_aggregate_w - s.nodes.iter().map(|n| n.idle_w).sum::<f64>()).abs() < 1e-12);
        // Repeated runs agree exactly (parallel collect preserves order).
        let again = set.summarize();
        assert!((again.total_energy_j - s.total_energy_j).abs() == 0.0);
    }

    #[test]
    fn empty_and_lookup_behavior() {
        let set = TraceSet::new();
        assert!(set.is_empty());
        assert_eq!(set.total_energy().value(), 0.0);
        assert_eq!(set.peak_power().value(), 0.0);
        let s = set.summarize();
        assert!(s.nodes.is_empty());
        assert_eq!(s.total_energy_j, 0.0);
        let set = fleet();
        assert!(set.get("node1").is_some());
        assert!(set.get("missing").is_none());
        assert_eq!(set.iter().count(), 3);
    }

    #[test]
    fn empty_trace_in_fleet_reports_zeroes() {
        let mut set = fleet();
        set.push("empty", PowerTrace::new());
        let s = set.summarize();
        let empty = &s.nodes[3];
        assert_eq!(empty.samples, 0);
        assert_eq!(empty.idle_w, 0.0);
        assert_eq!(empty.energy_j, 0.0);
    }
}
