//! Persistent power traces: the bridge between [`PowerTrace`] and the
//! on-disk [`tgi_trace_store::TraceStore`].
//!
//! Three integration points:
//!
//! * [`PowerTrace::to_store`] persists an in-memory trace into a store
//!   directory; [`PowerTrace::from_store`] materializes one back. The
//!   round trip is `to_bits`-identical sample-for-sample (the codec is
//!   lossless at the bit-pattern level).
//! * [`StoreBackedTrace`] is a query handle over an open store with the
//!   `PowerTrace` query surface — `energy`, `energy_between`, `power_at`,
//!   `window`, peak/min — answering from chunk footers and at most the
//!   window's two boundary chunks, bit-identical to the in-memory prefix
//!   index over the same samples.
//! * `BackgroundSampler::start_streaming` (in [`crate::sampler`]) records
//!   straight into an open store, so long captures never hold the full
//!   trace in memory.
//!
//! Fallibility differs by direction: in-memory queries are infallible,
//! store-backed ones return [`StoreError`] because they may touch disk and
//! hit torn or corrupt payloads.

use crate::trace::PowerTrace;
use std::path::Path;
use tgi_core::{Joules, Seconds, Watts};
use tgi_trace_store::{StoreConfig, StoreError, TraceStore};

impl PowerTrace {
    /// Persists every sample into a (fresh or existing) store at `dir` and
    /// syncs it to disk. Appending to a non-empty store requires this
    /// trace's first timestamp to not precede the store's last.
    pub fn to_store(
        &self,
        dir: impl AsRef<Path>,
        config: StoreConfig,
    ) -> Result<TraceStore, StoreError> {
        let mut store = TraceStore::open(dir, config)?;
        store.append_batch(self.times(), self.watts())?;
        store.sync()?;
        Ok(store)
    }

    /// Materializes a store back into an in-memory trace — sample columns
    /// and the rebuilt prefix index are `to_bits`-identical to the trace
    /// that produced the store.
    pub fn from_store(store: &TraceStore) -> Result<PowerTrace, StoreError> {
        let (times, watts) = store.to_columns()?;
        let mut trace = PowerTrace::with_capacity(times.len());
        // The store validated at its append boundary and its decoder
        // re-checks on the way out, so the columns satisfy the trace
        // invariants; extend re-validates cheaply anyway for defense in
        // depth at this crate's boundary.
        trace.extend_from_slices(&times, &watts);
        Ok(trace)
    }
}

/// A [`PowerTrace`]-shaped query handle over an on-disk [`TraceStore`].
///
/// Queries have the same semantics (clamping, interpolation, duplicate
/// handling, NaN panics) as their `PowerTrace` counterparts and return
/// bit-identical values over the same samples; they differ only in being
/// fallible, since cold chunks live on disk.
#[derive(Debug)]
pub struct StoreBackedTrace {
    store: TraceStore,
}

impl StoreBackedTrace {
    /// Opens (or creates) the store at `dir`.
    pub fn open(dir: impl AsRef<Path>, config: StoreConfig) -> Result<Self, StoreError> {
        Ok(StoreBackedTrace { store: TraceStore::open(dir, config)? })
    }

    /// Wraps an already open store.
    pub fn new(store: TraceStore) -> Self {
        StoreBackedTrace { store }
    }

    /// The underlying store (chunk/disk introspection, compaction stats).
    pub fn store(&self) -> &TraceStore {
        &self.store
    }

    /// Mutable access to the underlying store (compaction, sync).
    pub fn store_mut(&mut self) -> &mut TraceStore {
        &mut self.store
    }

    /// Unwraps back into the store.
    pub fn into_store(self) -> TraceStore {
        self.store
    }

    /// Appends one sample, WAL-first. Invalid samples are rejected as
    /// [`StoreError::InvalidSample`] (the store boundary reports errors
    /// where the in-memory trace panics).
    pub fn push(&mut self, t: f64, watts: Watts) -> Result<(), StoreError> {
        self.store.append(t, watts.value())
    }

    /// Appends parallel sample columns as one WAL record.
    pub fn extend_from_slices(&mut self, times: &[f64], watts: &[f64]) -> Result<(), StoreError> {
        self.store.append_batch(times, watts)
    }

    /// Number of samples (sealed + active).
    pub fn len(&self) -> u64 {
        self.store.len()
    }

    /// True when the store holds no samples.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// First and last sample timestamps, when non-empty.
    pub fn time_bounds(&self) -> Option<(f64, f64)> {
        self.store.time_bounds()
    }

    /// Trace duration — O(1) from footers.
    pub fn duration(&self) -> Seconds {
        match self.time_bounds() {
            Some((a, b)) => Seconds::new(b - a),
            None => Seconds::new(0.0),
        }
    }

    /// Total trapezoidal energy — O(1) from the footer chain snapshots.
    pub fn energy(&self) -> Joules {
        Joules::new(self.store.energy_total())
    }

    /// Time-weighted average power over the whole trace. Falls back to 0
    /// for an empty or zero-duration store (the in-memory sample-mean
    /// fallback would require decompressing everything).
    pub fn average_power(&self) -> Watts {
        let d = self.duration().value();
        if d > 0.0 {
            Watts::new(self.energy().value() / d)
        } else {
            Watts::new(0.0)
        }
    }

    /// Peak sampled power — O(1).
    pub fn peak_power(&self) -> Watts {
        Watts::new(self.store.peak_watts())
    }

    /// Minimum sampled power (0 when empty) — O(1).
    pub fn min_power(&self) -> Watts {
        Watts::new(self.store.min_watts())
    }

    /// Trapezoidal energy over `[t0, t1]` clamped to the stored span —
    /// footer binary search, decompressing at most the two boundary
    /// chunks.
    ///
    /// # Panics
    /// Panics if either bound is NaN, mirroring
    /// [`PowerTrace::energy_between`].
    pub fn energy_between(&self, t0: f64, t1: f64) -> Result<Joules, StoreError> {
        Ok(Joules::new(self.store.energy_between(t0, t1)?))
    }

    /// Time-weighted average power over `[t0, t1]` clamped to the stored
    /// span.
    ///
    /// # Panics
    /// Panics if either bound is NaN.
    pub fn average_power_between(&self, t0: f64, t1: f64) -> Result<Watts, StoreError> {
        Ok(Watts::new(self.store.average_power_between(t0, t1)?))
    }

    /// Linearly interpolated instantaneous power at `t`; `None` outside
    /// the span.
    pub fn power_at(&self, t: f64) -> Result<Option<Watts>, StoreError> {
        Ok(self.store.power_at(t)?.map(Watts::new))
    }

    /// The sub-trace covering `[t0, t1]` (clamped), with interpolated
    /// boundary samples — the same construction as [`PowerTrace::window`],
    /// materialized into memory.
    ///
    /// # Panics
    /// Panics if either bound is NaN.
    pub fn window(&self, t0: f64, t1: f64) -> Result<PowerTrace, StoreError> {
        assert!(!t0.is_nan() && !t1.is_nan(), "window bounds must not be NaN");
        let (first, last) = match self.time_bounds() {
            Some(b) => b,
            None => return Ok(PowerTrace::new()),
        };
        let a = t0.max(first);
        let b = t1.min(last);
        if b < a {
            return Ok(PowerTrace::new());
        }
        let (times, watts) = self.store.samples_in(a, b)?;
        let mut out = PowerTrace::with_capacity(times.len() + 2);
        if times.first().map(|&t| t > a).unwrap_or(true) {
            // `a` falls strictly inside a segment: open with an
            // interpolated sample.
            let w = self.store.power_at(a)?.expect("a is in range");
            out.push_unvalidated(a, w);
        }
        for (&t, &w) in times.iter().zip(&watts) {
            out.push_unvalidated(t, w);
        }
        if out.time_bounds().map(|(_, end)| end < b).unwrap_or(true) {
            let w = self.store.power_at(b)?.expect("b is in range");
            out.push_unvalidated(b, w);
        }
        Ok(out)
    }

    /// Materializes the full trace into memory.
    pub fn to_trace(&self) -> Result<PowerTrace, StoreError> {
        PowerTrace::from_store(&self.store)
    }

    /// Scans a window of the stored trace (the whole trace when a bound
    /// is `None`) with a fresh [`crate::anomaly::AnomalyDetector`] — the
    /// post-hoc query behind the server's `/traces/{node}/anomalies`.
    pub fn scan_anomalies(
        &self,
        config: crate::anomaly::AnomalyConfig,
        from: Option<f64>,
        to: Option<f64>,
    ) -> Result<Vec<crate::anomaly::AnomalyEvent>, StoreError> {
        crate::anomaly::scan_stored(self, config, from, to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU32, Ordering};

    static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    struct ScratchDir(PathBuf);

    impl ScratchDir {
        fn new(tag: &str) -> Self {
            let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
            let dir = std::env::temp_dir()
                .join(format!("tgi_persist_{tag}_{}_{seq}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            ScratchDir(dir)
        }
    }

    impl Drop for ScratchDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn synth_trace(n: usize) -> PowerTrace {
        let mut trace = PowerTrace::with_capacity(n);
        for i in 0..n {
            let t = i as f64 * 0.25;
            let w = 120.0 + 35.0 * ((i % 13) as f64) + if i % 4 == 0 { 0.1 } else { 0.0 };
            trace.push(t, Watts::new(w));
        }
        trace
    }

    #[test]
    fn to_store_from_store_round_trips_bitwise() {
        let scratch = ScratchDir::new("round_trip");
        let trace = synth_trace(700);
        let config = StoreConfig { chunk_samples: 64, retain_seconds: None };
        let store = trace.to_store(&scratch.0, config).unwrap();
        assert_eq!(store.len(), 700);
        assert!(store.sealed_chunks() >= 10);
        let back = PowerTrace::from_store(&store).unwrap();
        assert_eq!(back, trace);
        assert_eq!(back.prefix_energy(), trace.prefix_energy());
        assert_eq!(back.energy().value().to_bits(), trace.energy().value().to_bits());
    }

    #[test]
    fn store_backed_queries_match_in_memory_bitwise() {
        let scratch = ScratchDir::new("parity");
        let trace = synth_trace(500);
        let config = StoreConfig { chunk_samples: 32, retain_seconds: None };
        let store = trace.to_store(&scratch.0, config).unwrap();
        let backed = StoreBackedTrace::new(store);
        assert_eq!(backed.len(), trace.len() as u64);
        assert_eq!(backed.time_bounds(), trace.time_bounds());
        assert_eq!(backed.energy().value().to_bits(), trace.energy().value().to_bits());
        assert_eq!(backed.peak_power().value(), trace.peak_power().value());
        assert_eq!(backed.min_power().value(), trace.min_power().value());
        for &(t0, t1) in &[(0.0, 124.75), (3.3, 77.7), (10.0, 10.0), (-5.0, 1e9), (60.125, 60.375)]
        {
            assert_eq!(
                backed.energy_between(t0, t1).unwrap().value().to_bits(),
                trace.energy_between(t0, t1).value().to_bits(),
                "energy_between({t0}, {t1})"
            );
            assert_eq!(
                backed.average_power_between(t0, t1).unwrap().value().to_bits(),
                trace.average_power_between(t0, t1).value().to_bits(),
                "average_power_between({t0}, {t1})"
            );
        }
        for &t in &[0.0, 0.125, 61.9, 124.75, -1.0, 200.0] {
            assert_eq!(
                backed.power_at(t).unwrap().map(|w| w.value().to_bits()),
                trace.power_at(t).map(|w| w.value().to_bits()),
                "power_at({t})"
            );
        }
    }

    #[test]
    fn store_backed_window_matches_in_memory() {
        let scratch = ScratchDir::new("window");
        let trace = synth_trace(300);
        let config = StoreConfig { chunk_samples: 32, retain_seconds: None };
        let backed = StoreBackedTrace::new(trace.to_store(&scratch.0, config).unwrap());
        for &(t0, t1) in &[(5.3, 40.9), (0.0, 74.75), (12.0, 12.0), (70.0, 90.0)] {
            let w_mem = trace.window(t0, t1);
            let w_store = backed.window(t0, t1).unwrap();
            assert_eq!(w_store, w_mem, "window({t0}, {t1})");
            assert_eq!(
                w_store.energy().value().to_bits(),
                w_mem.energy().value().to_bits(),
                "window({t0}, {t1}) energy"
            );
        }
    }

    #[test]
    fn empty_store_behaves_like_empty_trace() {
        let scratch = ScratchDir::new("empty");
        let backed = StoreBackedTrace::open(&scratch.0, StoreConfig::default()).unwrap();
        assert!(backed.is_empty());
        assert_eq!(backed.energy().value(), 0.0);
        assert_eq!(backed.average_power().value(), 0.0);
        assert_eq!(backed.peak_power().value(), 0.0);
        assert_eq!(backed.min_power().value(), 0.0);
        assert_eq!(backed.energy_between(0.0, 10.0).unwrap().value(), 0.0);
        assert!(backed.power_at(0.0).unwrap().is_none());
        assert!(backed.window(0.0, 1.0).unwrap().is_empty());
    }

    #[test]
    fn push_appends_across_reopen() {
        let scratch = ScratchDir::new("reopen");
        let config = StoreConfig { chunk_samples: 8, retain_seconds: None };
        {
            let mut backed = StoreBackedTrace::open(&scratch.0, config.clone()).unwrap();
            for i in 0..20 {
                backed.push(i as f64, Watts::new(100.0 + i as f64)).unwrap();
            }
            backed.store_mut().sync().unwrap();
        }
        let mut backed = StoreBackedTrace::open(&scratch.0, config).unwrap();
        assert_eq!(backed.len(), 20);
        backed.push(20.0, Watts::new(120.0)).unwrap();
        assert_eq!(backed.len(), 21);
        assert!(backed.push(5.0, Watts::new(100.0)).is_err(), "backwards time must fail");
    }
}
