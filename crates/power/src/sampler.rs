//! Background power sampling for *native* benchmark runs.
//!
//! When a kernel executes for real on the local machine, nothing knows its
//! power draw a priori: a sampler thread polls a [`PowerSource`] while the
//! workload runs — exactly how a logging wall meter is used in practice —
//! and the resulting [`PowerTrace`] is integrated into energy.
//!
//! [`ModeledSource`] implements the source by reading this process's actual
//! CPU utilization from `/proc` (falling back to a constant on other
//! platforms) and evaluating a [`NodePowerModel`] at it.

use crate::anomaly::{AnomalyConfig, AnomalyDetector, AnomalyEvent};
use crate::node::NodePowerModel;
use crate::trace::PowerTrace;
use crate::utilization::UtilizationSample;
use crossbeam::channel::{bounded, Sender};
use parking_lot::Mutex;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tgi_core::Watts;
use tgi_trace_store::{StoreError, TraceStore};

/// Inline anomaly watching for a sampler thread: every sample flows
/// through an [`AnomalyDetector`], closed events become telemetry
/// instants (`power.anomaly`) plus the `tgi_power_anomalies_total`
/// counter, and the full event list rides back on `stop`.
struct SampleWatch {
    detector: AnomalyDetector,
    events: Vec<AnomalyEvent>,
    scratch: Vec<AnomalyEvent>,
}

impl SampleWatch {
    fn new(config: Option<AnomalyConfig>) -> Option<Self> {
        config.map(|c| SampleWatch {
            detector: AnomalyDetector::new(c),
            events: Vec::new(),
            scratch: Vec::new(),
        })
    }

    fn push(&mut self, t: f64, watts: f64) {
        self.detector.push(t, watts, &mut self.scratch);
        self.publish();
    }

    fn finish(mut self) -> Vec<AnomalyEvent> {
        self.detector.finish(&mut self.scratch);
        self.publish();
        self.events
    }

    fn publish(&mut self) {
        for event in self.scratch.drain(..) {
            if tgi_telemetry::enabled() {
                tgi_telemetry::counter!("tgi_power_anomalies_total").inc();
            }
            tgi_telemetry::instant("power.anomaly")
                .field("kind", event.kind.label())
                .field("start", event.start)
                .field("end", event.end)
                .field("severity", event.severity)
                .end();
            self.events.push(event);
        }
    }
}

/// Something whose instantaneous power can be polled.
pub trait PowerSource: Send + Sync {
    /// The current wall power.
    fn power_now(&self) -> Watts;
}

/// A constant-power source (tests, idle baselines).
#[derive(Debug, Clone, Copy)]
pub struct ConstantSource(pub f64);

impl PowerSource for ConstantSource {
    fn power_now(&self) -> Watts {
        Watts::new(self.0)
    }
}

/// Evaluates a node power model at the *measured* CPU utilization of this
/// process (Linux: `/proc/self/stat` utime+stime deltas against wall time).
pub struct ModeledSource {
    model: NodePowerModel,
    state: Mutex<CpuTimeState>,
    /// Utilization assumed for non-CPU subsystems while a kernel runs.
    pub assumed: UtilizationSample,
}

struct CpuTimeState {
    last_cpu: f64,
    last_wall: Instant,
    cores: f64,
}

impl ModeledSource {
    /// Creates a source for the given node model.
    pub fn new(model: NodePowerModel) -> Self {
        let cores = std::thread::available_parallelism().map(|n| n.get() as f64).unwrap_or(1.0);
        ModeledSource {
            model,
            state: Mutex::new(CpuTimeState {
                last_cpu: process_cpu_seconds().unwrap_or(0.0),
                last_wall: Instant::now(),
                cores,
            }),
            assumed: UtilizationSample::IDLE,
        }
    }

    /// Sets the assumed non-CPU utilization (e.g. memory-bound kernels).
    pub fn with_assumed(mut self, assumed: UtilizationSample) -> Self {
        self.assumed = assumed;
        self
    }

    /// Measures CPU utilization since the previous call, in `[0, 1]` of the
    /// whole machine.
    pub fn cpu_utilization(&self) -> f64 {
        let mut st = self.state.lock();
        let now_cpu = match process_cpu_seconds() {
            Some(v) => v,
            None => return 0.5, // non-Linux fallback: assume half load
        };
        let now_wall = Instant::now();
        let wall_dt = now_wall.duration_since(st.last_wall).as_secs_f64();
        let cpu_dt = now_cpu - st.last_cpu;
        st.last_cpu = now_cpu;
        st.last_wall = now_wall;
        if wall_dt <= 0.0 {
            return 0.0;
        }
        (cpu_dt / wall_dt / st.cores).clamp(0.0, 1.0)
    }
}

impl PowerSource for ModeledSource {
    fn power_now(&self) -> Watts {
        let cpu = self.cpu_utilization();
        let u = UtilizationSample::new(
            cpu.max(self.assumed.cpu),
            self.assumed.memory,
            self.assumed.disk,
            self.assumed.network,
        );
        self.model.wall_power(u)
    }
}

/// Reads this process's cumulative CPU time (user+system) in seconds.
fn process_cpu_seconds() -> Option<f64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // Fields 14 and 15 (utime, stime) in clock ticks; the command name can
    // contain spaces but is parenthesized, so split after the last ')'.
    let after = stat.rsplit_once(')')?.1;
    let fields: Vec<&str> = after.split_whitespace().collect();
    let utime: f64 = fields.get(11)?.parse().ok()?;
    let stime: f64 = fields.get(12)?.parse().ok()?;
    // CLK_TCK is effectively always 100 on Linux.
    Some((utime + stime) / 100.0)
}

/// A sampler thread recording a [`PowerSource`] at a fixed interval.
pub struct BackgroundSampler {
    stop: Sender<()>,
    handle: JoinHandle<(PowerTrace, Vec<AnomalyEvent>)>,
}

impl BackgroundSampler {
    /// Starts sampling `source` every `interval`.
    pub fn start(source: Arc<dyn PowerSource>, interval: Duration) -> Self {
        Self::start_watched(source, interval, None)
    }

    /// Starts sampling with an inline [`AnomalyDetector`] when `watch` is
    /// set: every sample is screened as it is recorded, closed anomalies
    /// are emitted as `power.anomaly` telemetry instants immediately, and
    /// [`Self::stop_with_anomalies`] returns the full list.
    pub fn start_watched(
        source: Arc<dyn PowerSource>,
        interval: Duration,
        watch: Option<AnomalyConfig>,
    ) -> Self {
        assert!(interval > Duration::ZERO, "sampling interval must be positive");
        let (stop_tx, stop_rx) = bounded::<()>(1);
        let handle = std::thread::spawn(move || {
            let session_span = tgi_telemetry::span_cat("sampler.session", "power")
                .field("interval_secs", interval.as_secs_f64());
            // Pre-size all four SoA columns; typical native runs take a few
            // seconds at millisecond intervals.
            let mut trace = PowerTrace::with_capacity(256);
            let mut watch = SampleWatch::new(watch);
            let start = Instant::now();
            let mut last_sample = Instant::now();
            let sample = |trace: &mut PowerTrace, watch: &mut Option<SampleWatch>, t: f64| {
                let w = source.power_now();
                trace.push(t, w);
                if let Some(watch) = watch {
                    watch.push(t, w.value());
                }
                if tgi_telemetry::enabled() {
                    tgi_telemetry::counter!("tgi_sampler_samples_total").inc();
                }
            };
            sample(&mut trace, &mut watch, 0.0);
            loop {
                // Wait for the interval or a stop signal, whichever first.
                if stop_rx.recv_timeout(interval).is_ok() {
                    break;
                }
                sample(&mut trace, &mut watch, start.elapsed().as_secs_f64());
                if tgi_telemetry::enabled() {
                    // An overrun means the cadence slipped: the gap since the
                    // previous sample spans what should have been 2+ samples,
                    // so the trace under-resolves the power curve there.
                    let gap = last_sample.elapsed();
                    if gap > interval * 2 {
                        tgi_telemetry::counter!("tgi_sampler_overruns_total").inc();
                        tgi_telemetry::instant("sampler.overrun")
                            .field("gap_secs", gap.as_secs_f64())
                            .end();
                    }
                }
                last_sample = Instant::now();
            }
            // Final sample so the trace covers the full duration.
            sample(&mut trace, &mut watch, start.elapsed().as_secs_f64());
            session_span.field("samples", trace.len()).end();
            let anomalies = watch.map(SampleWatch::finish).unwrap_or_default();
            (trace, anomalies)
        });
        BackgroundSampler { stop: stop_tx, handle }
    }

    /// Stops sampling and returns the recorded trace.
    pub fn stop(self) -> PowerTrace {
        self.stop_with_anomalies().0
    }

    /// Stops sampling and returns the trace plus the anomalies the inline
    /// detector flagged (always empty without
    /// [`Self::start_watched`]'s config).
    pub fn stop_with_anomalies(self) -> (PowerTrace, Vec<AnomalyEvent>) {
        let _ = self.stop.send(());
        self.handle.join().expect("sampler thread must not panic")
    }

    /// Starts a sampler that streams every sample straight into an open
    /// [`TraceStore`] instead of accumulating a trace in memory — the
    /// capture-length-independent path for long recordings. Each sample is
    /// write-ahead logged by the store, so a crash mid-capture loses at
    /// most the un-synced WAL tail.
    pub fn start_streaming(
        source: Arc<dyn PowerSource>,
        interval: Duration,
        store: TraceStore,
    ) -> StreamingSampler {
        Self::start_streaming_watched(source, interval, store, None)
    }

    /// [`Self::start_streaming`] with an inline [`AnomalyDetector`] when
    /// `watch` is set (see [`Self::start_watched`] for the semantics).
    pub fn start_streaming_watched(
        source: Arc<dyn PowerSource>,
        interval: Duration,
        mut store: TraceStore,
        watch: Option<AnomalyConfig>,
    ) -> StreamingSampler {
        assert!(interval > Duration::ZERO, "sampling interval must be positive");
        let (stop_tx, stop_rx) = bounded::<()>(1);
        let handle = std::thread::spawn(move || {
            let session_span = tgi_telemetry::span_cat("sampler.stream", "power")
                .field("interval_secs", interval.as_secs_f64());
            // Streamed timestamps continue from the store's last sample so
            // resumed captures stay monotone.
            let offset = store.time_bounds().map(|(_, last)| last).unwrap_or(0.0);
            let mut watch = SampleWatch::new(watch);
            let start = Instant::now();
            let mut append = |store: &mut TraceStore, t: f64, w: Watts| {
                store.append(offset + t, w.value().max(0.0))?;
                if let Some(watch) = &mut watch {
                    watch.push(offset + t, w.value().max(0.0));
                }
                if tgi_telemetry::enabled() {
                    tgi_telemetry::counter!("tgi_sampler_samples_total").inc();
                }
                Ok::<(), StoreError>(())
            };
            let mut result = append(&mut store, 0.0, source.power_now());
            while result.is_ok() {
                if stop_rx.recv_timeout(interval).is_ok() {
                    break;
                }
                result = append(&mut store, start.elapsed().as_secs_f64(), source.power_now());
            }
            if result.is_ok() {
                // Final sample so the trace covers the full duration, then
                // force the WAL tail to disk.
                result = append(&mut store, start.elapsed().as_secs_f64(), source.power_now())
                    .and_then(|()| store.sync());
            }
            session_span.field("samples", store.len()).end();
            let anomalies = watch.map(SampleWatch::finish).unwrap_or_default();
            result.map(|()| (store, anomalies))
        });
        StreamingSampler { stop: stop_tx, handle }
    }
}

/// A sampler thread streaming into a [`TraceStore`] (see
/// [`BackgroundSampler::start_streaming`]).
pub struct StreamingSampler {
    stop: Sender<()>,
    handle: JoinHandle<Result<(TraceStore, Vec<AnomalyEvent>), StoreError>>,
}

impl StreamingSampler {
    /// Stops sampling and returns the store, synced through the last
    /// sample (or the store error that aborted the capture).
    pub fn stop(self) -> Result<TraceStore, StoreError> {
        self.stop_with_anomalies().map(|(store, _)| store)
    }

    /// Stops sampling and returns the store plus the anomalies the inline
    /// detector flagged (always empty without
    /// [`BackgroundSampler::start_streaming_watched`]'s config).
    pub fn stop_with_anomalies(self) -> Result<(TraceStore, Vec<AnomalyEvent>), StoreError> {
        let _ = self.stop.send(());
        self.handle.join().expect("sampler thread must not panic")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_source_sampled() {
        let sampler =
            BackgroundSampler::start(Arc::new(ConstantSource(250.0)), Duration::from_millis(10));
        std::thread::sleep(Duration::from_millis(80));
        let trace = sampler.stop();
        assert!(trace.len() >= 3, "expected several samples, got {}", trace.len());
        assert!((trace.average_power().value() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn trace_covers_elapsed_time() {
        let sampler =
            BackgroundSampler::start(Arc::new(ConstantSource(100.0)), Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(50));
        let trace = sampler.stop();
        assert!(trace.duration().value() >= 0.045);
    }

    #[test]
    fn immediate_stop_still_yields_trace() {
        let sampler =
            BackgroundSampler::start(Arc::new(ConstantSource(100.0)), Duration::from_millis(500));
        let trace = sampler.stop();
        assert!(trace.len() >= 2); // initial + final sample
    }

    #[test]
    fn streaming_sampler_records_into_store() {
        use tgi_trace_store::StoreConfig;
        let dir = std::env::temp_dir().join(format!("tgi_stream_sampler_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = TraceStore::open(&dir, StoreConfig { chunk_samples: 16, retain_seconds: None })
            .unwrap();
        let sampler = BackgroundSampler::start_streaming(
            Arc::new(ConstantSource(250.0)),
            Duration::from_millis(5),
            store,
        );
        std::thread::sleep(Duration::from_millis(60));
        let store = sampler.stop().unwrap();
        assert!(store.len() >= 3, "expected several samples, got {}", store.len());
        let (first, last) = store.time_bounds().unwrap();
        let avg = store.energy_between(first, last).unwrap() / (last - first);
        assert!((avg - 250.0).abs() < 1e-9, "streamed average {avg}");
        // The store is durable: a reopen (fresh process) sees the samples.
        let n = store.len();
        drop(store);
        let store = TraceStore::open(&dir, StoreConfig { chunk_samples: 16, retain_seconds: None })
            .unwrap();
        assert_eq!(store.len(), n);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A source whose output is a pure function of how many times it has
    /// been polled: noisy 200 W base with a 900 W burst at polls
    /// 300..=302. Timing-independent, so anomaly assertions are exact.
    struct ScriptedSource(std::sync::atomic::AtomicUsize);

    impl ScriptedSource {
        fn polls(&self) -> usize {
            self.0.load(std::sync::atomic::Ordering::Relaxed)
        }
    }

    impl PowerSource for ScriptedSource {
        fn power_now(&self) -> Watts {
            let n = self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if (300..=302).contains(&n) {
                return Watts::new(900.0);
            }
            // Deterministic quantized noise, ±2 W around 200 W.
            let mut z = (n as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            let u = ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64;
            Watts::new(200.0 + ((u * 4.0 - 2.0) * 10.0).round() / 10.0)
        }
    }

    #[test]
    fn watched_sampler_flags_injected_spike_and_nothing_else() {
        let source = Arc::new(ScriptedSource(std::sync::atomic::AtomicUsize::new(0)));
        let sampler = BackgroundSampler::start_watched(
            Arc::clone(&source) as Arc<dyn PowerSource>,
            Duration::from_micros(200),
            Some(crate::anomaly::AnomalyConfig::default()),
        );
        while source.polls() < 500 {
            std::thread::sleep(Duration::from_millis(2));
        }
        let (trace, anomalies) = sampler.stop_with_anomalies();
        assert!(trace.len() >= 500);
        let spikes: Vec<_> =
            anomalies.iter().filter(|e| e.kind == crate::anomaly::AnomalyKind::Spike).collect();
        assert_eq!(spikes.len(), 1, "exactly the injected burst: {anomalies:?}");
        assert!((spikes[0].value - 900.0).abs() < 1e-9);
        assert!(
            anomalies.iter().all(|e| e.kind != crate::anomaly::AnomalyKind::Drift),
            "a level spike must not read as drift: {anomalies:?}"
        );
        // Gap dropouts are tolerated here: wall-clock scheduling jitter
        // on a loaded machine can legitimately stretch the cadence.
        assert!(
            anomalies
                .iter()
                .all(|e| e.kind == crate::anomaly::AnomalyKind::Spike || e.samples == 0),
            "only timing gaps may accompany the spike: {anomalies:?}"
        );
        // The unwatched API still works and reports nothing.
        let sampler =
            BackgroundSampler::start(Arc::new(ConstantSource(100.0)), Duration::from_millis(5));
        let (_, anomalies) = sampler.stop_with_anomalies();
        assert!(anomalies.is_empty());
    }

    #[test]
    fn process_cpu_time_is_monotone_on_linux() {
        if let Some(a) = process_cpu_seconds() {
            // Burn a little CPU.
            let mut x = 0u64;
            for i in 0..5_000_000u64 {
                x = x.wrapping_add(i).rotate_left(7);
            }
            assert!(x != 0);
            let b = process_cpu_seconds().unwrap();
            assert!(b >= a);
        }
    }

    #[test]
    fn modeled_source_produces_plausible_power() {
        let src = ModeledSource::new(NodePowerModel::fire_node());
        let p = src.power_now().value();
        let node = NodePowerModel::fire_node();
        assert!(p >= node.idle_wall_power().value() - 1e-9);
        assert!(p <= node.peak_wall_power().value() + 1e-9);
    }

    #[test]
    fn modeled_source_rises_under_load() {
        let src = Arc::new(
            ModeledSource::new(NodePowerModel::fire_node()).with_assumed(UtilizationSample::IDLE),
        );
        // First reading establishes a baseline window.
        let _ = src.power_now();
        // Burn CPU on all threads for a bit.
        let burn_until = Instant::now() + Duration::from_millis(120);
        let workers: Vec<_> = (0..2)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut x = 1u64;
                    while Instant::now() < burn_until {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    }
                    x
                })
            })
            .collect();
        for w in workers {
            let _ = w.join();
        }
        let loaded = src.power_now().value();
        let idle_model = NodePowerModel::fire_node().idle_wall_power().value();
        assert!(
            loaded >= idle_model,
            "loaded power {loaded} should be at or above idle {idle_model}"
        );
    }

    #[test]
    fn cpu_utilization_bounded() {
        let src = ModeledSource::new(NodePowerModel::fire_node());
        for _ in 0..3 {
            let u = src.cpu_utilization();
            assert!((0.0..=1.0).contains(&u));
        }
    }
}
