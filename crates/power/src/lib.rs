//! # power-model — the power-measurement substrate
//!
//! The paper measures energy with a *Watts Up? PRO ES* wall-plug meter wired
//! between the outlet and the system (Figure 1). No physical meter exists in
//! this reproduction, so the whole measurement path is built as a faithful
//! synthetic equivalent:
//!
//! * [`components`] — utilization-dependent power models for CPU, memory,
//!   disk, and NIC, plus a constant baseboard draw.
//! * [`psu`] — a load-dependent power-supply efficiency curve mapping DC
//!   draw to wall (AC) power, which is what a wall meter actually sees.
//! * [`node`] — a whole node: components behind a PSU.
//! * [`utilization`] — time-phased utilization profiles describing what a
//!   workload does to each subsystem.
//! * [`meter`] — the [`meter::PowerMeter`] trait and the simulated
//!   [`meter::WattsUpPro`] (1 Hz sampling, 0.1 W quantization, calibrated
//!   accuracy noise) — the code path a real meter would plug into.
//! * [`trace`] — time-stamped power traces with trapezoidal energy
//!   integration.
//! * [`analysis`] — trace post-processing: percentiles, idle estimation,
//!   smoothing, phase segmentation.
//! * [`sampler`] — a background thread that samples a live power source
//!   while a native benchmark runs.
//! * [`cooling`] — the PUE/cooling extension the paper lists as advantage
//!   (2) of TGI and as future work.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accelerator;
pub mod analysis;
pub mod components;
pub mod cooling;
pub mod meter;
pub mod node;
pub mod psu;
pub mod sampler;
pub mod thermal;
pub mod trace;
pub mod trace_io;
pub mod utilization;

pub use accelerator::AcceleratorPower;
pub use components::{BaseboardPower, CpuPower, DiskPower, MemoryPower, NicPower};
pub use cooling::CoolingModel;
pub use meter::{MeterSpec, PowerMeter, WattsUpPro};
pub use node::NodePowerModel;
pub use psu::PsuEfficiency;
pub use sampler::{BackgroundSampler, PowerSource};
pub use thermal::ThermalModel;
pub use trace::PowerTrace;
pub use utilization::{UtilizationProfile, UtilizationSample};
