//! # power-model — the power-measurement substrate
//!
//! The paper measures energy with a *Watts Up? PRO ES* wall-plug meter wired
//! between the outlet and the system (Figure 1). No physical meter exists in
//! this reproduction, so the whole measurement path is built as a faithful
//! synthetic equivalent:
//!
//! * [`components`] — utilization-dependent power models for CPU, memory,
//!   disk, and NIC, plus a constant baseboard draw.
//! * [`psu`] — a load-dependent power-supply efficiency curve mapping DC
//!   draw to wall (AC) power, which is what a wall meter actually sees.
//! * [`node`] — a whole node: components behind a PSU.
//! * [`utilization`] — time-phased utilization profiles describing what a
//!   workload does to each subsystem.
//! * [`meter`] — the [`meter::PowerMeter`] trait and the simulated
//!   [`meter::WattsUpPro`] (1 Hz sampling, 0.1 W quantization, calibrated
//!   accuracy noise) — the code path a real meter would plug into.
//! * [`trace`] — time-stamped power traces stored as struct-of-arrays with
//!   an incrementally maintained prefix index: total energy / average /
//!   peak / min are O(1), and arbitrary `[t0, t1]` energy windows are
//!   O(log n) after an O(1)-amortized push.
//! * [`trace_io`] — streaming meter-log I/O: logs parse line-by-line from
//!   any [`std::io::BufRead`] and write through any [`std::io::Write`]
//!   without materializing the file in memory.
//! * [`persist`] — on-disk traces: [`PowerTrace::to_store`] /
//!   [`PowerTrace::from_store`] round-trip through the compressed
//!   `tgi-trace-store` format, and [`persist::StoreBackedTrace`] answers
//!   the `PowerTrace` query surface from chunk footers bit-identically
//!   without rehydrating the trace.
//! * [`analysis`] — single-pass trace post-processing: percentiles
//!   (selection-based, with a reusable sorted cache), idle estimation,
//!   two-pointer moving averages, monotonic-deque sliding extrema, and
//!   phase segmentation with per-phase energy from the prefix index.
//! * [`anomaly`] — online detectors over streaming watts: robust-z
//!   spikes, fast-vs-slow EWMA drift, and flatline/time-gap dropouts,
//!   O(1) state per stream and scannable post-hoc over stored traces.
//! * [`fleet`] — many labeled traces summarized in parallel over the
//!   workspace thread pool ([`fleet::TraceSet`]).
//! * [`sampler`] — a background thread that samples a live power source
//!   while a native benchmark runs.
//! * [`cooling`] — the PUE/cooling extension the paper lists as advantage
//!   (2) of TGI and as future work.
//! * [`dvfs`] — P-state governor model: the frequency ↦ {relative perf,
//!   watts} frontier over a node model and the race-to-idle verdict.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accelerator;
pub mod analysis;
pub mod anomaly;
pub mod components;
pub mod cooling;
pub mod dvfs;
pub mod fleet;
pub mod meter;
pub mod node;
pub mod persist;
pub mod psu;
pub mod sampler;
pub mod thermal;
pub mod trace;
pub mod trace_io;
pub mod utilization;

pub use accelerator::AcceleratorPower;
pub use analysis::PercentileCache;
pub use anomaly::{AnomalyConfig, AnomalyCounts, AnomalyDetector, AnomalyEvent, AnomalyKind};
pub use components::{BaseboardPower, CpuPower, DiskPower, MemoryPower, NicPower};
pub use cooling::CoolingModel;
pub use dvfs::{FrontierPoint, GovernorModel, RaceToIdleVerdict};
pub use fleet::{FleetSummary, NodeSummary, TraceSet};
pub use meter::{MeterSpec, PowerMeter, WattsUpPro};
pub use node::NodePowerModel;
pub use persist::StoreBackedTrace;
pub use psu::PsuEfficiency;
pub use sampler::{BackgroundSampler, PowerSource, StreamingSampler};
pub use thermal::ThermalModel;
pub use trace::PowerTrace;
pub use utilization::{UtilizationProfile, UtilizationSample};
