//! DVFS governor model: the frequency ↦ {relative performance, watts}
//! frontier and the race-to-idle question.
//!
//! The paper's clusters expose a ladder of P-states. A governor picks one;
//! the energy consequence depends on two opposing effects:
//!
//! * **power** — CPU dynamic power falls roughly cubically with frequency
//!   ([`crate::components::CpuPower::power_scaled`]), so running slower
//!   draws fewer watts;
//! * **time** — only the compute-bound fraction of a workload stretches
//!   when the clock drops ([`GovernorModel::time_scale`]); the
//!   memory-/I/O-bound remainder is frequency-insensitive. Running slower
//!   therefore takes longer, and the node's fixed idle floor (baseboard,
//!   DIMMs, PSU losses) is paid for every extra second.
//!
//! [`GovernorModel::frontier`] evaluates every P-state against a
//! [`crate::node::NodePowerModel`] and returns the full energy/perf
//! frontier; [`GovernorModel::race_to_idle`] answers the classic governor
//! question for a fixed deadline: is it cheaper to sprint at the highest
//! frequency and let the node idle until the deadline ("race to idle"), or
//! to stretch the job across the whole window at a lower P-state?
//!
//! Writing deadline energy as `E(r) = idle·D + (P(r) − idle)·t(r)` shows
//! the answer hinges on what the *above-idle* power is made of: the CPU's
//! dynamic term falls as `r³` while the memory/disk/NIC active deltas are
//! frequency-independent. When those flat deltas dominate (I/O- and
//! memory-heavy utilization, modest CPU draw), every extra second costs
//! nearly full price and the sprint wins; when the cubic CPU term
//! dominates (compute-bound at high utilization), slowing down recoups
//! more than the stretch costs and race-to-idle **loses** — both regimes
//! are pinned by the tests below.

use crate::node::NodePowerModel;
use crate::utilization::UtilizationSample;
use serde::{Deserialize, Serialize};

/// A DVFS governor's view of one machine: the nominal clock and the
/// ladder of frequency ratios (P-states) it may select.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GovernorModel {
    /// Nominal (highest P-state) core clock, GHz.
    pub nominal_ghz: f64,
    /// Selectable frequencies as fractions of nominal, ascending; the
    /// last entry is normally `1.0`.
    pub ratios: Vec<f64>,
}

/// One point on the energy/performance frontier: a P-state evaluated for
/// a specific workload on a specific node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrontierPoint {
    /// Frequency as a fraction of nominal.
    pub ratio: f64,
    /// Absolute frequency, GHz.
    pub freq_ghz: f64,
    /// Time-to-solution at this P-state, seconds.
    pub seconds: f64,
    /// Wall power while running, watts.
    pub watts: f64,
    /// Energy-to-solution (run energy only), joules.
    pub energy_j: f64,
    /// Energy over the full deadline window: run energy plus idle power
    /// for the slack. `None` when the P-state misses the deadline.
    pub deadline_energy_j: Option<f64>,
}

/// The answer to "is race-to-idle optimal?" for one workload + deadline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RaceToIdleVerdict {
    /// The deadline the P-states were judged against, seconds.
    pub deadline_s: f64,
    /// Idle wall power charged during slack, watts.
    pub idle_watts: f64,
    /// Ratio with the lowest deadline energy among feasible P-states.
    pub best_ratio: f64,
    /// Deadline energy at `best_ratio`, joules.
    pub best_deadline_energy_j: f64,
    /// Deadline energy at the highest feasible P-state, joules.
    pub sprint_deadline_energy_j: f64,
    /// Whether the highest P-state (sprint + idle) minimizes deadline
    /// energy — the race-to-idle hypothesis.
    pub race_to_idle_optimal: bool,
}

impl GovernorModel {
    /// Builds a governor.
    ///
    /// # Panics
    /// Panics if the ladder is empty, unsorted, or has ratios outside
    /// `(0, 1.5]` (the DVFS clamp of the CPU model), or if the nominal
    /// clock is not positive.
    pub fn new(nominal_ghz: f64, ratios: Vec<f64>) -> Self {
        assert!(nominal_ghz > 0.0, "nominal clock must be positive");
        assert!(!ratios.is_empty(), "P-state ladder must not be empty");
        assert!(
            ratios.iter().all(|r| *r > 0.0 && *r <= 1.5),
            "frequency ratios must lie in (0, 1.5]"
        );
        assert!(ratios.windows(2).all(|w| w[0] < w[1]), "ratios must be strictly ascending");
        GovernorModel { nominal_ghz, ratios }
    }

    /// The Fire cluster's Opteron 6134 P-state ladder
    /// (0.8 / 1.2 / 1.5 / 1.9 / 2.3 GHz).
    pub fn fire() -> Self {
        let nominal = 2.3;
        GovernorModel::new(
            nominal,
            vec![0.8 / nominal, 1.2 / nominal, 1.5 / nominal, 1.9 / nominal, 1.0],
        )
    }

    /// A Sandy Bridge-EP ladder (1.2 → 2.6 GHz in 200 MHz steps, thinned
    /// to six states).
    pub fn sandy_bridge() -> Self {
        let nominal = 2.6;
        let steps = [1.2, 1.6, 1.9, 2.2, 2.4, 2.6];
        GovernorModel::new(nominal, steps.iter().map(|f| f / nominal).collect())
    }

    /// Relative time-to-solution at frequency ratio `r` for a workload
    /// whose compute-bound fraction is `compute_fraction`:
    /// `t(r)/t(1) = cf/r + (1 − cf)`. The compute part scales inversely
    /// with the clock; the memory-/I/O-bound remainder does not (the
    /// frequency-domain Amdahl split used by DVFS studies).
    pub fn time_scale(&self, compute_fraction: f64, ratio: f64) -> f64 {
        let cf = compute_fraction.clamp(0.0, 1.0);
        assert!(ratio > 0.0, "frequency ratio must be positive");
        cf / ratio + (1.0 - cf)
    }

    /// Evaluates every P-state for a workload that takes `base_seconds`
    /// at nominal frequency with utilization `u` and compute-bound
    /// fraction `compute_fraction`, on `node`. `deadline_s` fills in the
    /// deadline-energy column (idle slack charged at the node's idle wall
    /// power); P-states that finish after the deadline get `None` there.
    pub fn frontier(
        &self,
        node: &NodePowerModel,
        u: UtilizationSample,
        compute_fraction: f64,
        base_seconds: f64,
        deadline_s: f64,
    ) -> Vec<FrontierPoint> {
        assert!(base_seconds > 0.0, "base time must be positive");
        let idle_w = node.idle_wall_power().value();
        self.ratios
            .iter()
            .map(|&ratio| {
                let seconds = base_seconds * self.time_scale(compute_fraction, ratio);
                let watts = node.wall_power_scaled(u, ratio).value();
                let energy_j = watts * seconds;
                let deadline_energy_j =
                    (seconds <= deadline_s).then_some(energy_j + idle_w * (deadline_s - seconds));
                FrontierPoint {
                    ratio,
                    freq_ghz: ratio * self.nominal_ghz,
                    seconds,
                    watts,
                    energy_j,
                    deadline_energy_j,
                }
            })
            .collect()
    }

    /// Judges the race-to-idle hypothesis: among P-states that meet
    /// `deadline_s`, does the **highest** one minimize total deadline
    /// energy (run + idle slack)?
    ///
    /// Returns `None` when no P-state meets the deadline (then the only
    /// honest answer is "run flat out and miss it anyway").
    pub fn race_to_idle(
        &self,
        node: &NodePowerModel,
        u: UtilizationSample,
        compute_fraction: f64,
        base_seconds: f64,
        deadline_s: f64,
    ) -> Option<RaceToIdleVerdict> {
        let frontier = self.frontier(node, u, compute_fraction, base_seconds, deadline_s);
        let feasible: Vec<&FrontierPoint> =
            frontier.iter().filter(|p| p.deadline_energy_j.is_some()).collect();
        let sprint = *feasible.last()?;
        let best = *feasible
            .iter()
            .min_by(|a, b| a.deadline_energy_j.unwrap().total_cmp(&b.deadline_energy_j.unwrap()))?;
        Some(RaceToIdleVerdict {
            deadline_s,
            idle_watts: node.idle_wall_power().value(),
            best_ratio: best.ratio,
            best_deadline_energy_j: best.deadline_energy_j.unwrap(),
            sprint_deadline_energy_j: sprint.deadline_energy_j.unwrap(),
            race_to_idle_optimal: best.ratio == sprint.ratio,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accelerator::AcceleratorPower;
    use crate::components::{BaseboardPower, CpuPower, DiskPower, MemoryPower, NicPower};
    use crate::psu::PsuEfficiency;
    use proptest::prelude::*;

    /// An idealized node with a zero idle floor: all energy is dynamic
    /// CPU power, so the cubic law should favor the slowest P-state.
    fn zero_idle_node() -> NodePowerModel {
        NodePowerModel {
            cpu: CpuPower { idle_w: 0.0, max_w: 130.0, alpha: 1.0, sockets: 2 },
            memory: MemoryPower { idle_w_per_dimm: 0.0, active_w_per_dimm: 0.0, dimms: 0 },
            disk: DiskPower { idle_w: 0.0, active_w: 0.0, drives: 0 },
            nic: NicPower { idle_w: 0.0, active_w: 0.0 },
            baseboard: BaseboardPower { w: 0.0 },
            accelerator: AcceleratorPower::none(),
            psu: PsuEfficiency::bronze(800.0),
        }
    }

    #[test]
    fn time_scale_limits() {
        let g = GovernorModel::fire();
        // Fully compute-bound at half clock: exactly 2× slower.
        assert!((g.time_scale(1.0, 0.5) - 2.0).abs() < 1e-12);
        // Fully memory-bound: frequency-insensitive.
        assert!((g.time_scale(0.0, 0.4) - 1.0).abs() < 1e-12);
        // Half/half at half clock: 1.5×.
        assert!((g.time_scale(0.5, 0.5) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn ladders_are_valid_and_end_at_nominal() {
        for g in [GovernorModel::fire(), GovernorModel::sandy_bridge()] {
            assert!(g.ratios.len() >= 5);
            assert!((g.ratios.last().unwrap() - 1.0).abs() < 1e-12);
            assert!(g.ratios.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn frontier_is_monotone_in_frequency() {
        let g = GovernorModel::fire();
        let node = NodePowerModel::fire_node();
        let pts = g.frontier(&node, UtilizationSample::cpu_bound(1.0), 0.8, 100.0, f64::INFINITY);
        assert_eq!(pts.len(), g.ratios.len());
        for w in pts.windows(2) {
            assert!(w[0].seconds > w[1].seconds, "higher clock must be faster");
            assert!(w[0].watts < w[1].watts, "higher clock must draw more");
            assert!((w[1].freq_ghz - w[1].ratio * g.nominal_ghz).abs() < 1e-12);
        }
    }

    #[test]
    fn flat_active_power_makes_race_to_idle_optimal() {
        // Memory/disk/NIC at full tilt with modest CPU draw: the active
        // delta over idle is mostly frequency-independent, so every extra
        // second costs nearly full price and sprinting wins.
        let g = GovernorModel::fire();
        let node = NodePowerModel::fire_node();
        let u = UtilizationSample::new(0.3, 1.0, 1.0, 1.0);
        let v = g.race_to_idle(&node, u, 1.0, 100.0, 400.0).expect("nominal meets a 4× deadline");
        assert!(v.race_to_idle_optimal, "verdict: {v:?}");
        assert!((v.best_ratio - 1.0).abs() < 1e-12);
        assert!(v.best_deadline_energy_j <= v.sprint_deadline_energy_j);
    }

    #[test]
    fn cubic_dominated_workload_rejects_race_to_idle() {
        // Compute-bound at full CPU utilization: the r³ term dominates
        // the above-idle power, so a lower P-state beats the sprint.
        let g = GovernorModel::fire();
        let node = NodePowerModel::fire_node();
        let v = g
            .race_to_idle(&node, UtilizationSample::cpu_bound(1.0), 0.9, 100.0, 400.0)
            .expect("nominal meets a 4× deadline");
        assert!(!v.race_to_idle_optimal, "verdict: {v:?}");
        assert!(v.best_ratio < 1.0);
    }

    #[test]
    fn zero_idle_cubic_node_prefers_slowest_feasible_state() {
        // No idle floor + cubic dynamic power + fully compute-bound:
        // E(r) ∝ r³ · (1/r) = r², so the slowest feasible state wins.
        let g = GovernorModel::fire();
        let node = zero_idle_node();
        let v = g
            .race_to_idle(&node, UtilizationSample::cpu_bound(1.0), 1.0, 100.0, 1e4)
            .expect("everything meets a loose deadline");
        assert!(!v.race_to_idle_optimal, "verdict: {v:?}");
        assert!((v.best_ratio - g.ratios[0]).abs() < 1e-12);
    }

    #[test]
    fn infeasible_deadline_yields_none() {
        let g = GovernorModel::fire();
        let node = NodePowerModel::fire_node();
        assert!(g
            .race_to_idle(&node, UtilizationSample::cpu_bound(1.0), 1.0, 100.0, 50.0)
            .is_none());
    }

    #[test]
    fn tight_deadline_prunes_slow_states() {
        let g = GovernorModel::fire();
        let node = NodePowerModel::fire_node();
        // Deadline of 1.05× nominal time: only the top state(s) fit.
        let pts = g.frontier(&node, UtilizationSample::cpu_bound(1.0), 1.0, 100.0, 105.0);
        assert!(pts.last().unwrap().deadline_energy_j.is_some());
        assert!(pts.first().unwrap().deadline_energy_j.is_none());
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_ladder_panics() {
        GovernorModel::new(2.0, vec![0.8, 0.5, 1.0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_ladder_panics() {
        GovernorModel::new(2.0, vec![]);
    }

    proptest! {
        /// Deadline energy of the best state never exceeds the sprint's,
        /// and both are bounded below by the run energy at some state.
        #[test]
        fn prop_best_never_beats_worse_than_sprint(
            cf in 0.0..1.0f64,
            base in 1.0..500.0f64,
            slack in 1.0..10.0f64,
        ) {
            let g = GovernorModel::fire();
            let node = NodePowerModel::fire_node();
            let deadline = base * slack;
            if let Some(v) =
                g.race_to_idle(&node, UtilizationSample::cpu_bound(1.0), cf, base, deadline)
            {
                prop_assert!(v.best_deadline_energy_j <= v.sprint_deadline_energy_j + 1e-9);
                prop_assert!(v.best_deadline_energy_j > 0.0);
            }
        }

        /// time_scale is decreasing in ratio and ≥ 1 at/below nominal.
        #[test]
        fn prop_time_scale_monotone(cf in 0.0..1.0f64, r in 0.2..1.0f64) {
            let g = GovernorModel::fire();
            prop_assert!(g.time_scale(cf, r) >= g.time_scale(cf, 1.0) - 1e-12);
            prop_assert!((g.time_scale(cf, 1.0) - 1.0).abs() < 1e-12);
        }
    }
}
