//! Cooling and facility overhead — the paper's center-wide extension.
//!
//! §II lists as advantage (2) that "TGI can be extended to incorporate power
//! consumed outside the HPC system, e.g., cooling", and §VI names a
//! center-wide view including cooling infrastructure as future work. The
//! standard facility metric is PUE (Power Usage Effectiveness):
//! `facility power = IT power × PUE`. A temperature-dependent PUE curve is
//! provided because chiller efficiency degrades with outside temperature.

use serde::{Deserialize, Serialize};
use tgi_core::Watts;

/// A facility cooling/overhead model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoolingModel {
    /// Baseline PUE at the design-point temperature (≥ 1).
    pub base_pue: f64,
    /// PUE increase per °C above the design point.
    pub pue_per_degree: f64,
    /// Design-point outside temperature, °C.
    pub design_temp_c: f64,
}

impl CoolingModel {
    /// A fixed-PUE model (no temperature sensitivity).
    ///
    /// # Panics
    /// Panics when `pue < 1`.
    pub fn fixed(pue: f64) -> Self {
        assert!(pue >= 1.0, "PUE cannot be below 1");
        CoolingModel { base_pue: pue, pue_per_degree: 0.0, design_temp_c: 20.0 }
    }

    /// A typical 2012-era machine-room model: PUE 1.8 at 20 °C, +0.02/°C.
    pub fn typical_2012() -> Self {
        CoolingModel { base_pue: 1.8, pue_per_degree: 0.02, design_temp_c: 20.0 }
    }

    /// A modern free-cooling facility: PUE 1.1 at 15 °C, +0.01/°C.
    pub fn free_cooled() -> Self {
        CoolingModel { base_pue: 1.1, pue_per_degree: 0.01, design_temp_c: 15.0 }
    }

    /// PUE at a given outside temperature (never below 1).
    pub fn pue_at(&self, temp_c: f64) -> f64 {
        (self.base_pue + self.pue_per_degree * (temp_c - self.design_temp_c)).max(1.0)
    }

    /// Facility power for a given IT power at the design temperature.
    pub fn facility_power(&self, it_power: Watts) -> Watts {
        self.facility_power_at(it_power, self.design_temp_c)
    }

    /// Facility power for a given IT power and outside temperature.
    pub fn facility_power_at(&self, it_power: Watts, temp_c: f64) -> Watts {
        it_power * self.pue_at(temp_c)
    }

    /// Cooling/overhead power alone (facility − IT).
    pub fn overhead_power(&self, it_power: Watts) -> Watts {
        self.facility_power(it_power) - it_power
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fixed_pue_scales_it_power() {
        let c = CoolingModel::fixed(1.5);
        assert!((c.facility_power(Watts::new(1000.0)).value() - 1500.0).abs() < 1e-9);
        assert!((c.overhead_power(Watts::new(1000.0)).value() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn temperature_raises_pue() {
        let c = CoolingModel::typical_2012();
        assert!((c.pue_at(20.0) - 1.8).abs() < 1e-12);
        assert!((c.pue_at(30.0) - 2.0).abs() < 1e-12);
        assert!(c.pue_at(35.0) > c.pue_at(25.0));
    }

    #[test]
    fn pue_floor_is_one() {
        let c = CoolingModel::free_cooled();
        assert_eq!(c.pue_at(-200.0), 1.0);
    }

    #[test]
    fn free_cooling_beats_legacy_room() {
        let legacy = CoolingModel::typical_2012();
        let modern = CoolingModel::free_cooled();
        let it = Watts::new(10_000.0);
        assert!(modern.facility_power(it).value() < legacy.facility_power(it).value());
    }

    #[test]
    #[should_panic(expected = "below 1")]
    fn sub_unity_pue_panics() {
        CoolingModel::fixed(0.9);
    }

    proptest! {
        /// Facility power is never less than IT power, at any temperature.
        #[test]
        fn prop_facility_at_least_it(it in 1.0..1e6f64, temp in -40.0..50.0f64) {
            let c = CoolingModel::typical_2012();
            let f = c.facility_power_at(Watts::new(it), temp).value();
            prop_assert!(f >= it - 1e-9);
        }
    }
}
