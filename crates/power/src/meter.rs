//! Power meters — the instrument between the outlet and the system.
//!
//! Figure 1 of the paper shows a *Watts Up? PRO ES* wall-plug meter wired in
//! series with the machine. [`WattsUpPro`] simulates that instrument's
//! documented behaviour:
//!
//! * fixed 1 Hz internal sampling;
//! * 0.1 W display resolution (readings are quantized);
//! * ±1.5% gain accuracy (a per-device calibration error, constant for one
//!   device, drawn deterministically from the device's serial/seed).
//!
//! [`PowerMeter`] is the abstraction a physical meter driver would also
//! implement, so downstream code is agnostic to simulation vs hardware.

use crate::trace::PowerTrace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tgi_core::Watts;

/// Static characteristics of a power meter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeterSpec {
    /// Sampling interval, seconds.
    pub sample_interval_s: f64,
    /// Display/logging resolution, watts.
    pub resolution_w: f64,
    /// Maximum gain (multiplicative) error, as a fraction (0.015 = ±1.5%).
    pub max_gain_error: f64,
    /// Measurable ceiling, watts.
    pub max_watts: f64,
}

impl MeterSpec {
    /// The Watts Up? PRO ES datasheet values.
    pub fn watts_up_pro_es() -> Self {
        MeterSpec {
            sample_interval_s: 1.0,
            resolution_w: 0.1,
            max_gain_error: 0.015,
            max_watts: 1800.0, // 15 A × 120 V circuit
        }
    }

    /// An idealized meter (instant, exact) for ablation benchmarks.
    pub fn ideal() -> Self {
        MeterSpec {
            sample_interval_s: 0.1,
            resolution_w: 0.0,
            max_gain_error: 0.0,
            max_watts: f64::INFINITY,
        }
    }
}

/// A power meter that can record a trace of a time-varying power draw.
pub trait PowerMeter {
    /// The meter's characteristics.
    fn spec(&self) -> &MeterSpec;

    /// Records `ground_truth(t)` for `duration_s` seconds at the meter's
    /// native rate, returning the (instrument-distorted) trace.
    fn record(&mut self, ground_truth: &dyn Fn(f64) -> Watts, duration_s: f64) -> PowerTrace;
}

/// Simulated Watts Up? PRO ES.
#[derive(Debug, Clone)]
pub struct WattsUpPro {
    spec: MeterSpec,
    /// Per-device gain calibration factor in `[1−ε, 1+ε]`.
    gain: f64,
    /// Sample-noise generator state (small jitter around the reading).
    rng: StdRng,
}

impl WattsUpPro {
    /// Creates a device; `serial` seeds its calibration error so distinct
    /// devices disagree slightly, like real instruments.
    pub fn new(serial: u64) -> Self {
        let spec = MeterSpec::watts_up_pro_es();
        let mut rng = StdRng::seed_from_u64(serial);
        let gain = 1.0 + spec.max_gain_error * (rng.gen::<f64>() * 2.0 - 1.0);
        WattsUpPro { spec, gain, rng }
    }

    /// A device with perfect calibration (gain exactly 1) — useful where a
    /// test needs the quantization effect alone.
    pub fn calibrated(serial: u64) -> Self {
        let mut m = WattsUpPro::new(serial);
        m.gain = 1.0;
        m
    }

    /// A PDU-class variant: same electronics, but wired at the rack power
    /// strip (the paper metered a whole cluster, which exceeds one 15 A
    /// outlet), so the ceiling is raised to a 3-phase PDU's ~60 kW — above
    /// anything SystemG's 128 metered nodes can draw.
    pub fn pdu(serial: u64) -> Self {
        let mut m = WattsUpPro::new(serial);
        m.spec.max_watts = 60_000.0;
        m
    }

    /// Raises the measurable ceiling to at least `watts` (substation-class
    /// metering for fleet-scale clusters). The resolution and noise model
    /// are unchanged, so readings that never hit the old ceiling are
    /// bit-identical. Lower ceilings are ignored.
    pub fn with_ceiling(mut self, watts: f64) -> Self {
        assert!(watts.is_finite() && watts > 0.0, "meter ceiling must be positive");
        if watts > self.spec.max_watts {
            self.spec.max_watts = watts;
        }
        self
    }

    /// The device's fixed gain factor.
    pub fn gain(&self) -> f64 {
        self.gain
    }

    fn quantize(&self, w: f64) -> f64 {
        if self.spec.resolution_w > 0.0 {
            (w / self.spec.resolution_w).round() * self.spec.resolution_w
        } else {
            w
        }
    }
}

impl PowerMeter for WattsUpPro {
    fn spec(&self) -> &MeterSpec {
        &self.spec
    }

    fn record(&mut self, ground_truth: &dyn Fn(f64) -> Watts, duration_s: f64) -> PowerTrace {
        assert!(duration_s >= 0.0 && duration_s.is_finite(), "duration must be non-negative");
        let mut trace = PowerTrace::new();
        let dt = self.spec.sample_interval_s;
        let steps = (duration_s / dt).floor() as u64;
        for k in 0..=steps {
            let t = k as f64 * dt;
            let true_w = ground_truth(t).value();
            // Gain error, then ±0.05% sample jitter, then clamp, quantize.
            let jitter = 1.0 + 0.0005 * (self.rng.gen::<f64>() * 2.0 - 1.0);
            let reading = (true_w * self.gain * jitter).clamp(0.0, self.spec.max_watts);
            trace.push(t, Watts::new(self.quantize(reading)));
        }
        trace
    }
}

/// An exact, noise-free meter for ablations.
#[derive(Debug, Clone)]
pub struct IdealMeter {
    spec: MeterSpec,
}

impl IdealMeter {
    /// Creates an ideal meter sampling at `interval_s`.
    pub fn new(interval_s: f64) -> Self {
        assert!(interval_s > 0.0, "sampling interval must be positive");
        let mut spec = MeterSpec::ideal();
        spec.sample_interval_s = interval_s;
        IdealMeter { spec }
    }
}

impl PowerMeter for IdealMeter {
    fn spec(&self) -> &MeterSpec {
        &self.spec
    }

    fn record(&mut self, ground_truth: &dyn Fn(f64) -> Watts, duration_s: f64) -> PowerTrace {
        let mut trace = PowerTrace::new();
        let dt = self.spec.sample_interval_s;
        let steps = (duration_s / dt).floor() as u64;
        for k in 0..=steps {
            let t = k as f64 * dt;
            trace.push(t, ground_truth(t));
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_matches_datasheet() {
        let s = MeterSpec::watts_up_pro_es();
        assert_eq!(s.sample_interval_s, 1.0);
        assert_eq!(s.resolution_w, 0.1);
        assert_eq!(s.max_gain_error, 0.015);
    }

    #[test]
    fn constant_load_measured_within_accuracy() {
        let mut meter = WattsUpPro::new(7);
        let trace = meter.record(&|_| Watts::new(400.0), 60.0);
        assert_eq!(trace.len(), 61); // samples at t=0..=60
        let avg = trace.average_power().value();
        // Within gain error + jitter + quantization.
        assert!((avg - 400.0).abs() <= 400.0 * 0.017, "avg {avg}");
    }

    #[test]
    fn readings_are_quantized() {
        let mut meter = WattsUpPro::calibrated(1);
        let trace = meter.record(&|_| Watts::new(123.456), 5.0);
        for s in trace.samples() {
            let scaled = s.watts / 0.1;
            assert!((scaled - scaled.round()).abs() < 1e-9, "unquantized {}", s.watts);
        }
    }

    #[test]
    fn gain_is_device_specific_and_bounded() {
        let gains: Vec<f64> = (0..20).map(|s| WattsUpPro::new(s).gain()).collect();
        for &g in &gains {
            assert!((0.985..=1.015).contains(&g));
        }
        // Not all devices identical.
        let unique: std::collections::BTreeSet<u64> = gains.iter().map(|g| g.to_bits()).collect();
        assert!(unique.len() > 1);
    }

    #[test]
    fn same_serial_same_gain() {
        assert_eq!(WattsUpPro::new(42).gain(), WattsUpPro::new(42).gain());
    }

    #[test]
    fn readings_clamped_to_circuit_limit() {
        let mut meter = WattsUpPro::new(3);
        let trace = meter.record(&|_| Watts::new(5000.0), 3.0);
        for s in trace.samples() {
            assert!(s.watts <= 1800.0);
        }
    }

    #[test]
    fn varying_load_tracked() {
        let mut meter = WattsUpPro::calibrated(5);
        // Step from 100 W to 300 W at t=5.
        let trace = meter.record(&|t| Watts::new(if t < 5.0 { 100.0 } else { 300.0 }), 10.0);
        let early = trace.samples()[2].watts;
        let late = trace.samples()[8].watts;
        assert!((early - 100.0).abs() < 2.0);
        assert!((late - 300.0).abs() < 2.0);
    }

    #[test]
    fn ideal_meter_is_exact() {
        let mut meter = IdealMeter::new(0.5);
        let trace = meter.record(&|t| Watts::new(100.0 + t), 4.0);
        assert_eq!(trace.len(), 9);
        for s in trace.samples() {
            assert_eq!(s.watts, 100.0 + s.t);
        }
    }

    #[test]
    fn one_hz_meter_misses_subsecond_spikes() {
        // A 0.2 s 1000 W spike between samples is invisible at 1 Hz — this
        // is the sampling-rate limitation the ablation bench quantifies.
        let mut meter = WattsUpPro::calibrated(9);
        let spike = |t: f64| Watts::new(if (t - 0.5).abs() < 0.1 { 1000.0 } else { 100.0 });
        let trace = meter.record(&spike, 10.0);
        assert!(trace.peak_power().value() < 200.0);
        let mut ideal = IdealMeter::new(0.05);
        let fine = ideal.record(&spike, 10.0);
        assert!(fine.peak_power().value() >= 1000.0);
    }

    #[test]
    fn zero_duration_gives_single_sample() {
        let mut meter = WattsUpPro::new(1);
        let trace = meter.record(&|_| Watts::new(50.0), 0.0);
        assert_eq!(trace.len(), 1);
    }

    #[test]
    fn meter_trait_is_object_safe() {
        let mut meters: Vec<Box<dyn PowerMeter>> =
            vec![Box::new(WattsUpPro::new(1)), Box::new(IdealMeter::new(1.0))];
        for m in meters.iter_mut() {
            let t = m.record(&|_| Watts::new(10.0), 2.0);
            assert!(!t.is_empty());
        }
    }
}
