//! Power-supply efficiency: what a wall meter sees.
//!
//! A Watts Up? meter sits on the AC side of the PSU (Figure 1 of the paper),
//! so wall power = DC power / η(load). Efficiency curves follow the 80 PLUS
//! shape: poor at very light load, peaking near 50%, drooping slightly at
//! full load. The curve is piecewise-linear through calibration points.

use serde::{Deserialize, Serialize};
use tgi_core::Watts;

/// A load-dependent PSU efficiency curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PsuEfficiency {
    /// Rated output capacity, watts DC.
    pub rated_w: f64,
    /// `(load fraction, efficiency)` calibration points, sorted by load.
    points: Vec<(f64, f64)>,
}

impl PsuEfficiency {
    /// Builds a curve from calibration points `(load fraction, efficiency)`.
    ///
    /// # Panics
    /// Panics if there are no points, any value is out of `(0, 1]`, or the
    /// loads are not strictly increasing.
    pub fn new(rated_w: f64, points: Vec<(f64, f64)>) -> Self {
        assert!(rated_w > 0.0, "rated capacity must be positive");
        assert!(!points.is_empty(), "need at least one calibration point");
        for w in points.windows(2) {
            assert!(w[0].0 < w[1].0, "load points must be strictly increasing");
        }
        for &(l, e) in &points {
            assert!((0.0..=1.5).contains(&l), "load fraction out of range: {l}");
            assert!(e > 0.0 && e <= 1.0, "efficiency out of range: {e}");
        }
        PsuEfficiency { rated_w, points }
    }

    /// An 80 PLUS Bronze-like curve (typical ~2008-era server PSU, matching
    /// the paper's hardware generation).
    pub fn bronze(rated_w: f64) -> Self {
        PsuEfficiency::new(
            rated_w,
            vec![(0.05, 0.70), (0.10, 0.78), (0.20, 0.82), (0.50, 0.85), (1.00, 0.82)],
        )
    }

    /// A perfectly efficient PSU (for ablations isolating conversion loss).
    pub fn ideal(rated_w: f64) -> Self {
        PsuEfficiency::new(rated_w, vec![(0.5, 1.0)])
    }

    /// Efficiency at a DC load, by linear interpolation (clamped at the
    /// curve's ends).
    pub fn efficiency_at(&self, dc_w: f64) -> f64 {
        let load = (dc_w / self.rated_w).max(0.0);
        let pts = &self.points;
        if load <= pts[0].0 {
            return pts[0].1;
        }
        if load >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        for w in pts.windows(2) {
            let ((l0, e0), (l1, e1)) = (w[0], w[1]);
            if load <= l1 {
                let t = (load - l0) / (l1 - l0);
                return e0 + t * (e1 - e0);
            }
        }
        unreachable!("load within bracket bounds");
    }

    /// Wall (AC) power for a given DC draw.
    pub fn wall_power(&self, dc: Watts) -> Watts {
        Watts::new(dc.value() / self.efficiency_at(dc.value()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bronze_curve_shape() {
        let psu = PsuEfficiency::bronze(800.0);
        // Peak near 50% load.
        let e50 = psu.efficiency_at(400.0);
        assert!(e50 > psu.efficiency_at(40.0));
        assert!(e50 > psu.efficiency_at(800.0));
        assert!((e50 - 0.85).abs() < 1e-12);
    }

    #[test]
    fn interpolation_between_points() {
        let psu = PsuEfficiency::new(100.0, vec![(0.0, 0.5), (1.0, 1.0)]);
        assert!((psu.efficiency_at(50.0) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn clamping_outside_curve() {
        let psu = PsuEfficiency::bronze(800.0);
        assert_eq!(psu.efficiency_at(0.0), 0.70);
        assert_eq!(psu.efficiency_at(10_000.0), 0.82);
    }

    #[test]
    fn wall_power_exceeds_dc_power() {
        let psu = PsuEfficiency::bronze(800.0);
        for dc in [50.0, 200.0, 400.0, 800.0] {
            let wall = psu.wall_power(Watts::new(dc)).value();
            assert!(wall > dc, "wall {wall} must exceed DC {dc}");
        }
    }

    #[test]
    fn ideal_psu_is_lossless() {
        let psu = PsuEfficiency::ideal(500.0);
        assert_eq!(psu.wall_power(Watts::new(300.0)).value(), 300.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_points_panic() {
        PsuEfficiency::new(100.0, vec![(0.5, 0.8), (0.2, 0.9)]);
    }

    #[test]
    #[should_panic(expected = "efficiency out of range")]
    fn bad_efficiency_panics() {
        PsuEfficiency::new(100.0, vec![(0.5, 1.2)]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_points_panic() {
        PsuEfficiency::new(100.0, vec![]);
    }

    proptest! {
        /// Efficiency is always within the hull of the calibration points,
        /// and wall power is monotone in DC power.
        #[test]
        fn prop_efficiency_bounded_monotone_wall(dc1 in 1.0..1000.0f64, dc2 in 1.0..1000.0f64) {
            let psu = PsuEfficiency::bronze(800.0);
            let e = psu.efficiency_at(dc1);
            prop_assert!((0.70..=0.85).contains(&e));
            let (lo, hi) = if dc1 <= dc2 { (dc1, dc2) } else { (dc2, dc1) };
            prop_assert!(
                psu.wall_power(Watts::new(lo)).value()
                    <= psu.wall_power(Watts::new(hi)).value() + 1e-9
            );
        }
    }
}
