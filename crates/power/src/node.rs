//! Whole-node power: components behind a PSU.
//!
//! [`NodePowerModel::wall_power`] is the quantity a wall-plug meter (the
//! paper's Watts Up? PRO ES) observes for one node: the sum of component DC
//! draws at the current utilization, divided by the PSU efficiency at that
//! load.

use crate::accelerator::AcceleratorPower;
use crate::components::{BaseboardPower, CpuPower, DiskPower, MemoryPower, NicPower};
use crate::psu::PsuEfficiency;
use crate::utilization::UtilizationSample;
use serde::{Deserialize, Serialize};
use tgi_core::Watts;

/// A complete node power model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodePowerModel {
    /// CPU sockets.
    pub cpu: CpuPower,
    /// Memory subsystem.
    pub memory: MemoryPower,
    /// Storage.
    pub disk: DiskPower,
    /// Network interface.
    pub nic: NicPower,
    /// Constant baseboard draw.
    pub baseboard: BaseboardPower,
    /// Discrete accelerators (absent on CPU-only nodes).
    #[serde(default = "AcceleratorPower::none")]
    pub accelerator: AcceleratorPower,
    /// Power supply efficiency curve.
    pub psu: PsuEfficiency,
}

impl NodePowerModel {
    /// Total DC power at the given utilization.
    pub fn dc_power(&self, u: UtilizationSample) -> Watts {
        self.cpu.power(u.cpu)
            + self.memory.power(u.memory)
            + self.disk.power(u.disk)
            + self.nic.power(u.network)
            + self.accelerator.power(u.accelerator)
            + self.baseboard.power()
    }

    /// Wall (AC) power at the given utilization — what the meter sees.
    pub fn wall_power(&self, u: UtilizationSample) -> Watts {
        self.psu.wall_power(self.dc_power(u))
    }

    /// DC power with the CPU clock scaled to `freq_ratio` of nominal.
    pub fn dc_power_scaled(&self, u: UtilizationSample, freq_ratio: f64) -> Watts {
        self.cpu.power_scaled(u.cpu, freq_ratio)
            + self.memory.power(u.memory)
            + self.disk.power(u.disk)
            + self.nic.power(u.network)
            + self.accelerator.power(u.accelerator)
            + self.baseboard.power()
    }

    /// Wall power with the CPU clock scaled to `freq_ratio` of nominal
    /// (DVFS): CPU dynamic power follows the cubic law; the other
    /// components are unaffected.
    pub fn wall_power_scaled(&self, u: UtilizationSample, freq_ratio: f64) -> Watts {
        self.psu.wall_power(self.dc_power_scaled(u, freq_ratio))
    }

    /// Wall power of the idle node.
    pub fn idle_wall_power(&self) -> Watts {
        self.wall_power(UtilizationSample::IDLE)
    }

    /// Wall power at full load on every subsystem (including accelerators).
    pub fn peak_wall_power(&self) -> Watts {
        self.wall_power(UtilizationSample::new(1.0, 1.0, 1.0, 1.0).with_accelerator(1.0))
    }

    /// Adds accelerators to an existing node model (builder style).
    pub fn with_accelerator(mut self, accelerator: AcceleratorPower) -> Self {
        self.accelerator = accelerator;
        self
    }

    /// A model of one *Fire*-cluster node (2× AMD Opteron 6134, 8-core
    /// 2.3 GHz, 32 GB): parameters chosen so the 8-node cluster draws power
    /// in the low-kW band the paper's Figure 5/6 sweeps imply.
    pub fn fire_node() -> Self {
        NodePowerModel {
            // Opteron 6134 (115 W TDP): low idle (Magny-Cours gates cores
            // aggressively), steep convex rise under load — the α > 2
            // exponent matches SPECpower-style curves where the last cores
            // and full memory-channel activity are the expensive ones.
            // max_w includes socket VRM losses.
            cpu: CpuPower { idle_w: 22.0, max_w: 132.0, alpha: 2.1, sockets: 2 },
            // 8 × 4 GB DDR3 registered DIMMs.
            memory: MemoryPower { idle_w_per_dimm: 2.5, active_w_per_dimm: 6.5, dimms: 8 },
            disk: DiskPower { idle_w: 5.0, active_w: 11.0, drives: 1 },
            // Gigabit/IB HCA on the node.
            nic: NicPower { idle_w: 6.0, active_w: 14.0 },
            baseboard: BaseboardPower { w: 30.0 },
            accelerator: AcceleratorPower::none(),
            psu: PsuEfficiency::bronze(800.0),
        }
    }

    /// A GPU node for the §VI platform extension: a Fire-class host with
    /// two Fermi-class compute boards and a beefier PSU.
    pub fn gpu_node() -> Self {
        let mut node =
            NodePowerModel::fire_node().with_accelerator(AcceleratorPower::fermi_class(2));
        node.psu = PsuEfficiency::bronze(1400.0);
        node
    }

    /// A 2012-generation node (2× Sandy Bridge-EP): lower idle, wider
    /// dynamic range, and a Platinum-class PSU — the "what came next"
    /// contrast point for ranking studies.
    pub fn sandy_bridge_node() -> Self {
        NodePowerModel {
            cpu: CpuPower { idle_w: 15.0, max_w: 130.0, alpha: 1.8, sockets: 2 },
            // 8 × 8 GB DDR3-1600 RDIMMs.
            memory: MemoryPower { idle_w_per_dimm: 2.0, active_w_per_dimm: 5.5, dimms: 8 },
            disk: DiskPower { idle_w: 4.0, active_w: 9.0, drives: 1 },
            nic: NicPower { idle_w: 5.0, active_w: 12.0 },
            baseboard: BaseboardPower { w: 25.0 },
            accelerator: AcceleratorPower::none(),
            // 80 PLUS Platinum-like: flatter, higher curve.
            psu: PsuEfficiency::new(
                1100.0,
                vec![(0.05, 0.82), (0.10, 0.89), (0.20, 0.92), (0.50, 0.94), (1.00, 0.91)],
            ),
        }
    }

    /// A model of one *SystemG* node (Mac Pro, 2× Xeon 5462 quad-core
    /// 2.8 GHz, 8 GB, QDR InfiniBand).
    pub fn system_g_node() -> Self {
        NodePowerModel {
            // Xeon 5462: 80 W TDP per socket; Penryn idles relatively high.
            cpu: CpuPower { idle_w: 30.0, max_w: 80.0, alpha: 1.1, sockets: 2 },
            // 4 × 2 GB FB-DIMMs — notoriously power-hungry.
            memory: MemoryPower { idle_w_per_dimm: 6.0, active_w_per_dimm: 11.0, dimms: 4 },
            disk: DiskPower { idle_w: 6.0, active_w: 12.0, drives: 1 },
            // QDR InfiniBand HCA.
            nic: NicPower { idle_w: 8.0, active_w: 18.0 },
            baseboard: BaseboardPower { w: 50.0 },
            accelerator: AcceleratorPower::none(),
            psu: PsuEfficiency::bronze(980.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dc_power_is_sum_of_components() {
        let node = NodePowerModel::fire_node();
        let u = UtilizationSample::new(0.5, 0.3, 0.1, 0.2);
        let expected = node.cpu.power(0.5).value()
            + node.memory.power(0.3).value()
            + node.disk.power(0.1).value()
            + node.nic.power(0.2).value()
            + node.baseboard.power().value();
        assert!((node.dc_power(u).value() - expected).abs() < 1e-9);
    }

    #[test]
    fn wall_exceeds_dc() {
        let node = NodePowerModel::fire_node();
        for u in [UtilizationSample::IDLE, UtilizationSample::cpu_bound(1.0)] {
            assert!(node.wall_power(u).value() > node.dc_power(u).value());
        }
    }

    #[test]
    fn fire_node_power_band_is_plausible() {
        let node = NodePowerModel::fire_node();
        let idle = node.idle_wall_power().value();
        let peak = node.peak_wall_power().value();
        // A power-gated dual-socket 2010-era server idles 110–200 W and
        // peaks 350–500 W at the wall.
        assert!((110.0..250.0).contains(&idle), "idle {idle}");
        assert!((320.0..550.0).contains(&peak), "peak {peak}");
        assert!(peak > idle * 1.5);
    }

    #[test]
    fn system_g_node_power_band_is_plausible() {
        let node = NodePowerModel::system_g_node();
        let idle = node.idle_wall_power().value();
        let peak = node.peak_wall_power().value();
        assert!((150.0..300.0).contains(&idle), "idle {idle}");
        assert!((280.0..500.0).contains(&peak), "peak {peak}");
    }

    #[test]
    fn gpu_node_adds_idle_floor_and_headroom() {
        let cpu_only = NodePowerModel::fire_node();
        let gpu = NodePowerModel::gpu_node();
        // Two idle Fermi boards add ~80 W DC at the wall.
        assert!(gpu.idle_wall_power().value() > cpu_only.idle_wall_power().value() + 70.0);
        // Peak grows by roughly the boards' TDP.
        assert!(gpu.peak_wall_power().value() > cpu_only.peak_wall_power().value() + 350.0);
        // Accelerator utilization is what moves GPU power.
        let host_busy = gpu.wall_power(UtilizationSample::cpu_bound(1.0));
        let both_busy = gpu.wall_power(UtilizationSample::cpu_bound(1.0).with_accelerator(1.0));
        assert!(both_busy.value() > host_busy.value() + 300.0);
    }

    #[test]
    fn cpu_load_dominates_cpu_bound_delta() {
        let node = NodePowerModel::fire_node();
        let idle = node.wall_power(UtilizationSample::IDLE).value();
        let cpu = node.wall_power(UtilizationSample::cpu_bound(1.0)).value();
        let io = node.wall_power(UtilizationSample::io_bound(1.0)).value();
        assert!(cpu - idle > io - idle, "CPU-bound load must cost more than I/O-bound");
    }

    proptest! {
        /// Wall power is monotone in every utilization dimension.
        #[test]
        fn prop_wall_monotone(
            cpu in 0.0..1.0f64, mem in 0.0..1.0f64,
            disk in 0.0..1.0f64, net in 0.0..1.0f64, bump in 0.0..0.3f64,
        ) {
            let node = NodePowerModel::fire_node();
            let base = node.wall_power(UtilizationSample::new(cpu, mem, disk, net)).value();
            let more =
                node.wall_power(UtilizationSample::new(cpu + bump, mem, disk, net)).value();
            prop_assert!(more >= base - 1e-9);
        }

        /// Power stays within [idle, peak] for any utilization.
        #[test]
        fn prop_power_within_envelope(
            cpu in 0.0..1.0f64, mem in 0.0..1.0f64,
            disk in 0.0..1.0f64, net in 0.0..1.0f64,
        ) {
            let node = NodePowerModel::system_g_node();
            let p = node.wall_power(UtilizationSample::new(cpu, mem, disk, net)).value();
            prop_assert!(p >= node.idle_wall_power().value() - 1e-9);
            prop_assert!(p <= node.peak_wall_power().value() + 1e-9);
        }
    }
}
