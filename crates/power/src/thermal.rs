//! Thermal dynamics and fan power — the time-varying tail of node power.
//!
//! Wall traces of real machines keep climbing for minutes after a job
//! starts: heatsinks warm up and fans spin up. A first-order RC thermal
//! model captures that:
//!
//! ```text
//! τ · dT/dt = R·P_dissipated − (T − T_ambient)
//! ```
//!
//! with fan power a convex function of the temperature-controlled duty
//! cycle. This feeds the meter path with realistic warm-up transients (the
//! effect the meter-ablation bench's bursty loads probe) and closes the
//! loop with the cooling extension: what PUE abstracts at facility scale,
//! this models at node scale.

use crate::node::NodePowerModel;
use crate::trace::PowerTrace;
use crate::utilization::UtilizationProfile;
use serde::{Deserialize, Serialize};
use tgi_core::Watts;

/// First-order node thermal model with a temperature-driven fan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThermalModel {
    /// Thermal resistance heatsink→air, °C per watt of dissipated power.
    pub r_c_per_watt: f64,
    /// Thermal time constant τ, seconds.
    pub tau_s: f64,
    /// Ambient (inlet) temperature, °C.
    pub ambient_c: f64,
    /// Temperature at which fans start ramping, °C.
    pub fan_start_c: f64,
    /// Temperature at which fans reach full duty, °C.
    pub fan_full_c: f64,
    /// Fan power at full duty, watts (fan power ∝ duty³).
    pub fan_max_w: f64,
}

impl ThermalModel {
    /// A typical 1U/2U server: ~45 s time constant, fans ramp 45–75 °C.
    pub fn typical_server() -> Self {
        ThermalModel {
            r_c_per_watt: 0.11,
            tau_s: 45.0,
            ambient_c: 22.0,
            fan_start_c: 45.0,
            fan_full_c: 75.0,
            fan_max_w: 48.0,
        }
    }

    /// Steady-state temperature at a constant dissipated power.
    pub fn steady_temp(&self, dissipated: Watts) -> f64 {
        self.ambient_c + self.r_c_per_watt * dissipated.value()
    }

    /// Fan duty cycle in `[0, 1]` at a given temperature.
    pub fn fan_duty(&self, temp_c: f64) -> f64 {
        ((temp_c - self.fan_start_c) / (self.fan_full_c - self.fan_start_c)).clamp(0.0, 1.0)
    }

    /// Fan power at a given temperature (cube law in duty cycle).
    pub fn fan_power(&self, temp_c: f64) -> Watts {
        Watts::new(self.fan_max_w * self.fan_duty(temp_c).powi(3))
    }

    /// Simulates a utilization profile on a node with thermal dynamics:
    /// integrates the RC equation at `dt_s` steps and returns the wall-power
    /// trace *including* fan power, plus the temperature trajectory.
    ///
    /// # Panics
    /// Panics on a non-positive step size.
    pub fn simulate(
        &self,
        node: &NodePowerModel,
        profile: &UtilizationProfile,
        dt_s: f64,
    ) -> (PowerTrace, Vec<(f64, f64)>) {
        assert!(dt_s > 0.0, "integration step must be positive");
        let mut trace = PowerTrace::new();
        let mut temps = Vec::new();
        let mut temp = self.ambient_c;
        let duration = profile.duration_s();
        let steps = (duration / dt_s).ceil() as usize;
        for k in 0..=steps {
            let t = (k as f64 * dt_s).min(duration);
            // The profile is half-open at its end: clamp the lookup just
            // inside so the final sample reflects the last phase.
            let u = profile.at(if t >= duration { duration - 1e-9 } else { t });
            // Dissipated heat ≈ DC power (electrical in = heat out).
            let dissipated = node.dc_power(u).value();
            // Explicit Euler on the RC equation.
            let target = self.ambient_c + self.r_c_per_watt * dissipated;
            temp += (target - temp) * (dt_s / self.tau_s).min(1.0);
            let wall = node.wall_power(u).value() + self.fan_power(temp).value();
            trace.push(t, Watts::new(wall));
            temps.push((t, temp));
            if t >= duration {
                break;
            }
        }
        (trace, temps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utilization::UtilizationSample;
    use proptest::prelude::*;

    fn model() -> ThermalModel {
        ThermalModel::typical_server()
    }

    #[test]
    fn steady_state_temperature_is_linear_in_power() {
        let m = model();
        assert_eq!(m.steady_temp(Watts::new(0.0)), 22.0);
        let t200 = m.steady_temp(Watts::new(200.0));
        let t400 = m.steady_temp(Watts::new(400.0));
        assert!((t200 - 44.0).abs() < 1e-9);
        assert!(((t400 - 22.0) - 2.0 * (t200 - 22.0)).abs() < 1e-9);
    }

    #[test]
    fn fan_curve_endpoints_and_cube_law() {
        let m = model();
        assert_eq!(m.fan_duty(30.0), 0.0);
        assert_eq!(m.fan_duty(75.0), 1.0);
        assert_eq!(m.fan_duty(100.0), 1.0);
        assert!((m.fan_duty(60.0) - 0.5).abs() < 1e-12);
        // Half duty → 1/8 of max power.
        assert!((m.fan_power(60.0).value() - m.fan_max_w / 8.0).abs() < 1e-9);
        assert_eq!(m.fan_power(30.0).value(), 0.0);
    }

    #[test]
    fn warm_up_transient_raises_power_over_time() {
        let node = NodePowerModel::fire_node();
        let profile = UtilizationProfile::constant(300.0, UtilizationSample::cpu_bound(1.0));
        let (trace, temps) = model().simulate(&node, &profile, 1.0);
        // Temperature climbs toward steady state.
        let t_early = temps[5].1;
        let t_late = temps.last().expect("non-empty").1;
        assert!(t_late > t_early + 5.0, "warm-up: {t_early} -> {t_late}");
        // Wall power climbs with it (fans spin up), while utilization is
        // constant — the transient a constant-power model misses.
        let p_early = trace.samples()[5].watts;
        let p_late = trace.samples()[trace.len() - 1].watts;
        assert!(p_late > p_early, "power warm-up: {p_early} -> {p_late}");
        // And converges near the analytic steady state.
        let steady = model().steady_temp(node.dc_power(UtilizationSample::cpu_bound(1.0)));
        assert!((t_late - steady).abs() < 2.0, "late {t_late} vs steady {steady}");
    }

    #[test]
    fn cooldown_after_job_ends() {
        let node = NodePowerModel::fire_node();
        let mut profile = UtilizationProfile::new();
        profile.push(120.0, UtilizationSample::cpu_bound(1.0));
        profile.push(180.0, UtilizationSample::IDLE);
        let (_, temps) = model().simulate(&node, &profile, 1.0);
        let peak = temps.iter().map(|&(_, t)| t).fold(0.0, f64::max);
        let end = temps.last().expect("non-empty").1;
        assert!(end < peak - 5.0, "cooldown: peak {peak}, end {end}");
        assert!(end > model().ambient_c, "never below ambient");
    }

    #[test]
    fn fan_energy_is_visible_in_the_trace() {
        let node = NodePowerModel::fire_node();
        let profile = UtilizationProfile::constant(600.0, UtilizationSample::cpu_bound(1.0));
        let (with_fans, _) = model().simulate(&node, &profile, 1.0);
        // Static model (no thermal): constant wall power, no fan term.
        let static_w = node.wall_power(UtilizationSample::cpu_bound(1.0)).value();
        let static_energy = static_w * 600.0;
        assert!(
            with_fans.energy().value() > static_energy,
            "fans must add energy: {} vs {static_energy}",
            with_fans.energy().value()
        );
    }

    proptest! {
        /// Temperature stays within [ambient, steady-state at peak power].
        #[test]
        fn prop_temperature_bounded(cpu in 0.0..1.0f64, dur in 10.0..500.0f64) {
            let node = NodePowerModel::fire_node();
            let profile = UtilizationProfile::constant(dur, UtilizationSample::cpu_bound(cpu));
            let m = model();
            let (_, temps) = m.simulate(&node, &profile, 1.0);
            let hot = m.steady_temp(node.dc_power(UtilizationSample::cpu_bound(cpu)));
            for (_, t) in temps {
                prop_assert!(t >= m.ambient_c - 1e-9);
                prop_assert!(t <= hot + 1e-6);
            }
        }
    }
}
