//! Power-trace analysis: the post-processing a metered experiment needs.
//!
//! A wall meter produces a long 1 Hz trace per run; turning that into the
//! numbers a study reports (baseline idle draw, phase boundaries, stable
//! averages) is part of the measurement methodology. These helpers work on
//! [`PowerTrace`] and are deliberately dependency-free.

use crate::trace::PowerTrace;
use tgi_core::Watts;

/// The `p`-th percentile (0–100) of the sampled power values, by linear
/// interpolation between order statistics.
///
/// # Panics
/// Panics if the trace is empty or `p` is outside `[0, 100]`.
pub fn percentile(trace: &PowerTrace, p: f64) -> Watts {
    assert!(!trace.is_empty(), "percentile of an empty trace");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    let mut values: Vec<f64> = trace.samples().iter().map(|s| s.watts).collect();
    values.sort_by(|a, b| a.partial_cmp(b).expect("power samples are finite"));
    let rank = p / 100.0 * (values.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Watts::new(values[lo] + (values[hi] - values[lo]) * frac)
}

/// Estimated idle (baseline) draw: the 5th percentile — robust to the run
/// occupying most of the trace.
pub fn estimate_idle(trace: &PowerTrace) -> Watts {
    percentile(trace, 5.0)
}

/// A centered moving average with the given time window; timestamps are
/// preserved.
pub fn moving_average(trace: &PowerTrace, window_s: f64) -> PowerTrace {
    assert!(window_s > 0.0, "window must be positive");
    let samples = trace.samples();
    let mut out = PowerTrace::new();
    for (i, s) in samples.iter().enumerate() {
        let half = window_s / 2.0;
        let mut sum = 0.0;
        let mut count = 0usize;
        // Trace lengths here are small (≤ tens of thousands); the simple
        // two-sided scan keeps the window exact at the edges.
        for other in samples[..i].iter().rev() {
            if s.t - other.t > half {
                break;
            }
            sum += other.watts;
            count += 1;
        }
        for other in &samples[i..] {
            if other.t - s.t > half {
                break;
            }
            sum += other.watts;
            count += 1;
        }
        out.push(s.t, Watts::new(sum / count as f64));
    }
    out
}

/// One detected phase of roughly constant power.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerPhase {
    /// Phase start time, seconds.
    pub start_s: f64,
    /// Phase end time, seconds (exclusive; start of the next phase).
    pub end_s: f64,
    /// Mean power during the phase.
    pub mean_w: f64,
}

/// Segments a trace into phases by splitting wherever consecutive samples
/// jump by more than `threshold` watts. Adjacent samples inside a phase are
/// averaged.
///
/// # Panics
/// Panics on an empty trace or a non-positive threshold.
pub fn segment_phases(trace: &PowerTrace, threshold: Watts) -> Vec<PowerPhase> {
    assert!(!trace.is_empty(), "cannot segment an empty trace");
    assert!(threshold.value() > 0.0, "threshold must be positive");
    let samples = trace.samples();
    let mut phases = Vec::new();
    let mut start = 0usize;
    for i in 1..=samples.len() {
        let boundary = i == samples.len()
            || (samples[i].watts - samples[i - 1].watts).abs() > threshold.value();
        if boundary {
            let slice = &samples[start..i];
            let mean = slice.iter().map(|s| s.watts).sum::<f64>() / slice.len() as f64;
            let end = if i < samples.len() { samples[i].t } else { slice[slice.len() - 1].t };
            phases.push(PowerPhase { start_s: slice[0].t, end_s: end, mean_w: mean });
            start = i;
        }
    }
    phases
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn trace(points: &[(f64, f64)]) -> PowerTrace {
        let mut t = PowerTrace::new();
        for &(time, w) in points {
            t.push(time, Watts::new(w));
        }
        t
    }

    fn step_trace() -> PowerTrace {
        // 10 s at 100 W, 10 s at 300 W, 5 s at 100 W.
        let mut points = Vec::new();
        for i in 0..10 {
            points.push((i as f64, 100.0));
        }
        for i in 10..20 {
            points.push((i as f64, 300.0));
        }
        for i in 20..25 {
            points.push((i as f64, 100.0));
        }
        trace(&points)
    }

    #[test]
    fn percentile_basics() {
        let t = trace(&[(0.0, 10.0), (1.0, 20.0), (2.0, 30.0), (3.0, 40.0), (4.0, 50.0)]);
        assert_eq!(percentile(&t, 0.0).value(), 10.0);
        assert_eq!(percentile(&t, 100.0).value(), 50.0);
        assert_eq!(percentile(&t, 50.0).value(), 30.0);
        assert_eq!(percentile(&t, 25.0).value(), 20.0);
    }

    #[test]
    fn percentile_interpolates() {
        let t = trace(&[(0.0, 0.0), (1.0, 100.0)]);
        assert!((percentile(&t, 30.0).value() - 30.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        percentile(&PowerTrace::new(), 50.0);
    }

    #[test]
    fn idle_estimate_finds_baseline() {
        let idle = estimate_idle(&step_trace()).value();
        assert!((idle - 100.0).abs() < 1e-9);
    }

    #[test]
    fn moving_average_smooths_but_preserves_mean_region() {
        let smoothed = moving_average(&step_trace(), 3.0);
        assert_eq!(smoothed.len(), step_trace().len());
        // Mid-plateau values are unchanged; the edge at t=10 is blended.
        let mid_low = smoothed.samples()[5].watts;
        let mid_high = smoothed.samples()[15].watts;
        assert!((mid_low - 100.0).abs() < 1e-9);
        assert!((mid_high - 300.0).abs() < 1e-9);
        let edge = smoothed.samples()[10].watts;
        assert!(edge > 100.0 && edge < 300.0);
    }

    #[test]
    fn segmentation_recovers_three_phases() {
        let phases = segment_phases(&step_trace(), Watts::new(50.0));
        assert_eq!(phases.len(), 3, "{phases:?}");
        assert!((phases[0].mean_w - 100.0).abs() < 1e-9);
        assert!((phases[1].mean_w - 300.0).abs() < 1e-9);
        assert!((phases[2].mean_w - 100.0).abs() < 1e-9);
        assert_eq!(phases[0].start_s, 0.0);
        assert_eq!(phases[1].start_s, 10.0);
        assert_eq!(phases[2].start_s, 20.0);
    }

    #[test]
    fn segmentation_constant_trace_is_one_phase() {
        let t = trace(&[(0.0, 200.0), (1.0, 201.0), (2.0, 199.0)]);
        let phases = segment_phases(&t, Watts::new(50.0));
        assert_eq!(phases.len(), 1);
        assert!((phases[0].mean_w - 200.0).abs() < 1.0);
    }

    proptest! {
        /// Percentiles are monotone in p and bounded by min/max.
        #[test]
        fn prop_percentile_monotone(
            powers in proptest::collection::vec(1.0..1000.0f64, 2..64),
            p1 in 0.0..100.0f64, p2 in 0.0..100.0f64,
        ) {
            let mut t = PowerTrace::new();
            for (i, &w) in powers.iter().enumerate() {
                t.push(i as f64, Watts::new(w));
            }
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            prop_assert!(percentile(&t, lo).value() <= percentile(&t, hi).value() + 1e-9);
            let min = powers.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = powers.iter().cloned().fold(0.0, f64::max);
            prop_assert!(percentile(&t, 0.0).value() >= min - 1e-9);
            prop_assert!(percentile(&t, 100.0).value() <= max + 1e-9);
        }

        /// Smoothing never escapes the value range, and phases tile the trace.
        #[test]
        fn prop_smoothing_bounded_phases_tile(
            powers in proptest::collection::vec(1.0..1000.0f64, 2..64),
            window in 0.5..10.0f64,
        ) {
            let mut t = PowerTrace::new();
            for (i, &w) in powers.iter().enumerate() {
                t.push(i as f64, Watts::new(w));
            }
            let min = powers.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = powers.iter().cloned().fold(0.0, f64::max);
            for s in moving_average(&t, window).samples() {
                prop_assert!(s.watts >= min - 1e-9 && s.watts <= max + 1e-9);
            }
            let phases = segment_phases(&t, Watts::new(10.0));
            prop_assert!(!phases.is_empty());
            prop_assert_eq!(phases[0].start_s, 0.0);
            for w in phases.windows(2) {
                prop_assert!((w[0].end_s - w[1].start_s).abs() < 1e-9);
            }
        }
    }
}
