//! Power-trace analysis: the post-processing a metered experiment needs.
//!
//! A wall meter produces a long 1 Hz trace per run; turning that into the
//! numbers a study reports (baseline idle draw, phase boundaries, stable
//! averages) is part of the measurement methodology. These helpers work on
//! [`PowerTrace`] and exploit its prefix index so every pass is a single
//! O(n) scan (or better):
//!
//! * [`percentile`] / [`try_percentile`] — expected O(n) via
//!   `select_nth_unstable` (no full sort per query); [`PercentileCache`]
//!   sorts once for O(1) repeated queries.
//! * [`moving_average`] — two-pointer sliding window over the prefix sums,
//!   O(n) total instead of O(n·w).
//! * [`sliding_max`] / [`sliding_min`] — monotonic-deque sliding extrema,
//!   O(n) total.
//! * [`segment_phases`] — single pass; per-phase means and energies come
//!   from prefix-sum differences, so each phase costs O(1) on top of the
//!   scan.
//!
//! The panicking entry points ([`percentile`], [`estimate_idle`]) are kept
//! for ergonomic use in tests and binaries; library code should prefer the
//! `try_` variants, which route [`TgiError`] instead of asserting.

use crate::trace::PowerTrace;
use std::collections::VecDeque;
use tgi_core::{stats, TgiError, Watts};

/// The `p`-th percentile (0–100) of the sampled power values, by linear
/// interpolation between order statistics. Expected O(n) (selection, not a
/// full sort).
///
/// Returns [`TgiError::EmptyTrace`] for an empty trace and
/// [`TgiError::OutOfRange`] for `p` outside `[0, 100]`.
pub fn try_percentile(trace: &PowerTrace, p: f64) -> Result<Watts, TgiError> {
    if trace.is_empty() {
        return Err(TgiError::EmptyTrace);
    }
    let mut values = trace.watts().to_vec();
    stats::percentile_interpolated(&mut values, p).map(Watts::new)
}

/// Panicking convenience wrapper around [`try_percentile`].
///
/// # Panics
/// Panics if the trace is empty or `p` is outside `[0, 100]`.
pub fn percentile(trace: &PowerTrace, p: f64) -> Watts {
    match try_percentile(trace, p) {
        Ok(w) => w,
        Err(e) => panic!("percentile of power trace: {e}"),
    }
}

/// Estimated idle (baseline) draw: the 5th percentile — robust to the run
/// occupying most of the trace.
///
/// Returns [`TgiError::EmptyTrace`] for an empty trace.
pub fn try_estimate_idle(trace: &PowerTrace) -> Result<Watts, TgiError> {
    try_percentile(trace, 5.0)
}

/// Panicking convenience wrapper around [`try_estimate_idle`].
///
/// # Panics
/// Panics if the trace is empty.
pub fn estimate_idle(trace: &PowerTrace) -> Watts {
    match try_estimate_idle(trace) {
        Ok(w) => w,
        Err(e) => panic!("idle estimate of power trace: {e}"),
    }
}

/// A reusable sorted view of a trace's power values: O(n log n) to build,
/// O(1) per percentile query afterwards. Worth it from the second query on —
/// fleet reports ask each trace for idle, median, p95 and p99 in one go.
#[derive(Debug, Clone)]
pub struct PercentileCache {
    sorted: Vec<f64>,
}

impl PercentileCache {
    /// Sorts the trace's power column once.
    pub fn new(trace: &PowerTrace) -> Self {
        let mut sorted = trace.watts().to_vec();
        sorted.sort_by(f64::total_cmp);
        PercentileCache { sorted }
    }

    /// Number of cached samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when built from an empty trace.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The `p`-th percentile (0–100) by linear interpolation — O(1).
    pub fn percentile(&self, p: f64) -> Result<Watts, TgiError> {
        if self.sorted.is_empty() {
            return Err(TgiError::EmptyTrace);
        }
        if !(0.0..=100.0).contains(&p) {
            return Err(TgiError::OutOfRange {
                quantity: "percentile",
                value: p,
                lo: 0.0,
                hi: 100.0,
            });
        }
        let rank = p / 100.0 * (self.sorted.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        Ok(Watts::new(self.sorted[lo] + (self.sorted[hi] - self.sorted[lo]) * frac))
    }

    /// The 5th-percentile idle estimate — O(1).
    pub fn idle(&self) -> Result<Watts, TgiError> {
        self.percentile(5.0)
    }
}

/// A centered moving average with the given time window; timestamps are
/// preserved. O(n): the window edges are two monotone pointers and window
/// sums are prefix-sum differences.
///
/// # Panics
/// Panics on a non-positive window.
pub fn moving_average(trace: &PowerTrace, window_s: f64) -> PowerTrace {
    assert!(window_s > 0.0, "window must be positive");
    let times = trace.times();
    let cum = trace.prefix_watts();
    let half = window_s / 2.0;
    let n = times.len();
    let mut out = PowerTrace::with_capacity(n);
    let (mut lo, mut hi) = (0usize, 0usize);
    for i in 0..n {
        while times[i] - times[lo] > half {
            lo += 1;
        }
        if hi < i {
            hi = i;
        }
        while hi + 1 < n && times[hi + 1] - times[i] <= half {
            hi += 1;
        }
        let sum = cum[hi] - if lo > 0 { cum[lo - 1] } else { 0.0 };
        out.push_unvalidated(times[i], sum / (hi - lo + 1) as f64);
    }
    out
}

/// Sliding maximum over a centered time window — O(n) via a monotonic
/// deque. The paper's burst analysis wants "how high did power spike around
/// each instant" without an O(n·w) rescan.
///
/// # Panics
/// Panics on a non-positive window.
pub fn sliding_max(trace: &PowerTrace, window_s: f64) -> PowerTrace {
    sliding_extremum(trace, window_s, |new, old| new >= old)
}

/// Sliding minimum over a centered time window — O(n) via a monotonic
/// deque.
///
/// # Panics
/// Panics on a non-positive window.
pub fn sliding_min(trace: &PowerTrace, window_s: f64) -> PowerTrace {
    sliding_extremum(trace, window_s, |new, old| new <= old)
}

/// Shared monotonic-deque sweep. `supersedes(new, old)` says whether a newly
/// entering value makes an older queued value irrelevant (`>=` for max,
/// `<=` for min). Every index enters and leaves the deque at most once.
fn sliding_extremum(
    trace: &PowerTrace,
    window_s: f64,
    supersedes: impl Fn(f64, f64) -> bool,
) -> PowerTrace {
    assert!(window_s > 0.0, "window must be positive");
    let times = trace.times();
    let watts = trace.watts();
    let half = window_s / 2.0;
    let n = times.len();
    let mut out = PowerTrace::with_capacity(n);
    let mut deque: VecDeque<usize> = VecDeque::new();
    let (mut lo, mut hi) = (0usize, 0usize);
    for i in 0..n {
        while hi < n && times[hi] - times[i] <= half {
            while let Some(&back) = deque.back() {
                if supersedes(watts[hi], watts[back]) {
                    deque.pop_back();
                } else {
                    break;
                }
            }
            deque.push_back(hi);
            hi += 1;
        }
        while times[i] - times[lo] > half {
            lo += 1;
        }
        while let Some(&front) = deque.front() {
            if front < lo {
                deque.pop_front();
            } else {
                break;
            }
        }
        let best = *deque.front().expect("window always contains sample i");
        out.push_unvalidated(times[i], watts[best]);
    }
    out
}

/// One detected phase of roughly constant power.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerPhase {
    /// Phase start time, seconds.
    pub start_s: f64,
    /// Phase end time, seconds (exclusive; start of the next phase).
    pub end_s: f64,
    /// Mean power during the phase.
    pub mean_w: f64,
    /// Trapezoidal energy over `[start_s, end_s]`, from the trace's prefix
    /// index. Phase energies tile the trace: they sum to the total energy.
    pub energy_j: f64,
}

/// Segments a trace into phases by splitting wherever consecutive samples
/// jump by more than `threshold` watts. One O(n) pass; each phase's mean
/// and energy are O(1) prefix-index differences.
///
/// # Panics
/// Panics on an empty trace or a non-positive threshold.
pub fn segment_phases(trace: &PowerTrace, threshold: Watts) -> Vec<PowerPhase> {
    assert!(!trace.is_empty(), "cannot segment an empty trace");
    assert!(threshold.value() > 0.0, "threshold must be positive");
    let times = trace.times();
    let watts = trace.watts();
    let cum_w = trace.prefix_watts();
    let cum_e = trace.prefix_energy();
    let n = times.len();
    let mut phases = Vec::new();
    let mut start = 0usize;
    for i in 1..=n {
        let boundary = i == n || (watts[i] - watts[i - 1]).abs() > threshold.value();
        if boundary {
            let sum = cum_w[i - 1] - if start > 0 { cum_w[start - 1] } else { 0.0 };
            let mean = sum / (i - start) as f64;
            // The phase owns the bridge trapezoid up to the next phase's
            // first sample, so phase energies sum to the trace total.
            let (end, end_idx) = if i < n { (times[i], i) } else { (times[i - 1], i - 1) };
            phases.push(PowerPhase {
                start_s: times[start],
                end_s: end,
                mean_w: mean,
                energy_j: cum_e[end_idx] - cum_e[start],
            });
            start = i;
        }
    }
    phases
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn trace(points: &[(f64, f64)]) -> PowerTrace {
        let mut t = PowerTrace::new();
        for &(time, w) in points {
            t.push(time, Watts::new(w));
        }
        t
    }

    fn step_trace() -> PowerTrace {
        // 10 s at 100 W, 10 s at 300 W, 5 s at 100 W.
        let mut points = Vec::new();
        for i in 0..10 {
            points.push((i as f64, 100.0));
        }
        for i in 10..20 {
            points.push((i as f64, 300.0));
        }
        for i in 20..25 {
            points.push((i as f64, 100.0));
        }
        trace(&points)
    }

    #[test]
    fn percentile_basics() {
        let t = trace(&[(0.0, 10.0), (1.0, 20.0), (2.0, 30.0), (3.0, 40.0), (4.0, 50.0)]);
        assert_eq!(percentile(&t, 0.0).value(), 10.0);
        assert_eq!(percentile(&t, 100.0).value(), 50.0);
        assert_eq!(percentile(&t, 50.0).value(), 30.0);
        assert_eq!(percentile(&t, 25.0).value(), 20.0);
    }

    #[test]
    fn percentile_interpolates() {
        let t = trace(&[(0.0, 0.0), (1.0, 100.0)]);
        assert!((percentile(&t, 30.0).value() - 30.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        percentile(&PowerTrace::new(), 50.0);
    }

    #[test]
    fn try_variants_return_errors_instead_of_panicking() {
        assert!(matches!(
            try_percentile(&PowerTrace::new(), 50.0),
            Err(tgi_core::TgiError::EmptyTrace)
        ));
        assert!(matches!(
            try_estimate_idle(&PowerTrace::new()),
            Err(tgi_core::TgiError::EmptyTrace)
        ));
        let t = trace(&[(0.0, 100.0)]);
        assert!(matches!(try_percentile(&t, 150.0), Err(tgi_core::TgiError::OutOfRange { .. })));
        assert_eq!(try_percentile(&t, 50.0).unwrap().value(), 100.0);
    }

    #[test]
    fn percentile_cache_matches_direct_queries() {
        let t = step_trace();
        let cache = PercentileCache::new(&t);
        assert_eq!(cache.len(), t.len());
        for p in [0.0, 5.0, 25.0, 50.0, 77.7, 95.0, 100.0] {
            let direct = percentile(&t, p).value();
            let cached = cache.percentile(p).unwrap().value();
            assert!((direct - cached).abs() < 1e-12, "p={p}: {direct} vs {cached}");
        }
        assert!((cache.idle().unwrap().value() - estimate_idle(&t).value()).abs() < 1e-12);
        assert!(matches!(cache.percentile(-1.0), Err(tgi_core::TgiError::OutOfRange { .. })));
        assert!(matches!(
            PercentileCache::new(&PowerTrace::new()).idle(),
            Err(tgi_core::TgiError::EmptyTrace)
        ));
    }

    #[test]
    fn idle_estimate_finds_baseline() {
        let idle = estimate_idle(&step_trace()).value();
        assert!((idle - 100.0).abs() < 1e-9);
    }

    #[test]
    fn moving_average_smooths_but_preserves_mean_region() {
        let smoothed = moving_average(&step_trace(), 3.0);
        assert_eq!(smoothed.len(), step_trace().len());
        // Mid-plateau values are unchanged; the edge at t=10 is blended.
        let mid_low = smoothed.sample(5).watts;
        let mid_high = smoothed.sample(15).watts;
        assert!((mid_low - 100.0).abs() < 1e-9);
        assert!((mid_high - 300.0).abs() < 1e-9);
        let edge = smoothed.sample(10).watts;
        assert!(edge > 100.0 && edge < 300.0);
    }

    #[test]
    fn sliding_extrema_track_the_envelope() {
        let t = step_trace();
        let hi = sliding_max(&t, 3.0);
        let lo = sliding_min(&t, 3.0);
        assert_eq!(hi.len(), t.len());
        assert_eq!(lo.len(), t.len());
        // Mid-plateau: max == min == the plateau level.
        assert_eq!(hi.sample(5).watts, 100.0);
        assert_eq!(lo.sample(5).watts, 100.0);
        assert_eq!(hi.sample(15).watts, 300.0);
        // At the step edge the max window already sees the new plateau and
        // the min window still sees the old one.
        assert_eq!(hi.sample(9).watts, 300.0);
        assert_eq!(lo.sample(10).watts, 100.0);
        // Envelope ordering everywhere.
        for i in 0..t.len() {
            assert!(lo.sample(i).watts <= t.sample(i).watts);
            assert!(t.sample(i).watts <= hi.sample(i).watts);
        }
    }

    #[test]
    fn segmentation_recovers_three_phases() {
        let phases = segment_phases(&step_trace(), Watts::new(50.0));
        assert_eq!(phases.len(), 3, "{phases:?}");
        assert!((phases[0].mean_w - 100.0).abs() < 1e-9);
        assert!((phases[1].mean_w - 300.0).abs() < 1e-9);
        assert!((phases[2].mean_w - 100.0).abs() < 1e-9);
        assert_eq!(phases[0].start_s, 0.0);
        assert_eq!(phases[1].start_s, 10.0);
        assert_eq!(phases[2].start_s, 20.0);
    }

    #[test]
    fn phase_energies_tile_the_trace() {
        let t = step_trace();
        let phases = segment_phases(&t, Watts::new(50.0));
        let total: f64 = phases.iter().map(|p| p.energy_j).sum();
        assert!((total - t.energy().value()).abs() < 1e-9, "{total}");
        // Each phase energy matches the indexed window query over its span.
        for p in &phases {
            let direct = t.energy_between(p.start_s, p.end_s).value();
            assert!((p.energy_j - direct).abs() < 1e-9, "{p:?} vs {direct}");
        }
    }

    #[test]
    fn segmentation_constant_trace_is_one_phase() {
        let t = trace(&[(0.0, 200.0), (1.0, 201.0), (2.0, 199.0)]);
        let phases = segment_phases(&t, Watts::new(50.0));
        assert_eq!(phases.len(), 1);
        assert!((phases[0].mean_w - 200.0).abs() < 1.0);
    }

    proptest! {
        /// Percentiles are monotone in p and bounded by min/max.
        #[test]
        fn prop_percentile_monotone(
            powers in proptest::collection::vec(1.0..1000.0f64, 2..64),
            p1 in 0.0..100.0f64, p2 in 0.0..100.0f64,
        ) {
            let mut t = PowerTrace::new();
            for (i, &w) in powers.iter().enumerate() {
                t.push(i as f64, Watts::new(w));
            }
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            prop_assert!(percentile(&t, lo).value() <= percentile(&t, hi).value() + 1e-9);
            let min = powers.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = powers.iter().cloned().fold(0.0, f64::max);
            prop_assert!(percentile(&t, 0.0).value() >= min - 1e-9);
            prop_assert!(percentile(&t, 100.0).value() <= max + 1e-9);
        }

        /// Smoothing never escapes the value range, phases tile the trace in
        /// both time and energy, and the sliding extrema bracket the signal.
        #[test]
        fn prop_smoothing_bounded_phases_tile(
            powers in proptest::collection::vec(1.0..1000.0f64, 2..64),
            window in 0.5..10.0f64,
        ) {
            let mut t = PowerTrace::new();
            for (i, &w) in powers.iter().enumerate() {
                t.push(i as f64, Watts::new(w));
            }
            let min = powers.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = powers.iter().cloned().fold(0.0, f64::max);
            for s in moving_average(&t, window).iter() {
                prop_assert!(s.watts >= min - 1e-9 && s.watts <= max + 1e-9);
            }
            let (smax, smin) = (sliding_max(&t, window), sliding_min(&t, window));
            for i in 0..t.len() {
                prop_assert!(smin.sample(i).watts <= t.sample(i).watts);
                prop_assert!(smax.sample(i).watts >= t.sample(i).watts);
            }
            let phases = segment_phases(&t, Watts::new(10.0));
            prop_assert!(!phases.is_empty());
            prop_assert_eq!(phases[0].start_s, 0.0);
            for w in phases.windows(2) {
                prop_assert!((w[0].end_s - w[1].start_s).abs() < 1e-9);
            }
            let tiled: f64 = phases.iter().map(|p| p.energy_j).sum();
            prop_assert!((tiled - t.energy().value()).abs()
                < 1e-9 * t.energy().value().max(1.0));
        }
    }
}
