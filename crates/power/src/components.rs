//! Component-level power models.
//!
//! Each model maps a utilization level in `[0, 1]` to DC power draw. The
//! shapes follow the standard server-power literature:
//!
//! * CPU: `P = P_idle + (P_max − P_idle) · u^α` with α slightly above 1
//!   (frequency/voltage effects make the first cores cheaper than the last).
//! * Memory: near-linear in bandwidth utilization per DIMM.
//! * Disk: idle spindle/controller power plus an active-I/O increment.
//! * NIC: small idle draw plus traffic-proportional increment.
//! * Baseboard: constant (chipset, fans at fixed speed, BMC).

use serde::{Deserialize, Serialize};
use tgi_core::Watts;

/// CPU socket power model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuPower {
    /// Idle power per socket, watts.
    pub idle_w: f64,
    /// Fully-loaded power per socket, watts (TDP-ish).
    pub max_w: f64,
    /// Utilization exponent α (1.0 = linear; ~1.15 typical).
    pub alpha: f64,
    /// Number of sockets.
    pub sockets: usize,
}

impl CpuPower {
    /// Power at CPU utilization `u ∈ [0,1]`, all sockets.
    pub fn power(&self, u: f64) -> Watts {
        self.power_scaled(u, 1.0)
    }

    /// Power at utilization `u` with the clock scaled to `freq_ratio` of
    /// nominal (DVFS). Dynamic power follows the classic `f·V²` law with
    /// voltage roughly proportional to frequency — a cubic — while idle
    /// (leakage + uncore) stays fixed.
    pub fn power_scaled(&self, u: f64, freq_ratio: f64) -> Watts {
        let u = u.clamp(0.0, 1.0);
        let ratio = freq_ratio.clamp(0.1, 1.5);
        let dynamic = (self.max_w - self.idle_w) * u.powf(self.alpha) * ratio.powi(3);
        Watts::new((self.idle_w + dynamic) * self.sockets as f64)
    }
}

/// Memory subsystem power model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryPower {
    /// Idle (refresh/standby) power per DIMM, watts.
    pub idle_w_per_dimm: f64,
    /// Fully-active power per DIMM, watts.
    pub active_w_per_dimm: f64,
    /// DIMM count.
    pub dimms: usize,
}

impl MemoryPower {
    /// Power at memory-bandwidth utilization `u ∈ [0,1]`.
    pub fn power(&self, u: f64) -> Watts {
        let u = u.clamp(0.0, 1.0);
        let per_dimm = self.idle_w_per_dimm + (self.active_w_per_dimm - self.idle_w_per_dimm) * u;
        Watts::new(per_dimm * self.dimms as f64)
    }
}

/// Storage device power model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskPower {
    /// Idle power (spindle or controller), watts.
    pub idle_w: f64,
    /// Active (seek/transfer) power, watts.
    pub active_w: f64,
    /// Drive count.
    pub drives: usize,
}

impl DiskPower {
    /// Power at I/O utilization `u ∈ [0,1]`.
    pub fn power(&self, u: f64) -> Watts {
        let u = u.clamp(0.0, 1.0);
        let per_drive = self.idle_w + (self.active_w - self.idle_w) * u;
        Watts::new(per_drive * self.drives as f64)
    }
}

/// Network interface power model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NicPower {
    /// Idle power, watts (link maintenance).
    pub idle_w: f64,
    /// Saturated-traffic power, watts.
    pub active_w: f64,
}

impl NicPower {
    /// Power at network utilization `u ∈ [0,1]`.
    pub fn power(&self, u: f64) -> Watts {
        let u = u.clamp(0.0, 1.0);
        Watts::new(self.idle_w + (self.active_w - self.idle_w) * u)
    }
}

/// Constant baseboard draw: chipset, BMC, fans at nominal speed, VRM losses
/// not captured elsewhere.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BaseboardPower {
    /// Constant power, watts.
    pub w: f64,
}

impl BaseboardPower {
    /// The constant draw.
    pub fn power(&self) -> Watts {
        Watts::new(self.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cpu() -> CpuPower {
        CpuPower { idle_w: 20.0, max_w: 95.0, alpha: 1.15, sockets: 2 }
    }

    #[test]
    fn cpu_endpoints() {
        let c = cpu();
        assert!((c.power(0.0).value() - 40.0).abs() < 1e-9);
        assert!((c.power(1.0).value() - 190.0).abs() < 1e-9);
    }

    #[test]
    fn cpu_clamps_out_of_range() {
        let c = cpu();
        assert_eq!(c.power(-0.5).value(), c.power(0.0).value());
        assert_eq!(c.power(2.0).value(), c.power(1.0).value());
    }

    #[test]
    fn cpu_alpha_makes_midload_cheaper_than_linear() {
        // α > 1 ⇒ u^α < u for u ∈ (0,1) ⇒ sub-linear power at mid-load.
        let c = cpu();
        let linear = 40.0 + (190.0 - 40.0) * 0.5;
        assert!(c.power(0.5).value() < linear);
    }

    #[test]
    fn dvfs_scaling_is_cubic_on_dynamic_power() {
        let c = cpu();
        let full = c.power_scaled(1.0, 1.0).value();
        let half = c.power_scaled(1.0, 0.5).value();
        // Idle survives; dynamic shrinks by 8x at half clock.
        let idle = c.power(0.0).value();
        let dynamic_full = full - idle;
        let dynamic_half = half - idle;
        assert!((dynamic_half - dynamic_full / 8.0).abs() < 1e-9);
    }

    #[test]
    fn dvfs_ratio_is_clamped() {
        let c = cpu();
        assert_eq!(c.power_scaled(1.0, 0.0).value(), c.power_scaled(1.0, 0.1).value());
        assert_eq!(c.power_scaled(1.0, 9.0).value(), c.power_scaled(1.0, 1.5).value());
    }

    #[test]
    fn memory_linear_in_utilization() {
        let m = MemoryPower { idle_w_per_dimm: 2.0, active_w_per_dimm: 6.0, dimms: 8 };
        assert!((m.power(0.0).value() - 16.0).abs() < 1e-9);
        assert!((m.power(1.0).value() - 48.0).abs() < 1e-9);
        assert!((m.power(0.5).value() - 32.0).abs() < 1e-9);
    }

    #[test]
    fn disk_and_nic_models() {
        let d = DiskPower { idle_w: 4.0, active_w: 10.0, drives: 2 };
        assert!((d.power(0.5).value() - 14.0).abs() < 1e-9);
        let n = NicPower { idle_w: 1.0, active_w: 5.0 };
        assert!((n.power(0.25).value() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn baseboard_constant() {
        let b = BaseboardPower { w: 55.0 };
        assert_eq!(b.power().value(), 55.0);
    }

    proptest! {
        /// Every component model is monotone in utilization and bounded by
        /// its endpoints.
        #[test]
        fn prop_monotone_bounded(u1 in 0.0..1.0f64, u2 in 0.0..1.0f64) {
            let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
            let c = cpu();
            prop_assert!(c.power(lo).value() <= c.power(hi).value() + 1e-12);
            prop_assert!(c.power(lo).value() >= c.power(0.0).value() - 1e-12);
            prop_assert!(c.power(hi).value() <= c.power(1.0).value() + 1e-12);

            let m = MemoryPower { idle_w_per_dimm: 2.0, active_w_per_dimm: 6.0, dimms: 4 };
            prop_assert!(m.power(lo).value() <= m.power(hi).value() + 1e-12);

            let d = DiskPower { idle_w: 4.0, active_w: 10.0, drives: 1 };
            prop_assert!(d.power(lo).value() <= d.power(hi).value() + 1e-12);

            let n = NicPower { idle_w: 1.0, active_w: 5.0 };
            prop_assert!(n.power(lo).value() <= n.power(hi).value() + 1e-12);
        }
    }
}
