//! Accelerator (GPU) power model — the paper's §VI platform extension.
//!
//! "The suitability of TGI to various kind of platforms, such as GPU based
//! system, is of particular interest." A discrete accelerator adds a large
//! idle floor (device memory, fans) and an even larger dynamic range; its
//! power responds to *its own* utilization, not the host CPU's.

use serde::{Deserialize, Serialize};
use tgi_core::Watts;

/// A discrete accelerator's power model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorPower {
    /// Idle power per device, watts (device memory + fans + leakage).
    pub idle_w: f64,
    /// Board power at full load, watts (TDP).
    pub max_w: f64,
    /// Utilization exponent; GPUs ramp close to linearly once busy.
    pub alpha: f64,
    /// Devices per node.
    pub devices: usize,
}

impl AcceleratorPower {
    /// No accelerators (the default for CPU-only nodes).
    pub fn none() -> Self {
        AcceleratorPower { idle_w: 0.0, max_w: 0.0, alpha: 1.0, devices: 0 }
    }

    /// A Fermi-class (2011-era) compute GPU: ~40 W idle, 225 W TDP.
    pub fn fermi_class(devices: usize) -> Self {
        AcceleratorPower { idle_w: 40.0, max_w: 225.0, alpha: 1.05, devices }
    }

    /// Power at accelerator utilization `u ∈ [0,1]`, all devices.
    pub fn power(&self, u: f64) -> Watts {
        if self.devices == 0 {
            return Watts::new(0.0);
        }
        let u = u.clamp(0.0, 1.0);
        let per_device = self.idle_w + (self.max_w - self.idle_w) * u.powf(self.alpha);
        Watts::new(per_device * self.devices as f64)
    }

    /// True when the node actually has accelerators.
    pub fn is_present(&self) -> bool {
        self.devices > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn none_draws_nothing() {
        let a = AcceleratorPower::none();
        assert!(!a.is_present());
        assert_eq!(a.power(0.0).value(), 0.0);
        assert_eq!(a.power(1.0).value(), 0.0);
    }

    #[test]
    fn fermi_endpoints() {
        let a = AcceleratorPower::fermi_class(2);
        assert!(a.is_present());
        assert!((a.power(0.0).value() - 80.0).abs() < 1e-9);
        assert!((a.power(1.0).value() - 450.0).abs() < 1e-9);
    }

    #[test]
    fn idle_floor_is_significant() {
        // The GPU idle floor is a real cost: ~18% of TDP.
        let a = AcceleratorPower::fermi_class(1);
        assert!(a.power(0.0).value() / a.power(1.0).value() > 0.15);
    }

    proptest! {
        /// Monotone and bounded, like every component model.
        #[test]
        fn prop_monotone_bounded(u1 in 0.0..1.0f64, u2 in 0.0..1.0f64) {
            let a = AcceleratorPower::fermi_class(2);
            let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
            prop_assert!(a.power(lo).value() <= a.power(hi).value() + 1e-12);
            prop_assert!(a.power(hi).value() <= a.power(1.0).value() + 1e-12);
            prop_assert!(a.power(lo).value() >= a.power(0.0).value() - 1e-12);
        }
    }
}
