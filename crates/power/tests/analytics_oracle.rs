//! Property-test oracle: the indexed analytics paths must agree with naive
//! reference implementations (written out in full here, independent of the
//! library's prefix-index machinery) to within 1e-9, and exactly where the
//! design guarantees bit-identical accumulation. Run under
//! `TGI_NUM_THREADS=1` and `TGI_NUM_THREADS=4` in CI so the parallel fleet
//! reductions are covered at both pool shapes.

use power_model::{analysis, trace_io, PercentileCache, PowerTrace, TraceSet};
use proptest::prelude::*;
use tgi_core::Watts;

/// Relative-or-absolute closeness at the oracle tolerance.
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

fn build(dts: &[f64], watts: &[f64]) -> PowerTrace {
    let mut trace = PowerTrace::new();
    let mut t = 0.0;
    for (dt, &w) in dts.iter().zip(watts) {
        t += dt;
        trace.push(t, Watts::new(w));
    }
    trace
}

/// Naive sequential trapezoid integration over the full trace.
fn naive_energy(times: &[f64], watts: &[f64]) -> f64 {
    let mut e = 0.0;
    for i in 1..times.len() {
        e += 0.5 * (watts[i - 1] + watts[i]) * (times[i] - times[i - 1]);
    }
    e
}

/// Naive linear interpolation of power at time `t` (t within the span).
fn naive_power_at(times: &[f64], watts: &[f64], t: f64) -> f64 {
    let i = times.partition_point(|&x| x <= t);
    if i == 0 {
        return watts[0];
    }
    if i == times.len() {
        return watts[times.len() - 1];
    }
    let (t0, t1) = (times[i - 1], times[i]);
    if t1 == t0 {
        return watts[i];
    }
    watts[i - 1] + (watts[i] - watts[i - 1]) * (t - t0) / (t1 - t0)
}

/// Naive windowed energy: clamp `[a, b]` to the span and integrate the
/// piecewise-linear power segment by segment.
fn naive_energy_between(times: &[f64], watts: &[f64], a: f64, b: f64) -> f64 {
    if times.is_empty() {
        return 0.0;
    }
    let a = a.max(times[0]);
    let b = b.min(times[times.len() - 1]);
    if b <= a {
        return 0.0;
    }
    let mut e = 0.0;
    for i in 1..times.len() {
        let lo = times[i - 1].max(a);
        let hi = times[i].min(b);
        if hi > lo {
            let w0 = naive_power_at(times, watts, lo);
            let w1 = naive_power_at(times, watts, hi);
            e += 0.5 * (w0 + w1) * (hi - lo);
        }
    }
    e
}

/// Naive O(n·w) centered moving average: arithmetic mean of every sample
/// within `half` seconds of sample `i`.
fn naive_moving_average(times: &[f64], watts: &[f64], window_s: f64) -> Vec<f64> {
    let half = window_s / 2.0;
    (0..times.len())
        .map(|i| {
            let members: Vec<f64> = (0..times.len())
                .filter(|&j| (times[j] - times[i]).abs() <= half)
                .map(|j| watts[j])
                .collect();
            members.iter().sum::<f64>() / members.len() as f64
        })
        .collect()
}

/// Naive sorted-array percentile with linear interpolation.
fn naive_percentile(watts: &[f64], p: f64) -> f64 {
    let mut sorted = watts.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    sorted[lo] + (sorted[hi] - sorted[lo]) * (rank - lo as f64)
}

/// Non-decreasing timestamps (duplicates allowed) with bounded powers,
/// generated as (dt, watts) pairs.
fn arb_trace() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    proptest::collection::vec((0.0..1.5f64, 0.0..1000.0f64), 1..160)
        .prop_map(|pairs| pairs.into_iter().unzip())
}

proptest! {
    /// Total energy is bit-identical to the naive sequential trapezoid sum
    /// (the prefix index accumulates in the same order), and the O(1)
    /// average/peak/min agree with full scans.
    #[test]
    fn prop_scalar_queries_match_naive((dts, watts) in arb_trace()) {
        let trace = build(&dts, &watts);
        let e = naive_energy(trace.times(), trace.watts());
        prop_assert_eq!(trace.energy().value(), e, "energy must be bit-identical");
        let dur = trace.times()[trace.len() - 1] - trace.times()[0];
        if dur > 0.0 {
            prop_assert!(close(trace.average_power().value(), e / dur));
        }
        let peak = watts.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = watts.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert_eq!(trace.peak_power().value(), peak);
        prop_assert_eq!(trace.min_power().value(), min);
    }

    /// Indexed O(log n) window energies agree with segment-by-segment naive
    /// integration, for windows inside, straddling, and outside the span.
    #[test]
    fn prop_energy_between_matches_naive(
        (dts, watts) in arb_trace(),
        a_frac in -0.3..1.3f64,
        b_frac in -0.3..1.3f64,
    ) {
        let trace = build(&dts, &watts);
        let (first, last) = trace.time_bounds().unwrap();
        let span = (last - first).max(1.0);
        let a = first + a_frac * span;
        let b = first + b_frac * span;
        let naive = naive_energy_between(trace.times(), trace.watts(), a, b);
        prop_assert!(
            close(trace.energy_between(a, b).value(), naive),
            "window [{}, {}]: indexed {} vs naive {}",
            a, b, trace.energy_between(a, b).value(), naive
        );
        // The materialized window trace integrates to the same energy.
        let window = trace.window(a, b);
        prop_assert!(close(window.energy().value(), naive));
    }

    /// The two-pointer moving average equals the O(n·w) definition.
    #[test]
    fn prop_moving_average_matches_naive(
        (dts, watts) in arb_trace(),
        window_s in 0.1..20.0f64,
    ) {
        let trace = build(&dts, &watts);
        let fast = analysis::moving_average(&trace, window_s);
        let naive = naive_moving_average(trace.times(), trace.watts(), window_s);
        prop_assert_eq!(fast.len(), naive.len());
        for (i, &expect) in naive.iter().enumerate() {
            prop_assert!(
                close(fast.sample(i).watts, expect),
                "sample {}: fast {} vs naive {}", i, fast.sample(i).watts, expect
            );
        }
    }

    /// The monotonic-deque sliding extrema equal the rescan definition
    /// exactly (no arithmetic, so no tolerance).
    #[test]
    fn prop_sliding_extrema_match_naive(
        (dts, watts) in arb_trace(),
        window_s in 0.1..20.0f64,
    ) {
        let trace = build(&dts, &watts);
        let maxes = analysis::sliding_max(&trace, window_s);
        let mins = analysis::sliding_min(&trace, window_s);
        let half = window_s / 2.0;
        let times = trace.times();
        let w = trace.watts();
        for i in 0..trace.len() {
            let in_window = (0..trace.len()).filter(|&j| (times[j] - times[i]).abs() <= half);
            let expect_max =
                in_window.clone().map(|j| w[j]).fold(f64::NEG_INFINITY, f64::max);
            let expect_min = in_window.map(|j| w[j]).fold(f64::INFINITY, f64::min);
            prop_assert_eq!(maxes.sample(i).watts, expect_max);
            prop_assert_eq!(mins.sample(i).watts, expect_min);
        }
    }

    /// Selection-based percentiles and the sorted cache both match the
    /// full-sort reference.
    #[test]
    fn prop_percentiles_match_full_sort(
        (dts, watts) in arb_trace(),
        p in 0.0..=100.0f64,
    ) {
        let trace = build(&dts, &watts);
        let expect = naive_percentile(trace.watts(), p);
        let direct = analysis::try_percentile(&trace, p).unwrap().value();
        prop_assert!(close(direct, expect), "selection {} vs sort {}", direct, expect);
        let cache = PercentileCache::new(&trace);
        let cached = cache.percentile(p).unwrap().value();
        prop_assert!(close(cached, expect), "cache {} vs sort {}", cached, expect);
    }

    /// Batch ingest builds exactly the same trace — samples and the whole
    /// prefix index — as one-at-a-time validated pushes.
    #[test]
    fn prop_batch_ingest_equals_pushes((dts, watts) in arb_trace()) {
        let pushed = build(&dts, &watts);
        let mut batched = PowerTrace::with_capacity(dts.len());
        batched.extend_from_slices(pushed.times(), pushed.watts());
        prop_assert_eq!(&batched, &pushed);
        prop_assert_eq!(batched.prefix_energy(), pushed.prefix_energy());
        prop_assert_eq!(batched.energy().value(), pushed.energy().value());
        prop_assert_eq!(batched.peak_power(), pushed.peak_power());
        prop_assert_eq!(batched.min_power(), pushed.min_power());
    }

    /// Phase energies tile the trace: they sum to the total energy.
    #[test]
    fn prop_phase_energies_tile_total((dts, watts) in arb_trace()) {
        let trace = build(&dts, &watts);
        let phases = analysis::segment_phases(&trace, Watts::new(50.0));
        let total: f64 = phases.iter().map(|p| p.energy_j).sum();
        prop_assert!(close(total, trace.energy().value()));
    }

    /// The SoA trace round-trips through both wire formats: the serde
    /// sample-object JSON shape and the meter-log CSV.
    #[test]
    fn prop_wire_round_trips((dts, watts) in arb_trace()) {
        let trace = build(&dts, &watts);
        let json = serde_json::to_string(&trace).unwrap();
        prop_assert!(json.contains("\"samples\""));
        let back: PowerTrace = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&back, &trace);
        prop_assert_eq!(back.energy().value(), trace.energy().value());
        let csv = trace_io::from_log(&trace_io::to_log(&trace)).unwrap();
        prop_assert_eq!(csv.len(), trace.len());
        prop_assert!(close(csv.energy().value(), trace.energy().value()));
    }

    /// Parallel fleet reductions agree with naive per-trace sums at the
    /// current `TGI_NUM_THREADS` (CI runs this file at 1 and 4 threads).
    #[test]
    fn prop_fleet_totals_match_naive(
        traces in proptest::collection::vec(arb_trace(), 1..8),
        a_frac in 0.0..1.0f64,
        b_frac in 0.0..1.0f64,
    ) {
        let mut set = TraceSet::new();
        let mut naive_total = 0.0;
        let mut span_hi = 0.0f64;
        for (i, (dts, watts)) in traces.iter().enumerate() {
            let trace = build(dts, watts);
            naive_total += naive_energy(trace.times(), trace.watts());
            span_hi = span_hi.max(trace.time_bounds().unwrap().1);
            set.push(format!("node{i}"), trace);
        }
        prop_assert!(close(set.total_energy().value(), naive_total));
        let summary = set.summarize();
        prop_assert!(close(summary.total_energy_j, naive_total));
        prop_assert_eq!(summary.nodes.len(), traces.len());

        let (a, b) = (a_frac * span_hi, b_frac * span_hi);
        let naive_window: f64 = set
            .iter()
            .map(|(_, t)| naive_energy_between(t.times(), t.watts(), a, b))
            .sum();
        prop_assert!(close(set.energy_between(a, b).value(), naive_window));
    }
}
