//! Oracle parity: the on-disk trace store vs. the in-memory prefix index.
//!
//! Builds one randomized trace, persists it, and asserts that every query
//! the store answers is `to_bits`-identical to the in-memory `PowerTrace`
//! over the same samples — while the store's decompression counter proves
//! each energy window touched at most its two boundary chunks.

use power_model::persist::StoreBackedTrace;
use power_model::PowerTrace;
use std::path::PathBuf;
use tgi_core::Watts;
use tgi_trace_store::StoreConfig;

struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("tgi_store_oracle_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Deterministic splitmix-style generator (no external dependency).
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A meter-like trace: mostly fixed cadence with occasional jitter and
/// duplicate timestamps, quantized watts holding levels between phase
/// shifts.
fn synth(n: usize, seed: u64) -> PowerTrace {
    let mut rng = Rng(seed);
    let mut trace = PowerTrace::with_capacity(n);
    let mut t = 0.0f64;
    let mut level = 180.0f64;
    for i in 0..n {
        let r = rng.uniform();
        if i > 0 {
            if r < 0.02 {
                // duplicate timestamp
            } else if r < 0.07 {
                t += 1.0 + (rng.uniform() - 0.5) * 0.25; // jittered tick
            } else {
                t += 1.0; // metronomic tick
            }
        }
        if rng.uniform() < 0.03 {
            level = (80.0 + 400.0 * rng.uniform() * 10.0).round() / 10.0;
        }
        trace.push(t, Watts::new(level));
    }
    trace
}

#[test]
fn store_queries_are_bit_identical_to_memory_oracle() {
    let scratch = ScratchDir::new("parity");
    let trace = synth(40_000, 0xC0FFEE);
    let config = StoreConfig { chunk_samples: 512, retain_seconds: None };
    let backed = StoreBackedTrace::new(trace.to_store(&scratch.0, config).unwrap());
    assert!(backed.store().sealed_chunks() >= 70, "want many chunks for a meaningful test");

    assert_eq!(backed.energy().value().to_bits(), trace.energy().value().to_bits());
    assert_eq!(backed.peak_power().value().to_bits(), trace.peak_power().value().to_bits());
    assert_eq!(backed.min_power().value().to_bits(), trace.min_power().value().to_bits());
    assert_eq!(backed.time_bounds(), trace.time_bounds());

    let (first, last) = trace.time_bounds().unwrap();
    let span = last - first;
    let mut rng = Rng(0xDECAF);
    for case in 0..400 {
        let a = first + span * rng.uniform();
        let b = first + span * rng.uniform();
        backed.store().reset_decompressions();
        let got = backed.energy_between(a, b).unwrap().value();
        let want = trace.energy_between(a, b).value();
        assert_eq!(got.to_bits(), want.to_bits(), "case {case}: energy_between({a}, {b})");
        assert!(
            backed.store().decompressions() <= 2,
            "case {case}: energy_between({a}, {b}) decompressed {} chunks",
            backed.store().decompressions()
        );
        let got = backed.power_at(a).unwrap().map(|w| w.value().to_bits());
        let want = trace.power_at(a).map(|w| w.value().to_bits());
        assert_eq!(got, want, "case {case}: power_at({a})");
        let got = backed.average_power_between(a, b).unwrap().value();
        let want = trace.average_power_between(a, b).value();
        assert_eq!(got.to_bits(), want.to_bits(), "case {case}: average_power_between({a}, {b})");
    }

    // Exact stored timestamps (chunk edges included) and out-of-range
    // probes behave identically too.
    for idx in [0usize, 511, 512, 513, 8191, 8192, 39_999] {
        let t = trace.times()[idx];
        assert_eq!(
            backed.power_at(t).unwrap().map(|w| w.value().to_bits()),
            trace.power_at(t).map(|w| w.value().to_bits()),
            "power_at stored sample {idx}"
        );
        backed.store().reset_decompressions();
        let got = backed.energy_between(first, t).unwrap().value();
        assert_eq!(got.to_bits(), trace.energy_between(first, t).value().to_bits());
        assert!(backed.store().decompressions() <= 2);
    }
    assert_eq!(backed.power_at(first - 1.0).unwrap(), None);
    assert_eq!(backed.power_at(last + 1.0).unwrap(), None);
    assert_eq!(
        backed.energy_between(f64::NEG_INFINITY, f64::INFINITY).unwrap().value().to_bits(),
        trace.energy_between(f64::NEG_INFINITY, f64::INFINITY).value().to_bits()
    );
}

#[test]
fn windows_round_trip_through_store() {
    let scratch = ScratchDir::new("window");
    let trace = synth(5_000, 42);
    let config = StoreConfig { chunk_samples: 256, retain_seconds: None };
    let backed = StoreBackedTrace::new(trace.to_store(&scratch.0, config).unwrap());
    let (first, last) = trace.time_bounds().unwrap();
    let span = last - first;
    let mut rng = Rng(7);
    for case in 0..40 {
        let a = first + span * rng.uniform();
        let b = a + span * rng.uniform() * 0.2;
        let w_mem = trace.window(a, b);
        let w_store = backed.window(a, b).unwrap();
        assert_eq!(w_store, w_mem, "case {case}: window({a}, {b})");
        assert_eq!(
            w_store.energy().value().to_bits(),
            w_mem.energy().value().to_bits(),
            "case {case}: window({a}, {b}) energy"
        );
    }
}

#[test]
fn reopened_store_stays_bit_identical() {
    let scratch = ScratchDir::new("reopen");
    let trace = synth(3_000, 99);
    let config = StoreConfig { chunk_samples: 128, retain_seconds: None };
    drop(trace.to_store(&scratch.0, config.clone()).unwrap());
    // A fresh process would see exactly this: recovery from disk alone.
    let backed = StoreBackedTrace::open(&scratch.0, config).unwrap();
    assert_eq!(backed.len(), 3_000);
    assert_eq!(backed.energy().value().to_bits(), trace.energy().value().to_bits());
    let restored = backed.to_trace().unwrap();
    assert_eq!(restored, trace);
    assert_eq!(restored.prefix_energy(), trace.prefix_energy());
}
