//! Property tests: the codec round-trips arbitrary valid sample columns
//! bit-for-bit, the store round-trips them through disk under arbitrary
//! batch splits, and a torn-write corpus — truncations and corrupted
//! tails at arbitrary byte offsets — proves recovery only ever surfaces
//! a bit-exact prefix of what was written, never an invalid or mangled
//! sample.

use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use tgi_trace_store::{codec, StoreConfig, TraceStore, SEGMENT_FILE, WAL_FILE};

static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("tgi_store_prop_{tag}_{}_{seq}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Builds valid sample columns out of raw generator material: deltas are
/// clamped non-negative (zero deltas exercise duplicate timestamps), and
/// watts mix free values with the 0.1 W-quantized levels real meters
/// emit.
fn columns(raw: &[(f64, f64, bool)]) -> (Vec<f64>, Vec<f64>) {
    let mut t = 0.0;
    let mut times = Vec::with_capacity(raw.len());
    let mut watts = Vec::with_capacity(raw.len());
    for &(dt, w, quantize) in raw {
        t += dt;
        times.push(t);
        watts.push(if quantize { (w * 10.0).round() / 10.0 } else { w });
    }
    (times, watts)
}

proptest! {
    /// The chunk codec is lossless at the bit-pattern level for any valid
    /// column pair, including zero deltas and repeated watts.
    #[test]
    fn codec_round_trips_bitwise(
        raw in proptest::collection::vec((0.0..90.0f64, 0.0..4500.0f64, proptest::bool::ANY), 1..300),
    ) {
        let (times, watts) = columns(&raw);
        let mut enc = codec::Encoder::new();
        for (&t, &w) in times.iter().zip(&watts) {
            enc.push(t, w);
        }
        let (payload, bit_len) = enc.finish();
        let (t2, w2) = codec::decode(&payload, bit_len, times.len()).expect("decodes");
        prop_assert_eq!(t2.len(), times.len());
        for i in 0..times.len() {
            prop_assert_eq!(t2[i].to_bits(), times[i].to_bits(), "time {}", i);
            prop_assert_eq!(w2[i].to_bits(), watts[i].to_bits(), "watts {}", i);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any valid column pair, appended under an arbitrary batch split and
    /// chunk size, reads back bit-identically after a reopen.
    #[test]
    fn store_round_trips_under_any_batching(
        raw in proptest::collection::vec((0.0..10.0f64, 0.0..900.0f64, proptest::bool::ANY), 1..400),
        chunk in 2usize..96,
        split in 1usize..64,
    ) {
        let (times, watts) = columns(&raw);
        let scratch = ScratchDir::new("batch");
        let config = StoreConfig { chunk_samples: chunk, retain_seconds: None };
        {
            let mut store = TraceStore::open(&scratch.0, config.clone()).expect("opens");
            for (ts, ws) in times.chunks(split).zip(watts.chunks(split)) {
                store.append_batch(ts, ws).expect("appends");
            }
            store.sync().expect("syncs");
        }
        let store = TraceStore::open(&scratch.0, config).expect("reopens");
        let (t2, w2) = store.to_columns().expect("reads back");
        prop_assert_eq!(t2.len(), times.len());
        for i in 0..times.len() {
            prop_assert_eq!(t2[i].to_bits(), times[i].to_bits(), "time {}", i);
            prop_assert_eq!(w2[i].to_bits(), watts[i].to_bits(), "watts {}", i);
        }
    }
}

/// Asserts the recovered store holds a bit-exact prefix of `times`/`watts`
/// — the crash-consistency contract. Returns the recovered length.
fn assert_is_prefix(store: &TraceStore, times: &[f64], watts: &[f64]) -> usize {
    let (t2, w2) = store.to_columns().expect("recovered store reads back");
    assert!(
        t2.len() <= times.len(),
        "recovery surfaced {} samples, only {} were ever written",
        t2.len(),
        times.len()
    );
    for i in 0..t2.len() {
        assert_eq!(t2[i].to_bits(), times[i].to_bits(), "recovered time {i} mangled");
        assert_eq!(w2[i].to_bits(), watts[i].to_bits(), "recovered watts {i} mangled");
        assert!(t2[i].is_finite() && t2[i] >= 0.0, "invalid recovered time");
        assert!(w2[i].is_finite() && w2[i] >= 0.0, "invalid recovered watts");
    }
    t2.len()
}

fn truncate_file(path: &Path, len: u64) {
    let f = std::fs::OpenOptions::new().write(true).open(path).expect("file opens");
    f.set_len(len).expect("truncates");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Torn-write corpus: tear the WAL at an arbitrary byte offset —
    /// optionally scribbling garbage over the new tail — and recovery
    /// yields a valid bit-exact prefix, never a torn or invalid sample.
    #[test]
    fn torn_wal_recovers_a_clean_prefix(
        raw in proptest::collection::vec((0.0..5.0f64, 0.0..800.0f64, proptest::bool::ANY), 8..200),
        cut_unit in 0.0..1.0f64,
        scribble in proptest::bool::ANY,
    ) {
        let (times, watts) = columns(&raw);
        let scratch = ScratchDir::new("torn_wal");
        let config = StoreConfig { chunk_samples: 1 << 20, retain_seconds: None };
        {
            // Large chunks: nothing seals, every sample lives in the WAL.
            let mut store = TraceStore::open(&scratch.0, config.clone()).expect("opens");
            for (ts, ws) in times.chunks(7).zip(watts.chunks(7)) {
                store.append_batch(ts, ws).expect("appends");
            }
            store.sync().expect("syncs");
        }
        let wal = scratch.0.join(WAL_FILE);
        let full = std::fs::metadata(&wal).expect("wal exists").len();
        let cut = (full as f64 * cut_unit) as u64;
        truncate_file(&wal, cut);
        if scribble && cut > 4 {
            // A torn sector is rarely clean zeros: overwrite the last few
            // bytes with junk that cannot CRC-validate.
            let mut bytes = std::fs::read(&wal).expect("read wal");
            let n = bytes.len();
            for b in &mut bytes[n.saturating_sub(4)..] {
                *b ^= 0xA5;
            }
            std::fs::write(&wal, bytes).expect("rewrite wal");
        }
        let store = TraceStore::open(&scratch.0, config).expect("recovery never fails open");
        let recovered = assert_is_prefix(&store, &times, &watts);
        // A full, untouched WAL must recover everything.
        if cut == full && !scribble {
            prop_assert_eq!(recovered, times.len());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Torn segment writes: tear the sealed-chunk file at an arbitrary
    /// offset. Recovery truncates to the last intact chunk, replays what
    /// the WAL still covers, and surfaces only a bit-exact prefix.
    #[test]
    fn torn_segment_recovers_a_clean_prefix(
        raw in proptest::collection::vec((0.0..5.0f64, 0.0..800.0f64, proptest::bool::ANY), 32..300),
        chunk in 4usize..32,
        cut_unit in 0.0..1.0f64,
    ) {
        let (times, watts) = columns(&raw);
        let scratch = ScratchDir::new("torn_seg");
        let config = StoreConfig { chunk_samples: chunk, retain_seconds: None };
        {
            let mut store = TraceStore::open(&scratch.0, config.clone()).expect("opens");
            store.append_batch(&times, &watts).expect("appends");
            store.sync().expect("syncs");
        }
        let segment = scratch.0.join(SEGMENT_FILE);
        let full = std::fs::metadata(&segment).expect("segment exists").len();
        truncate_file(&segment, (full as f64 * cut_unit) as u64);
        let store = TraceStore::open(&scratch.0, config).expect("recovery never fails open");
        assert_is_prefix(&store, &times, &watts);
        // Whatever survived still answers queries without error.
        if !store.is_empty() {
            let (first, last) = store.time_bounds().expect("bounds");
            let e = store.energy_between(first, last).expect("energy query");
            prop_assert!(e.is_finite() && e >= 0.0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Appending after a torn-tail recovery continues the timeline as if
    /// the lost suffix had never been written.
    #[test]
    fn appends_continue_after_recovery(
        raw in proptest::collection::vec((0.0..5.0f64, 0.0..800.0f64, proptest::bool::ANY), 8..120),
        cut_unit in 0.0..1.0f64,
    ) {
        let (times, watts) = columns(&raw);
        let scratch = ScratchDir::new("resume");
        let config = StoreConfig { chunk_samples: 16, retain_seconds: None };
        {
            let mut store = TraceStore::open(&scratch.0, config.clone()).expect("opens");
            store.append_batch(&times, &watts).expect("appends");
            store.sync().expect("syncs");
        }
        let wal = scratch.0.join(WAL_FILE);
        let full = std::fs::metadata(&wal).expect("wal exists").len();
        truncate_file(&wal, (full as f64 * cut_unit) as u64);
        let mut store = TraceStore::open(&scratch.0, config).expect("recovers");
        let recovered = assert_is_prefix(&store, &times, &watts);
        // Continue past the highest timestamp ever written: always valid.
        let resume_t = times[times.len() - 1] + 1.0;
        store.append(resume_t, 123.4).expect("append resumes");
        prop_assert_eq!(store.len(), recovered as u64 + 1);
        let (_, last) = store.time_bounds().expect("bounds");
        prop_assert_eq!(last.to_bits(), resume_t.to_bits());
    }
}
