//! `tgi-trace-store`: append-only, compressed, crash-safe on-disk storage
//! for power traces, with O(log n) cold energy queries.
//!
//! Long-running fleet telemetry outgrows RAM: a month of 1 Hz wall-power
//! samples per node is ~2.6 M samples, and raw `(f64, f64)` pairs cost
//! 16 bytes each. This crate stores the same stream at well under
//! 2 bytes/sample for realistic meter output, survives crashes at any
//! byte, and answers windowed energy queries without rehydrating the
//! trace:
//!
//! * **Codec** ([`codec`]): delta-of-delta timestamps + Gorilla-style XOR
//!   floats, lossless at the bit-pattern level — decoded samples are
//!   `to_bits`-identical to what was appended.
//! * **Chunks** ([`chunk`]): fixed-sample-count sealed chunks in one
//!   append-only segment file, each with a fixed-size footer (first/last
//!   timestamp and watts, prefix-energy snapshots, peak/min, CRCs).
//!   Footers stay resident; payloads stay on disk.
//! * **WAL** ([`wal`]): the active chunk is write-ahead logged as raw
//!   length-prefixed records; open-time recovery truncates torn tails and
//!   never surfaces an invalid sample.
//! * **Store** ([`store`]): [`TraceStore`] ties them together — validated
//!   appends, footer binary-search queries that decompress at most the
//!   two boundary chunks of a window, and retention/merge compaction.
//!
//! The store maintains the same running trapezoid accumulation chain as
//! the in-memory `PowerTrace` prefix index, snapshotted into every
//! footer, so its energy answers are bit-identical to the in-memory
//! structure over the same samples. The crate depends only on `std`;
//! `tgi-power-model` layers the `PowerTrace` integration on top.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
pub mod chunk;
pub mod codec;
pub mod crc;
pub mod store;
pub mod wal;

pub use store::{CompactionStats, StoreConfig, StoreError, TraceStore, SEGMENT_FILE, WAL_FILE};
