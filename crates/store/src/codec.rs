//! The chunk codec: delta-of-delta timestamps + Gorilla-style XOR floats.
//!
//! Samples are `(t, watts)` pairs of `f64`s with non-decreasing, finite,
//! non-negative timestamps and finite, non-negative watts. Both columns are
//! compressed losslessly at the *bit-pattern* level, so a decoded sample is
//! `to_bits`-identical to what was encoded — the property every energy
//! query downstream relies on.
//!
//! **Timestamps.** For finite non-negative `f64`s, the IEEE-754 bit
//! pattern is order-isomorphic to the value, so the `u64` bit patterns of
//! a valid timestamp column are non-decreasing. The encoder stores the
//! first pattern raw, then the delta-of-delta of consecutive patterns in
//! Gorilla's bucketed scheme: a metronomic logger (deltas repeating
//! bit-for-bit, which a fixed-cadence meter produces over long stretches)
//! costs **one bit per sample**; jitter pays only for the bits it moves.
//!
//! **Watts.** Classic Gorilla XOR: a repeated value (a quantized meter
//! holding a level) is one bit; a changed value stores only the meaningful
//! window of the XOR, reusing the previous window when it still fits.
//!
//! The encoder is deliberately validation-free: the store validates at its
//! append boundary, and the decoder re-checks on the way out (a chunk that
//! passed its CRC but decodes into invalid samples is reported as corrupt,
//! never surfaced).

use crate::bits::{BitReader, BitWriter};

/// Zigzag-folds a signed delta-of-delta into an unsigned value so small
/// magnitudes of either sign stay small. The input fits in 65 bits
/// (difference of two `u64` deltas), hence `i128`/`u128`.
fn zigzag(v: i128) -> u128 {
    ((v << 1) ^ (v >> 127)) as u128
}

fn unzigzag(z: u128) -> i128 {
    ((z >> 1) as i128) ^ -((z & 1) as i128)
}

/// Streaming encoder for one chunk.
#[derive(Debug)]
pub struct Encoder {
    bw: BitWriter,
    count: usize,
    prev_t_bits: u64,
    prev_delta: u64,
    prev_w_bits: u64,
    /// XOR window from the last confined write; `u8::MAX` marks "no window
    /// yet".
    prev_leading: u8,
    prev_meaningful: u8,
}

impl Encoder {
    /// An empty encoder.
    pub fn new() -> Self {
        Encoder {
            bw: BitWriter::new(),
            count: 0,
            prev_t_bits: 0,
            prev_delta: 0,
            prev_w_bits: 0,
            prev_leading: u8::MAX,
            prev_meaningful: 0,
        }
    }

    /// Samples encoded so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Appends one sample. The caller guarantees validity (finite,
    /// non-negative, `t` non-decreasing); the encoder is lossless either
    /// way, but the decoder will reject streams that decode invalid.
    pub fn push(&mut self, t: f64, w: f64) {
        let t_bits = t.to_bits();
        let w_bits = w.to_bits();
        if self.count == 0 {
            self.bw.push_bits(t_bits, 64);
            self.bw.push_bits(w_bits, 64);
        } else {
            self.push_time(t_bits);
            self.push_watts(w_bits);
        }
        self.prev_t_bits = t_bits;
        self.prev_w_bits = w_bits;
        self.count += 1;
    }

    fn push_time(&mut self, t_bits: u64) {
        let delta = t_bits - self.prev_t_bits;
        let dod = delta as i128 - self.prev_delta as i128;
        self.prev_delta = delta;
        if dod == 0 {
            self.bw.push_bit(false);
            return;
        }
        let z = zigzag(dod);
        if z < (1 << 7) {
            self.bw.push_bits(0b10, 2);
            self.bw.push_bits(z as u64, 7);
        } else if z < (1 << 12) {
            self.bw.push_bits(0b110, 3);
            self.bw.push_bits(z as u64, 12);
        } else if z < (1 << 20) {
            self.bw.push_bits(0b1110, 4);
            self.bw.push_bits(z as u64, 20);
        } else if z < (1 << 32) {
            self.bw.push_bits(0b11110, 5);
            self.bw.push_bits(z as u64, 32);
        } else {
            // Worst case: 65 bits of zigzagged delta-of-delta, split as
            // high bit + low 64.
            self.bw.push_bits(0b11111, 5);
            self.bw.push_bit((z >> 64) & 1 == 1);
            self.bw.push_bits(z as u64, 64);
        }
    }

    fn push_watts(&mut self, w_bits: u64) {
        let xor = w_bits ^ self.prev_w_bits;
        if xor == 0 {
            self.bw.push_bit(false);
            return;
        }
        self.bw.push_bit(true);
        let leading = xor.leading_zeros() as u8;
        let trailing = xor.trailing_zeros() as u8;
        let meaningful = 64 - leading - trailing;
        let fits_prev = self.prev_leading != u8::MAX
            && leading >= self.prev_leading
            && (64 - self.prev_leading - self.prev_meaningful) <= trailing;
        if fits_prev {
            // Confined to the previous window: control '0', then the
            // window's bits.
            self.bw.push_bit(false);
            let prev_trailing = 64 - self.prev_leading - self.prev_meaningful;
            self.bw.push_bits(xor >> prev_trailing, self.prev_meaningful);
        } else {
            // New window: control '1', 6-bit leading count, 6-bit
            // (length - 1), then the meaningful bits.
            self.bw.push_bit(true);
            self.bw.push_bits(leading as u64, 6);
            self.bw.push_bits((meaningful - 1) as u64, 6);
            self.bw.push_bits(xor >> trailing, meaningful);
            self.prev_leading = leading;
            self.prev_meaningful = meaningful;
        }
    }

    /// Finishes the stream: packed payload bytes plus the exact bit length.
    pub fn finish(self) -> (Vec<u8>, usize) {
        self.bw.finish()
    }
}

impl Default for Encoder {
    fn default() -> Self {
        Encoder::new()
    }
}

/// Why a chunk payload failed to decode.
#[derive(Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The bit stream ended before `count` samples were read.
    Truncated,
    /// A decoded sample violated the trace invariants (non-finite or
    /// negative values, backwards timestamps) — the payload is corrupt
    /// even though its checksum matched.
    InvalidSample {
        /// Index of the offending sample within the chunk.
        index: usize,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "bit stream ended mid-sample"),
            DecodeError::InvalidSample { index } => {
                write!(f, "decoded sample {index} violates trace invariants")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Decodes a payload of exactly `count` samples into parallel columns,
/// validating the trace invariants on the way out.
pub fn decode(
    payload: &[u8],
    bit_len: usize,
    count: usize,
) -> Result<(Vec<f64>, Vec<f64>), DecodeError> {
    let mut br = BitReader::new(payload, bit_len);
    let mut times = Vec::with_capacity(count);
    let mut watts = Vec::with_capacity(count);
    let mut prev_t_bits = 0u64;
    let mut prev_delta = 0u64;
    let mut prev_w_bits = 0u64;
    let mut prev_leading = u8::MAX;
    let mut prev_meaningful = 0u8;
    for i in 0..count {
        let (t_bits, w_bits) = if i == 0 {
            let t = br.read_bits(64).ok_or(DecodeError::Truncated)?;
            let w = br.read_bits(64).ok_or(DecodeError::Truncated)?;
            (t, w)
        } else {
            let t_bits = {
                let dod = read_dod(&mut br)?;
                let delta = (prev_delta as i128 + dod) as u64;
                prev_delta = delta;
                prev_t_bits.wrapping_add(delta)
            };
            let w_bits = if !br.read_bit().ok_or(DecodeError::Truncated)? {
                prev_w_bits
            } else if !br.read_bit().ok_or(DecodeError::Truncated)? {
                if prev_leading == u8::MAX {
                    return Err(DecodeError::InvalidSample { index: i });
                }
                let prev_trailing = 64 - prev_leading - prev_meaningful;
                let window = br.read_bits(prev_meaningful).ok_or(DecodeError::Truncated)?;
                prev_w_bits ^ (window << prev_trailing)
            } else {
                let leading = br.read_bits(6).ok_or(DecodeError::Truncated)? as u8;
                let meaningful = br.read_bits(6).ok_or(DecodeError::Truncated)? as u8 + 1;
                if leading + meaningful > 64 {
                    return Err(DecodeError::InvalidSample { index: i });
                }
                let trailing = 64 - leading - meaningful;
                let window = br.read_bits(meaningful).ok_or(DecodeError::Truncated)?;
                prev_leading = leading;
                prev_meaningful = meaningful;
                prev_w_bits ^ (window << trailing)
            };
            (t_bits, w_bits)
        };
        let t = f64::from_bits(t_bits);
        let w = f64::from_bits(w_bits);
        let ordered = times.last().map(|&last: &f64| t >= last).unwrap_or(true);
        if !t.is_finite() || t < 0.0 || !w.is_finite() || w < 0.0 || !ordered {
            return Err(DecodeError::InvalidSample { index: i });
        }
        prev_t_bits = t_bits;
        prev_w_bits = w_bits;
        times.push(t);
        watts.push(w);
    }
    Ok((times, watts))
}

fn read_dod(br: &mut BitReader<'_>) -> Result<i128, DecodeError> {
    if !br.read_bit().ok_or(DecodeError::Truncated)? {
        return Ok(0);
    }
    let z = if !br.read_bit().ok_or(DecodeError::Truncated)? {
        br.read_bits(7).ok_or(DecodeError::Truncated)? as u128
    } else if !br.read_bit().ok_or(DecodeError::Truncated)? {
        br.read_bits(12).ok_or(DecodeError::Truncated)? as u128
    } else if !br.read_bit().ok_or(DecodeError::Truncated)? {
        br.read_bits(20).ok_or(DecodeError::Truncated)? as u128
    } else if !br.read_bit().ok_or(DecodeError::Truncated)? {
        br.read_bits(32).ok_or(DecodeError::Truncated)? as u128
    } else {
        let high = br.read_bit().ok_or(DecodeError::Truncated)? as u128;
        let low = br.read_bits(64).ok_or(DecodeError::Truncated)? as u128;
        (high << 64) | low
    };
    Ok(unzigzag(z))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(samples: &[(f64, f64)]) -> (Vec<f64>, Vec<f64>) {
        let mut enc = Encoder::new();
        for &(t, w) in samples {
            enc.push(t, w);
        }
        let (payload, bits) = enc.finish();
        decode(&payload, bits, samples.len()).expect("valid stream decodes")
    }

    #[test]
    fn empty_and_single_sample() {
        let (t, w) = round_trip(&[]);
        assert!(t.is_empty() && w.is_empty());
        let (t, w) = round_trip(&[(1.5, 250.25)]);
        assert_eq!((t[0], w[0]), (1.5, 250.25));
    }

    #[test]
    fn bit_identical_round_trip() {
        let samples = [
            (0.0, 80.0),
            (1.0, 80.0),
            (2.0, 80.1),
            (2.0, 250.7),
            (3.5, 250.7),
            (1e9, 0.1),
            (1.0000000001e9, 1e-300),
            (f64::MAX / 2.0, 4999.9),
        ];
        let (t, w) = round_trip(&samples);
        for (i, &(st, sw)) in samples.iter().enumerate() {
            assert_eq!(t[i].to_bits(), st.to_bits(), "time {i}");
            assert_eq!(w[i].to_bits(), sw.to_bits(), "watts {i}");
        }
    }

    #[test]
    fn metronomic_cadence_costs_two_bits_per_sample() {
        // Exact 1 s cadence with a held power level: after the first
        // sample the time delta repeats bit-for-bit (dod = 0 → 1 bit) and
        // the power XOR is 0 (1 bit).
        let n = 10_000usize;
        let mut enc = Encoder::new();
        for i in 0..n {
            enc.push(1_000_000.0 + i as f64, 242.5);
        }
        let (payload, bits) = enc.finish();
        // First sample is 128 bits; the steady state must stay under
        // 4 bits/sample even across exponent-boundary hiccups.
        assert!(bits < 128 + 4 * n, "steady-state stream took {bits} bits");
        let (t, w) = decode(&payload, bits, n).unwrap();
        assert_eq!(t.len(), n);
        assert!(w.iter().all(|&x| x == 242.5));
    }

    #[test]
    fn truncated_payload_is_detected() {
        let mut enc = Encoder::new();
        for i in 0..50 {
            enc.push(i as f64, 100.0 + (i % 7) as f64);
        }
        let (payload, bits) = enc.finish();
        assert_eq!(decode(&payload, bits / 2, 50).unwrap_err(), DecodeError::Truncated);
        // Claiming more samples than were written also fails loudly.
        assert_eq!(decode(&payload, bits, 51).unwrap_err(), DecodeError::Truncated);
    }

    #[test]
    fn zigzag_round_trips_extremes() {
        for v in [
            0i128,
            1,
            -1,
            i64::MAX as i128,
            i64::MIN as i128,
            (u64::MAX as i128),
            -(u64::MAX as i128),
        ] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}
