//! Sealed-chunk segment format: `[magic][len][payload][footer]` blocks in
//! one append-only file.
//!
//! Each sealed chunk carries a fixed-size footer summarizing everything a
//! window query needs without decompressing the payload: first/last
//! timestamp and watts, the *prefix energy* at the chunk's first and last
//! sample (bit-exact snapshots of the store's running trapezoid
//! accumulation), peak/min watts, the payload's exact bit length, and
//! CRCs over both payload and footer. `energy_between` binary-searches
//! these footers and touches at most the two boundary chunks' payloads.
//!
//! Opening a segment scans blocks sequentially — header, *seek over* the
//! payload, footer — so cold data is never read. A torn tail (crash during
//! a seal) fails its magic/length/CRC checks and the scan reports the last
//! valid offset; the store truncates there and re-seals from the WAL.

use crate::crc::crc32;
use std::io::{self, Read, Seek, SeekFrom, Write};

/// Magic prefix of every block: "TGSC" (TGI Store Chunk).
pub const BLOCK_MAGIC: u32 = 0x5447_5343;
/// Magic prefix of every footer: "TGSF".
pub const FOOTER_MAGIC: u32 = 0x5447_5346;
/// Serialized footer size, bytes.
pub const FOOTER_LEN: usize = 96;
/// Block header size: magic + payload length.
pub const BLOCK_HEADER_LEN: usize = 8;

/// An in-memory chunk summary: the footer plus the payload's location in
/// the segment file. One of these per sealed chunk stays resident; the
/// payload stays on disk until a query needs it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkMeta {
    /// Byte offset of the payload within the segment file.
    pub payload_offset: u64,
    /// Payload length in bytes.
    pub payload_len: u32,
    /// Exact valid bit count of the payload's bit stream.
    pub bit_len: u64,
    /// Samples in the chunk (always ≥ 1 for a sealed chunk).
    pub count: u64,
    /// First sample's timestamp.
    pub first_t: f64,
    /// Last sample's timestamp.
    pub last_t: f64,
    /// First sample's power.
    pub first_w: f64,
    /// Last sample's power.
    pub last_w: f64,
    /// Prefix energy (J) at the chunk's first sample — the store's running
    /// trapezoid accumulation snapshotted bit-exactly at seal time.
    pub cum_first: f64,
    /// Prefix energy at the chunk's last sample.
    pub cum_last: f64,
    /// Highest power in the chunk.
    pub peak_w: f64,
    /// Lowest power in the chunk.
    pub min_w: f64,
    /// CRC-32 of the payload bytes.
    pub payload_crc: u32,
}

impl ChunkMeta {
    /// Serializes the footer (without the payload-offset, which is implied
    /// by the block's position in the file).
    pub fn encode_footer(&self) -> [u8; FOOTER_LEN] {
        let mut out = [0u8; FOOTER_LEN];
        let mut at = 0usize;
        let mut put = |bytes: &[u8]| {
            out[at..at + bytes.len()].copy_from_slice(bytes);
            at += bytes.len();
        };
        put(&FOOTER_MAGIC.to_le_bytes());
        put(&self.count.to_le_bytes());
        put(&self.bit_len.to_le_bytes());
        put(&self.first_t.to_bits().to_le_bytes());
        put(&self.last_t.to_bits().to_le_bytes());
        put(&self.first_w.to_bits().to_le_bytes());
        put(&self.last_w.to_bits().to_le_bytes());
        put(&self.cum_first.to_bits().to_le_bytes());
        put(&self.cum_last.to_bits().to_le_bytes());
        put(&self.peak_w.to_bits().to_le_bytes());
        put(&self.min_w.to_bits().to_le_bytes());
        put(&self.payload_len.to_le_bytes());
        put(&self.payload_crc.to_le_bytes());
        debug_assert_eq!(at, FOOTER_LEN - 4);
        let crc = crc32(&out[..FOOTER_LEN - 4]);
        out[FOOTER_LEN - 4..].copy_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses a footer, returning `None` on bad magic or checksum.
    pub fn decode_footer(bytes: &[u8; FOOTER_LEN], payload_offset: u64) -> Option<ChunkMeta> {
        let stored_crc = u32::from_le_bytes(bytes[FOOTER_LEN - 4..].try_into().ok()?);
        if crc32(&bytes[..FOOTER_LEN - 4]) != stored_crc {
            return None;
        }
        let mut at = 0usize;
        let mut take_u32 = |bytes: &[u8]| -> u32 {
            let v = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
            at += 4;
            v
        };
        if take_u32(bytes) != FOOTER_MAGIC {
            return None;
        }
        let mut at8 = 4usize;
        let mut take_u64 = || -> u64 {
            let v = u64::from_le_bytes(bytes[at8..at8 + 8].try_into().expect("8 bytes"));
            at8 += 8;
            v
        };
        let count = take_u64();
        let bit_len = take_u64();
        let first_t = f64::from_bits(take_u64());
        let last_t = f64::from_bits(take_u64());
        let first_w = f64::from_bits(take_u64());
        let last_w = f64::from_bits(take_u64());
        let cum_first = f64::from_bits(take_u64());
        let cum_last = f64::from_bits(take_u64());
        let peak_w = f64::from_bits(take_u64());
        let min_w = f64::from_bits(take_u64());
        let tail = at8;
        let payload_len = u32::from_le_bytes(bytes[tail..tail + 4].try_into().expect("4 bytes"));
        let payload_crc =
            u32::from_le_bytes(bytes[tail + 4..tail + 8].try_into().expect("4 bytes"));
        Some(ChunkMeta {
            payload_offset,
            payload_len,
            bit_len,
            count,
            first_t,
            last_t,
            first_w,
            last_w,
            cum_first,
            cum_last,
            peak_w,
            min_w,
            payload_crc,
        })
    }
}

/// Serializes one full block (`header + payload + footer`) ready to append
/// to the segment file. `meta.payload_offset` is ignored; the caller knows
/// where the block lands.
pub fn encode_block(meta: &ChunkMeta, payload: &[u8]) -> Vec<u8> {
    debug_assert_eq!(meta.payload_len as usize, payload.len());
    let mut out = Vec::with_capacity(BLOCK_HEADER_LEN + payload.len() + FOOTER_LEN);
    out.extend_from_slice(&BLOCK_MAGIC.to_le_bytes());
    out.extend_from_slice(&meta.payload_len.to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&meta.encode_footer());
    out
}

/// Scans a segment file from the start, returning every valid chunk's
/// metadata plus the byte length of the valid prefix. The scan stops at
/// the first block whose magic, length, or footer CRC fails — the torn
/// tail a crash mid-seal leaves — and never reads payload bytes.
pub fn scan_segment<F: Read + Seek>(file: &mut F) -> io::Result<(Vec<ChunkMeta>, u64)> {
    let total = file.seek(SeekFrom::End(0))?;
    file.seek(SeekFrom::Start(0))?;
    let mut chunks = Vec::new();
    let mut offset = 0u64;
    loop {
        let remaining = total - offset;
        if remaining < (BLOCK_HEADER_LEN + FOOTER_LEN) as u64 {
            break;
        }
        let mut header = [0u8; BLOCK_HEADER_LEN];
        file.read_exact(&mut header)?;
        let magic = u32::from_le_bytes(header[..4].try_into().expect("4 bytes"));
        let payload_len = u32::from_le_bytes(header[4..].try_into().expect("4 bytes")) as u64;
        if magic != BLOCK_MAGIC || payload_len > remaining - (BLOCK_HEADER_LEN + FOOTER_LEN) as u64
        {
            break;
        }
        // Seek over the payload — cold data stays cold.
        file.seek(SeekFrom::Current(payload_len as i64))?;
        let mut footer = [0u8; FOOTER_LEN];
        file.read_exact(&mut footer)?;
        let payload_offset = offset + BLOCK_HEADER_LEN as u64;
        let meta = match ChunkMeta::decode_footer(&footer, payload_offset) {
            Some(meta) if meta.payload_len as u64 == payload_len && meta.count > 0 => meta,
            _ => break,
        };
        chunks.push(meta);
        offset += BLOCK_HEADER_LEN as u64 + payload_len + FOOTER_LEN as u64;
    }
    Ok((chunks, offset))
}

/// Reads and checksums one chunk's payload bytes.
pub fn read_payload<F: Read + Seek>(file: &mut F, meta: &ChunkMeta) -> io::Result<Vec<u8>> {
    file.seek(SeekFrom::Start(meta.payload_offset))?;
    let mut payload = vec![0u8; meta.payload_len as usize];
    file.read_exact(&mut payload)?;
    Ok(payload)
}

/// Appends a block and returns the new file length. The caller fsyncs.
pub fn append_block<F: Write + Seek>(
    file: &mut F,
    end: u64,
    meta: &ChunkMeta,
    payload: &[u8],
) -> io::Result<u64> {
    file.seek(SeekFrom::Start(end))?;
    let block = encode_block(meta, payload);
    file.write_all(&block)?;
    Ok(end + block.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn meta(payload: &[u8]) -> ChunkMeta {
        ChunkMeta {
            payload_offset: 0,
            payload_len: payload.len() as u32,
            bit_len: payload.len() as u64 * 8,
            count: 3,
            first_t: 0.0,
            last_t: 2.0,
            first_w: 100.0,
            last_w: 120.0,
            cum_first: 0.0,
            cum_last: 220.0,
            peak_w: 120.0,
            min_w: 100.0,
            payload_crc: crc32(payload),
        }
    }

    #[test]
    fn footer_round_trips() {
        let m = meta(b"payload");
        let encoded = m.encode_footer();
        let back = ChunkMeta::decode_footer(&encoded, 0).expect("valid footer");
        assert_eq!(back, m);
    }

    #[test]
    fn footer_rejects_corruption() {
        let m = meta(b"payload");
        let mut encoded = m.encode_footer();
        encoded[10] ^= 1;
        assert!(ChunkMeta::decode_footer(&encoded, 0).is_none());
    }

    #[test]
    fn scan_recovers_blocks_and_stops_at_torn_tail() {
        let mut file = Cursor::new(Vec::new());
        let p1 = b"first payload".to_vec();
        let p2 = b"second".to_vec();
        let mut end = 0;
        end = append_block(&mut file, end, &meta(&p1), &p1).unwrap();
        end = append_block(&mut file, end, &meta(&p2), &p2).unwrap();
        let clean_len = end;
        // A torn third block: header + half a payload, no footer.
        file.seek(SeekFrom::Start(end)).unwrap();
        file.write_all(&BLOCK_MAGIC.to_le_bytes()).unwrap();
        file.write_all(&400u32.to_le_bytes()).unwrap();
        file.write_all(b"torn....").unwrap();

        let (chunks, valid_len) = scan_segment(&mut file).unwrap();
        assert_eq!(chunks.len(), 2);
        assert_eq!(valid_len, clean_len);
        assert_eq!(chunks[0].payload_len as usize, p1.len());
        let payload = read_payload(&mut file, &chunks[1]).unwrap();
        assert_eq!(payload, p2);
        assert_eq!(crc32(&payload), chunks[1].payload_crc);
    }

    #[test]
    fn scan_of_empty_file_is_empty() {
        let mut file = Cursor::new(Vec::new());
        let (chunks, valid_len) = scan_segment(&mut file).unwrap();
        assert!(chunks.is_empty());
        assert_eq!(valid_len, 0);
    }
}
