//! MSB-first bit-level writer/reader for the chunk codec.
//!
//! The codec emits variable-width fields (1-bit hold flags, 7–65-bit
//! zigzagged deltas, 1–64-bit XOR windows); this module packs them densely
//! into bytes. Writing is append-only; reading is a cursor over an
//! immutable byte slice. Both sides count bits, so a decoder can detect a
//! truncated stream instead of misreading past the end.

/// Append-only bit sink. Bits fill each byte from the most significant
/// position down, so the byte stream is a straight left-to-right
/// transcription of the bit stream.
#[derive(Debug, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits already used in the final byte (0 when the stream is
    /// byte-aligned).
    used: u8,
}

impl BitWriter {
    /// An empty stream.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Total bits written so far.
    pub fn bit_len(&self) -> usize {
        if self.used == 0 {
            self.bytes.len() * 8
        } else {
            (self.bytes.len() - 1) * 8 + self.used as usize
        }
    }

    /// Appends a single bit.
    pub fn push_bit(&mut self, bit: bool) {
        if self.used == 0 {
            self.bytes.push(0);
        }
        if bit {
            let last = self.bytes.last_mut().expect("push_bit opened a byte");
            *last |= 1 << (7 - self.used);
        }
        self.used = (self.used + 1) % 8;
    }

    /// Appends the low `n` bits of `value`, most significant first.
    /// `n` must be 1..=64.
    pub fn push_bits(&mut self, value: u64, n: u8) {
        debug_assert!((1..=64).contains(&n), "push_bits width {n}");
        for i in (0..n).rev() {
            self.push_bit((value >> i) & 1 == 1);
        }
    }

    /// Finishes the stream, returning the packed bytes (final byte
    /// zero-padded) and the exact bit length.
    pub fn finish(self) -> (Vec<u8>, usize) {
        let bits = self.bit_len();
        (self.bytes, bits)
    }
}

/// Cursor over a packed bit stream.
#[derive(Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Absolute bit position of the cursor.
    pos: usize,
    /// Total valid bits (the writer's `bit_len`).
    len: usize,
}

impl<'a> BitReader<'a> {
    /// A cursor over `len` valid bits of `bytes`.
    pub fn new(bytes: &'a [u8], len: usize) -> Self {
        BitReader { bytes, pos: 0, len }
    }

    /// Bits left to read.
    pub fn remaining(&self) -> usize {
        self.len.saturating_sub(self.pos)
    }

    /// Reads one bit; `None` past the end.
    pub fn read_bit(&mut self) -> Option<bool> {
        if self.pos >= self.len {
            return None;
        }
        let byte = self.bytes[self.pos / 8];
        let bit = (byte >> (7 - (self.pos % 8))) & 1 == 1;
        self.pos += 1;
        Some(bit)
    }

    /// Reads `n` bits (1..=64), most significant first; `None` if fewer
    /// remain.
    pub fn read_bits(&mut self, n: u8) -> Option<u64> {
        debug_assert!((1..=64).contains(&n), "read_bits width {n}");
        if self.remaining() < n as usize {
            return None;
        }
        let mut out = 0u64;
        for _ in 0..n {
            out = (out << 1) | (self.read_bit()? as u64);
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_round_trip() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, false, true, true, false, true];
        for &b in &pattern {
            w.push_bit(b);
        }
        let (bytes, len) = w.finish();
        assert_eq!(len, pattern.len());
        let mut r = BitReader::new(&bytes, len);
        for &b in &pattern {
            assert_eq!(r.read_bit(), Some(b));
        }
        assert_eq!(r.read_bit(), None);
    }

    #[test]
    fn multi_bit_fields_round_trip() {
        let mut w = BitWriter::new();
        w.push_bits(0b101, 3);
        w.push_bits(u64::MAX, 64);
        w.push_bits(0x1234_5678, 32);
        w.push_bit(true);
        let (bytes, len) = w.finish();
        assert_eq!(len, 3 + 64 + 32 + 1);
        let mut r = BitReader::new(&bytes, len);
        assert_eq!(r.read_bits(3), Some(0b101));
        assert_eq!(r.read_bits(64), Some(u64::MAX));
        assert_eq!(r.read_bits(32), Some(0x1234_5678));
        assert_eq!(r.read_bit(), Some(true));
        assert_eq!(r.read_bit(), None);
    }

    #[test]
    fn truncated_stream_reports_none_not_garbage() {
        let mut w = BitWriter::new();
        w.push_bits(0xFFFF, 16);
        let (bytes, len) = w.finish();
        let mut r = BitReader::new(&bytes, len);
        assert_eq!(r.read_bits(10), Some(0x3FF));
        assert_eq!(r.read_bits(7), None, "only 6 bits remain");
        assert_eq!(r.read_bits(6), Some(0x3F));
    }

    #[test]
    fn byte_alignment_is_tracked_across_boundaries() {
        let mut w = BitWriter::new();
        for i in 0..23 {
            w.push_bit(i % 3 == 0);
        }
        assert_eq!(w.bit_len(), 23);
        let (bytes, len) = w.finish();
        assert_eq!(bytes.len(), 3);
        let mut r = BitReader::new(&bytes, len);
        for i in 0..23 {
            assert_eq!(r.read_bit(), Some(i % 3 == 0), "bit {i}");
        }
    }
}
