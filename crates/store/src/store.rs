//! The store itself: an append-only directory of `{segment.tgs, wal.tgw}`
//! holding one compressed power trace.
//!
//! Appends go to the write-ahead log first ([`crate::wal`]), accumulate in
//! an in-memory active chunk, and seal into the segment file
//! ([`crate::chunk`]) every `chunk_samples` samples. The store maintains
//! the *same running trapezoid accumulation chain* as the in-memory
//! `PowerTrace` prefix index — each chunk footer snapshots that chain at
//! the chunk's first and last sample — so energy queries answered from
//! footers and boundary chunks are bit-identical (`to_bits`-equal) to the
//! in-memory structure over the same samples.
//!
//! Queries binary-search the resident footers. A query time that lands
//! *between* chunks (or exactly on a chunk edge) is answered from footers
//! alone; one that lands inside a chunk decompresses exactly that chunk.
//! `energy_between` therefore decompresses at most its two boundary
//! chunks, regardless of store size — O(log n) search plus O(chunk) work.

use crate::chunk::{self, ChunkMeta, BLOCK_HEADER_LEN, FOOTER_LEN};
use crate::codec::{self, Encoder};
use crate::crc::crc32;
use crate::wal;
use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Segment file name inside a store directory.
pub const SEGMENT_FILE: &str = "segment.tgs";
/// Write-ahead-log file name inside a store directory.
pub const WAL_FILE: &str = "wal.tgw";

/// Store tuning knobs.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Samples per sealed chunk. Larger chunks compress better and keep
    /// fewer footers resident; smaller chunks decompress faster on
    /// boundary queries.
    pub chunk_samples: usize,
    /// Retention horizon for [`TraceStore::compact`]: sealed chunks whose
    /// entire span is older than `last_time - retain_seconds` are dropped.
    /// `None` retains everything.
    pub retain_seconds: Option<f64>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig { chunk_samples: 65_536, retain_seconds: None }
    }
}

/// Why a store operation failed.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying file system failed.
    Io(io::Error),
    /// On-disk data failed a checksum or invariant check. Recovery-on-open
    /// truncates torn *tails*; this error means damage past that point
    /// (e.g. a payload whose CRC matched but decoded invalid).
    Corrupt {
        /// Human-readable description of what failed.
        detail: String,
    },
    /// An appended sample violated the trace invariants and was rejected
    /// (nothing was written).
    InvalidSample {
        /// Index of the offending sample within the submitted batch.
        index: usize,
        /// Which invariant it broke.
        detail: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Corrupt { detail } => write!(f, "store corrupt: {detail}"),
            StoreError::InvalidSample { index, detail } => {
                write!(f, "invalid sample {index}: {detail}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// What [`TraceStore::compact`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionStats {
    /// Sealed chunks before compaction (the active chunk, if any, is
    /// sealed by compaction and counted in `chunks_after`).
    pub chunks_before: usize,
    /// Sealed chunks after retention and merging.
    pub chunks_after: usize,
    /// Samples dropped by the retention horizon.
    pub samples_dropped: u64,
    /// Store bytes on disk before.
    pub bytes_before: u64,
    /// Store bytes on disk after.
    pub bytes_after: u64,
}

/// Decoded chunk columns: `(times, watts, cum)`.
type ChunkColumns = (Vec<f64>, Vec<f64>, Vec<f64>);

/// The last appended sample and the accumulation chain value at it.
#[derive(Debug, Clone, Copy)]
struct LastSample {
    t: f64,
    w: f64,
    cum: f64,
}

/// The sample neighborhood a point query interpolates in: the greatest
/// sample index with `time <= t`, plus the following sample when one
/// exists.
struct Neighborhood {
    t_i: f64,
    w_i: f64,
    cum_i: f64,
    next: Option<(f64, f64)>,
}

/// One on-disk power trace: compressed sealed chunks plus a WAL-backed
/// active chunk. See the module docs for the format and guarantees.
#[derive(Debug)]
pub struct TraceStore {
    dir: PathBuf,
    config: StoreConfig,
    /// Segment file handle; a mutex so `&self` queries can seek/read.
    segment: Mutex<File>,
    segment_len: u64,
    wal_file: File,
    wal_len: u64,
    /// Resident footers of the sealed chunks, in sample order.
    chunks: Vec<ChunkMeta>,
    /// Lifetime sample index of the first *active* sample (total samples
    /// sealed, after any retention rebase).
    sealed_count: u64,
    /// Active (unsealed) chunk columns; `active_cum[i]` is the absolute
    /// accumulation-chain value at that sample.
    active_t: Vec<f64>,
    active_w: Vec<f64>,
    active_cum: Vec<f64>,
    /// Chain state at the newest sample (sealed or active).
    last: Option<LastSample>,
    /// Running extrema over the stored samples (footer-derived on open).
    peak_w: f64,
    min_w: f64,
    /// Chunk decompressions performed by queries since open (or the last
    /// [`TraceStore::reset_decompressions`]) — the observable the bench
    /// uses to prove boundary-only decompression.
    decompressions: AtomicU64,
}

impl TraceStore {
    /// Opens (or creates) the store in `dir`, running crash recovery:
    /// torn tails of both segment and WAL are truncated, WAL records
    /// overlapping sealed data are dropped by absolute sample index, and
    /// the surviving active samples are replayed. Recovery never surfaces
    /// a sample that fails the trace invariants.
    pub fn open(dir: impl AsRef<Path>, config: StoreConfig) -> Result<TraceStore, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        let config = StoreConfig { chunk_samples: config.chunk_samples.max(1), ..config };
        std::fs::create_dir_all(&dir)?;
        let mut segment = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(dir.join(SEGMENT_FILE))?;
        let (mut chunks, mut valid_len) = chunk::scan_segment(&mut segment)?;
        // The footer chain itself must describe one non-decreasing trace;
        // a block that breaks that is treated as the start of an invalid
        // tail, same as a torn block.
        let mut keep = 0usize;
        let mut prev_last = f64::NEG_INFINITY;
        for meta in &chunks {
            let ok = meta.first_t.is_finite()
                && meta.first_t >= 0.0
                && meta.first_t <= meta.last_t
                && meta.first_t >= prev_last;
            if !ok {
                break;
            }
            prev_last = meta.last_t;
            keep += 1;
        }
        if keep < chunks.len() {
            chunks.truncate(keep);
            valid_len = chunks
                .last()
                .map(|m| m.payload_offset + m.payload_len as u64 + FOOTER_LEN as u64)
                .unwrap_or(0);
        }
        if segment.seek(SeekFrom::End(0))? > valid_len {
            segment.set_len(valid_len)?;
            segment.sync_data()?;
        }
        let sealed_count: u64 = chunks.iter().map(|m| m.count).sum();
        let last = chunks.last().map(|m| LastSample { t: m.last_t, w: m.last_w, cum: m.cum_last });
        let peak_w = chunks.iter().map(|m| m.peak_w).fold(0.0, f64::max);
        let min_w = chunks.iter().map(|m| m.min_w).fold(f64::INFINITY, f64::min);
        let mut wal_file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(dir.join(WAL_FILE))?;
        let wal_bytes = wal::read_all(&mut wal_file)?;
        let replayed =
            wal::replay(&wal_bytes, sealed_count, last.map(|l| l.t).unwrap_or(f64::NEG_INFINITY));
        if wal_bytes.len() as u64 > replayed.valid_len {
            wal_file.set_len(replayed.valid_len)?;
            wal_file.sync_data()?;
        }
        let segment_len = valid_len;
        let wal_len = replayed.valid_len;
        let mut store = TraceStore {
            dir,
            config,
            segment: Mutex::new(segment),
            segment_len,
            wal_file,
            wal_len,
            chunks,
            sealed_count,
            active_t: Vec::new(),
            active_w: Vec::new(),
            active_cum: Vec::new(),
            last,
            peak_w,
            min_w,
            decompressions: AtomicU64::new(0),
        };
        // Replay the surviving active samples through the normal ingest
        // path (already validated by `wal::replay`); if the configured
        // chunk size shrank since the WAL was written this may seal.
        let mut sealed = false;
        for rec in &replayed.records {
            for (&t, &w) in rec.times.iter().zip(&rec.watts) {
                store.ingest(t, w)?;
                if store.active_t.len() >= store.config.chunk_samples {
                    store.seal_active()?;
                    sealed = true;
                }
            }
        }
        if sealed {
            store.segment.get_mut().expect("segment lock").sync_data()?;
            store.reset_wal()?;
        }
        Ok(store)
    }

    /// The store's configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Appends one sample. Equivalent to a one-sample
    /// [`TraceStore::append_batch`].
    pub fn append(&mut self, t: f64, w: f64) -> Result<(), StoreError> {
        self.append_batch(&[t], &[w])
    }

    /// Appends a batch of samples: validates every sample up front
    /// (rejecting the whole batch on the first violation, with nothing
    /// written), writes one WAL record, then extends the active chunk,
    /// sealing as it fills. If any chunk sealed, the segment is fsynced
    /// before the WAL is atomically reset to the remaining active tail —
    /// so at every instant each sample is durable in the WAL or in an
    /// fsynced sealed chunk.
    pub fn append_batch(&mut self, times: &[f64], watts: &[f64]) -> Result<(), StoreError> {
        if times.len() != watts.len() {
            return Err(StoreError::InvalidSample {
                index: times.len().min(watts.len()),
                detail: "times and watts columns differ in length".to_string(),
            });
        }
        if times.is_empty() {
            return Ok(());
        }
        let mut last_t = self.last.map(|l| l.t).unwrap_or(f64::NEG_INFINITY);
        for (i, (&t, &w)) in times.iter().zip(watts).enumerate() {
            if !t.is_finite() || t < 0.0 {
                return Err(StoreError::InvalidSample {
                    index: i,
                    detail: format!("time must be finite and non-negative (got {t})"),
                });
            }
            if !w.is_finite() || w < 0.0 {
                return Err(StoreError::InvalidSample {
                    index: i,
                    detail: format!("power must be finite and non-negative (got {w})"),
                });
            }
            if t < last_t {
                return Err(StoreError::InvalidSample {
                    index: i,
                    detail: format!("timestamps must be non-decreasing (got {t} after {last_t})"),
                });
            }
            last_t = t;
        }
        let start_index = self.sealed_count + self.active_t.len() as u64;
        wal::append_record(&mut self.wal_file, start_index, times, watts)?;
        self.wal_len +=
            (wal::RECORD_HEADER_LEN + wal::PAYLOAD_PREFIX_LEN) as u64 + times.len() as u64 * 16;
        let mut sealed = false;
        for (&t, &w) in times.iter().zip(watts) {
            self.ingest(t, w)?;
            if self.active_t.len() >= self.config.chunk_samples {
                self.seal_active()?;
                sealed = true;
            }
        }
        if sealed {
            self.segment.get_mut().expect("segment lock").sync_data()?;
            self.reset_wal()?;
        }
        Ok(())
    }

    /// Forces both files to disk (appends alone leave the WAL tail in the
    /// OS page cache; torn-tail recovery bounds what a power cut loses to
    /// the un-synced suffix).
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.wal_file.sync_data()?;
        self.segment.get_mut().expect("segment lock").sync_data()?;
        Ok(())
    }

    /// Extends the in-memory columns and the accumulation chain with one
    /// pre-validated sample — exactly the operations the in-memory prefix
    /// index performs, so the chain stays `to_bits`-identical to it.
    fn ingest(&mut self, t: f64, w: f64) -> Result<(), StoreError> {
        let cum = match self.last {
            Some(l) => {
                let dt = t - l.t;
                l.cum + 0.5 * (l.w + w) * dt
            }
            None => 0.0,
        };
        self.active_t.push(t);
        self.active_w.push(w);
        self.active_cum.push(cum);
        self.last = Some(LastSample { t, w, cum });
        self.peak_w = self.peak_w.max(w);
        self.min_w = self.min_w.min(w);
        Ok(())
    }

    /// Compresses the active chunk, appends it to the segment, and clears
    /// the active columns. The caller fsyncs and resets the WAL.
    fn seal_active(&mut self) -> Result<(), StoreError> {
        debug_assert!(!self.active_t.is_empty(), "sealing an empty active chunk");
        let (meta, payload) = encode_chunk(&self.active_t, &self.active_w, &self.active_cum);
        let file = self.segment.get_mut().expect("segment lock");
        let new_len = chunk::append_block(file, self.segment_len, &meta, &payload)?;
        self.chunks
            .push(ChunkMeta { payload_offset: self.segment_len + BLOCK_HEADER_LEN as u64, ..meta });
        self.segment_len = new_len;
        self.sealed_count += meta.count;
        self.active_t.clear();
        self.active_w.clear();
        self.active_cum.clear();
        Ok(())
    }

    /// Atomically replaces the WAL with a single record holding the
    /// current active tail (or an empty file): write a temp file, fsync,
    /// rename over the live WAL.
    fn reset_wal(&mut self) -> Result<(), StoreError> {
        let tmp = self.dir.join("wal.tgw.tmp");
        let mut f = File::create(&tmp)?;
        let mut len = 0u64;
        if !self.active_t.is_empty() {
            let record = wal::encode_record(self.sealed_count, &self.active_t, &self.active_w);
            f.write_all(&record)?;
            len = record.len() as u64;
        }
        f.sync_all()?;
        std::fs::rename(&tmp, self.dir.join(WAL_FILE))?;
        self.wal_file = OpenOptions::new().read(true).write(true).open(self.dir.join(WAL_FILE))?;
        self.wal_len = len;
        Ok(())
    }

    /// Total samples stored (sealed + active).
    pub fn len(&self) -> u64 {
        self.sealed_count + self.active_t.len() as u64
    }

    /// True when the store holds no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of sealed chunks.
    pub fn sealed_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Samples currently in the unsealed active chunk.
    pub fn active_samples(&self) -> usize {
        self.active_t.len()
    }

    /// Bytes the store occupies on disk (segment + WAL).
    pub fn disk_bytes(&self) -> u64 {
        self.segment_len + self.wal_len
    }

    /// Chunk decompressions performed by queries since open or the last
    /// [`TraceStore::reset_decompressions`].
    pub fn decompressions(&self) -> u64 {
        self.decompressions.load(Ordering::Relaxed)
    }

    /// Zeroes the decompression counter (bench instrumentation).
    pub fn reset_decompressions(&self) {
        self.decompressions.store(0, Ordering::Relaxed);
    }

    /// First and last sample timestamps, when non-empty.
    pub fn time_bounds(&self) -> Option<(f64, f64)> {
        let first =
            self.chunks.first().map(|m| m.first_t).or_else(|| self.active_t.first().copied());
        let last = self.active_t.last().copied().or_else(|| self.chunks.last().map(|m| m.last_t));
        match (first, last) {
            (Some(a), Some(b)) => Some((a, b)),
            _ => None,
        }
    }

    /// Total trapezoidal energy over the stored samples — O(1) from the
    /// chain snapshots, `to_bits`-identical to the in-memory prefix index
    /// over the same samples (for a store that has never dropped data to
    /// retention; after retention the result is the retained span's
    /// energy).
    pub fn energy_total(&self) -> f64 {
        let last = match self.last {
            Some(l) => l.cum,
            None => return 0.0,
        };
        let base = self
            .chunks
            .first()
            .map(|m| m.cum_first)
            .or_else(|| self.active_cum.first().copied())
            .unwrap_or(0.0);
        last - base
    }

    /// Highest sampled power (0 when empty) — O(1).
    pub fn peak_watts(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.peak_w
        }
    }

    /// Lowest sampled power (0 when empty) — O(1).
    pub fn min_watts(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.min_w
        }
    }

    /// Reads, checksums, decodes, and re-chains one sealed chunk,
    /// returning `(times, watts, cum)` columns. The cum column is rebuilt
    /// from the footer's `cum_first` snapshot with the same arithmetic the
    /// chain used at append time, so it is bit-identical to the original.
    fn read_chunk(&self, idx: usize) -> Result<ChunkColumns, StoreError> {
        let meta = &self.chunks[idx];
        let payload = {
            let mut file = self.segment.lock().expect("segment lock");
            chunk::read_payload(&mut *file, meta)?
        };
        self.decompressions.fetch_add(1, Ordering::Relaxed);
        if crc32(&payload) != meta.payload_crc {
            return Err(StoreError::Corrupt {
                detail: format!("chunk {idx}: payload checksum mismatch"),
            });
        }
        let (times, watts) = codec::decode(&payload, meta.bit_len as usize, meta.count as usize)
            .map_err(|e| StoreError::Corrupt { detail: format!("chunk {idx}: {e}") })?;
        let edges_match = times.first().map(|t| t.to_bits()) == Some(meta.first_t.to_bits())
            && times.last().map(|t| t.to_bits()) == Some(meta.last_t.to_bits())
            && watts.first().map(|w| w.to_bits()) == Some(meta.first_w.to_bits())
            && watts.last().map(|w| w.to_bits()) == Some(meta.last_w.to_bits());
        if !edges_match {
            return Err(StoreError::Corrupt {
                detail: format!("chunk {idx}: decoded edge samples disagree with footer"),
            });
        }
        let mut cum = Vec::with_capacity(times.len());
        cum.push(meta.cum_first);
        for i in 1..times.len() {
            let dt = times[i] - times[i - 1];
            let prev = cum[i - 1];
            cum.push(prev + 0.5 * (watts[i - 1] + watts[i]) * dt);
        }
        if cum.last().map(|c| c.to_bits()) != Some(meta.cum_last.to_bits()) {
            return Err(StoreError::Corrupt {
                detail: format!("chunk {idx}: rebuilt energy chain disagrees with footer"),
            });
        }
        Ok((times, watts, cum))
    }

    /// Locates the greatest sample with `time <= t` and its successor.
    /// Requires a non-empty store and `first <= t <= last`. Decompresses a
    /// chunk only when `t` falls strictly inside one; queries landing in
    /// the active chunk, between chunks, or on chunk-edge samples are
    /// answered without touching payloads.
    ///
    /// `energy_only` callers read just `cum_i` when `t` lands exactly on a
    /// stored timestamp, which licenses one more footer shortcut: at
    /// `t == first_t` the chain value is `cum_first` even when the
    /// timestamp repeats into the chunk (duplicates add zero-width
    /// trapezoids, leaving the chain bit-unchanged). `power_at` must not
    /// take that shortcut — it needs the *last* duplicate's watts.
    fn locate(&self, t: f64, energy_only: bool) -> Result<Neighborhood, StoreError> {
        // The last sample with time <= t lives in the active chunk iff the
        // active chunk's first sample is <= t (active samples follow every
        // sealed sample).
        if let Some(&a0) = self.active_t.first() {
            if t >= a0 {
                let j = self.active_t.partition_point(|&x| x <= t) - 1;
                return Ok(Neighborhood {
                    t_i: self.active_t[j],
                    w_i: self.active_w[j],
                    cum_i: self.active_cum[j],
                    next: self.active_t.get(j + 1).map(|&nt| (nt, self.active_w[j + 1])),
                });
            }
        }
        // Otherwise it lives in the last chunk whose first sample is <= t
        // (every sample of later chunks is > t).
        let c = self.chunks.partition_point(|m| m.first_t <= t) - 1;
        let meta = &self.chunks[c];
        if energy_only && t <= meta.first_t {
            // Exactly on the chunk's first timestamp: the chain snapshot
            // answers the energy query without decompression.
            return Ok(Neighborhood {
                t_i: meta.first_t,
                w_i: meta.first_w,
                cum_i: meta.cum_first,
                next: None,
            });
        }
        if t >= meta.last_t {
            // On or past the chunk's final sample: the footer has
            // everything, and the successor is the next region's first
            // sample — no decompression.
            let next = self
                .chunks
                .get(c + 1)
                .map(|m| (m.first_t, m.first_w))
                .or_else(|| self.active_t.first().map(|&nt| (nt, self.active_w[0])));
            return Ok(Neighborhood {
                t_i: meta.last_t,
                w_i: meta.last_w,
                cum_i: meta.cum_last,
                next,
            });
        }
        // Strictly inside the chunk: decompress it (the only payload this
        // query touches).
        let (times, watts, cum) = self.read_chunk(c)?;
        let j = times.partition_point(|&x| x <= t) - 1;
        // t < last_t guarantees a successor within this same chunk.
        Ok(Neighborhood {
            t_i: times[j],
            w_i: watts[j],
            cum_i: cum[j],
            next: Some((times[j + 1], watts[j + 1])),
        })
    }

    /// Cumulative trapezoidal energy from the (lifetime) trace start to
    /// time `t`. Requires a non-empty store and `first <= t <= last`; the
    /// public windowed queries clamp before calling.
    fn cum_energy_at(&self, t: f64) -> Result<f64, StoreError> {
        let n = self.locate(t, true)?;
        if t <= n.t_i {
            return Ok(n.cum_i);
        }
        let (nt, nw) = n.next.expect("t < last implies a successor sample");
        let dt = t - n.t_i;
        let seg = nt - n.t_i;
        let w_t = n.w_i + (nw - n.w_i) * (dt / seg);
        Ok(n.cum_i + 0.5 * (n.w_i + w_t) * dt)
    }

    /// Trapezoidal energy over `[t0, t1]` clamped to the stored span — a
    /// footer binary search decompressing at most the two boundary chunks.
    /// Returns 0 for an empty store or an empty clamped interval.
    ///
    /// # Panics
    /// Panics if either bound is NaN (infinities clamp to the span),
    /// mirroring the in-memory trace.
    pub fn energy_between(&self, t0: f64, t1: f64) -> Result<f64, StoreError> {
        assert!(!t0.is_nan() && !t1.is_nan(), "window bounds must not be NaN");
        let (first, last) = match self.time_bounds() {
            Some(b) => b,
            None => return Ok(0.0),
        };
        let a = t0.max(first);
        let b = t1.min(last);
        if b <= a {
            return Ok(0.0);
        }
        Ok(self.cum_energy_at(b)? - self.cum_energy_at(a)?)
    }

    /// Time-weighted average power over `[t0, t1]` clamped to the stored
    /// span — same cost profile as [`TraceStore::energy_between`].
    ///
    /// # Panics
    /// Panics if either bound is NaN.
    pub fn average_power_between(&self, t0: f64, t1: f64) -> Result<f64, StoreError> {
        assert!(!t0.is_nan() && !t1.is_nan(), "window bounds must not be NaN");
        let (first, last) = match self.time_bounds() {
            Some(b) => b,
            None => return Ok(0.0),
        };
        let a = t0.max(first);
        let b = t1.min(last);
        if b > a {
            Ok((self.cum_energy_at(b)? - self.cum_energy_at(a)?) / (b - a))
        } else if b == a {
            Ok(self.power_at(a)?.unwrap_or(0.0))
        } else {
            Ok(0.0)
        }
    }

    /// Linearly interpolated instantaneous power at `t`; `None` outside
    /// the stored span. Decompresses at most one chunk.
    pub fn power_at(&self, t: f64) -> Result<Option<f64>, StoreError> {
        let (first, last) = match self.time_bounds() {
            Some(b) => b,
            None => return Ok(None),
        };
        if t.is_nan() || t < first || t > last {
            return Ok(None);
        }
        let n = self.locate(t, false)?;
        if t <= n.t_i {
            return Ok(Some(n.w_i));
        }
        let (nt, nw) = n.next.expect("t < last implies a successor sample");
        let seg = nt - n.t_i;
        let frac = (t - n.t_i) / seg;
        Ok(Some(n.w_i + (nw - n.w_i) * frac))
    }

    /// All samples with `a <= time <= b`, as parallel columns in sample
    /// order (the materialization behind windowed sub-traces; decompresses
    /// every chunk overlapping the range, proportional to the output).
    pub fn samples_in(&self, a: f64, b: f64) -> Result<(Vec<f64>, Vec<f64>), StoreError> {
        let mut times = Vec::new();
        let mut watts = Vec::new();
        if b < a {
            return Ok((times, watts));
        }
        for idx in 0..self.chunks.len() {
            let meta = &self.chunks[idx];
            if meta.last_t < a {
                continue;
            }
            if meta.first_t > b {
                break;
            }
            let (ct, cw, _) = self.read_chunk(idx)?;
            let lo = ct.partition_point(|&x| x < a);
            let hi = ct.partition_point(|&x| x <= b);
            times.extend_from_slice(&ct[lo..hi]);
            watts.extend_from_slice(&cw[lo..hi]);
        }
        let lo = self.active_t.partition_point(|&x| x < a);
        let hi = self.active_t.partition_point(|&x| x <= b);
        times.extend_from_slice(&self.active_t[lo..hi]);
        watts.extend_from_slice(&self.active_w[lo..hi]);
        Ok((times, watts))
    }

    /// Materializes the whole store as parallel columns (decompresses
    /// everything; the bulk-export path).
    pub fn to_columns(&self) -> Result<(Vec<f64>, Vec<f64>), StoreError> {
        let mut times = Vec::with_capacity(self.len() as usize);
        let mut watts = Vec::with_capacity(self.len() as usize);
        for idx in 0..self.chunks.len() {
            let (ct, cw, _) = self.read_chunk(idx)?;
            times.extend(ct);
            watts.extend(cw);
        }
        times.extend_from_slice(&self.active_t);
        watts.extend_from_slice(&self.active_w);
        Ok((times, watts))
    }

    /// Compacts the store: seals the active chunk (so the WAL empties),
    /// drops sealed chunks wholly older than the retention horizon, merges
    /// adjacent under-full chunks up to `chunk_samples`, and atomically
    /// replaces the segment (write temp, fsync, rename). Queries keep
    /// their absolute energy chain — windowed energies over retained data
    /// are unchanged bit-for-bit.
    pub fn compact(&mut self) -> Result<CompactionStats, StoreError> {
        let bytes_before = self.disk_bytes();
        let chunks_before = self.chunks.len();
        if !self.active_t.is_empty() {
            self.seal_active()?;
            self.segment.get_mut().expect("segment lock").sync_data()?;
        }
        // Retention: keep every chunk whose span reaches the horizon.
        let cutoff = match (self.config.retain_seconds, self.last) {
            (Some(h), Some(l)) => {
                assert!(h.is_finite() && h >= 0.0, "retain_seconds must be finite and >= 0");
                Some(l.t - h)
            }
            _ => None,
        };
        let first_kept = match cutoff {
            Some(c) => self.chunks.partition_point(|m| m.last_t < c),
            None => 0,
        };
        let samples_dropped: u64 = self.chunks[..first_kept].iter().map(|m| m.count).sum();
        // Gather retained payload bytes (a straight copy for chunks that
        // survive alone; merged groups are decoded and re-encoded).
        let mut entries: Vec<(ChunkMeta, Vec<u8>)> = Vec::new();
        let mut group: Vec<usize> = Vec::new();
        let mut group_count = 0u64;
        let flush = |store: &TraceStore,
                     group: &mut Vec<usize>,
                     entries: &mut Vec<(ChunkMeta, Vec<u8>)>|
         -> Result<(), StoreError> {
            match group.len() {
                0 => {}
                1 => {
                    let meta = store.chunks[group[0]];
                    let payload = {
                        let mut file = store.segment.lock().expect("segment lock");
                        chunk::read_payload(&mut *file, &meta)?
                    };
                    if crc32(&payload) != meta.payload_crc {
                        return Err(StoreError::Corrupt {
                            detail: format!("chunk {}: payload checksum mismatch", group[0]),
                        });
                    }
                    entries.push((meta, payload));
                }
                _ => {
                    let mut times = Vec::new();
                    let mut watts = Vec::new();
                    let mut cum = Vec::new();
                    for &idx in group.iter() {
                        let (ct, cw, cc) = store.read_chunk(idx)?;
                        times.extend(ct);
                        watts.extend(cw);
                        cum.extend(cc);
                    }
                    entries.push(encode_chunk(&times, &watts, &cum));
                }
            }
            group.clear();
            Ok(())
        };
        for idx in first_kept..self.chunks.len() {
            let count = self.chunks[idx].count;
            if !group.is_empty() && group_count + count > self.config.chunk_samples as u64 {
                flush(self, &mut group, &mut entries)?;
                group_count = 0;
            }
            group.push(idx);
            group_count += count;
        }
        flush(self, &mut group, &mut entries)?;
        // Rewrite the segment atomically.
        let tmp_path = self.dir.join("segment.tgs.tmp");
        let mut tmp = File::create(&tmp_path)?;
        let mut new_chunks = Vec::with_capacity(entries.len());
        let mut offset = 0u64;
        for (meta, payload) in &entries {
            let new_len = chunk::append_block(&mut tmp, offset, meta, payload)?;
            new_chunks
                .push(ChunkMeta { payload_offset: offset + BLOCK_HEADER_LEN as u64, ..*meta });
            offset = new_len;
        }
        tmp.sync_all()?;
        std::fs::rename(&tmp_path, self.dir.join(SEGMENT_FILE))?;
        self.segment = Mutex::new(
            OpenOptions::new().read(true).write(true).open(self.dir.join(SEGMENT_FILE))?,
        );
        self.segment_len = offset;
        self.chunks = new_chunks;
        self.sealed_count = self.chunks.iter().map(|m| m.count).sum();
        self.peak_w = self.chunks.iter().map(|m| m.peak_w).fold(0.0, f64::max);
        self.min_w = self.chunks.iter().map(|m| m.min_w).fold(f64::INFINITY, f64::min);
        // The active chunk was sealed above, so the WAL covers nothing.
        self.reset_wal()?;
        Ok(CompactionStats {
            chunks_before,
            chunks_after: self.chunks.len(),
            samples_dropped,
            bytes_before,
            bytes_after: self.disk_bytes(),
        })
    }
}

/// Compresses one chunk's columns, producing the footer metadata (with
/// `payload_offset` unset) and the payload bytes.
fn encode_chunk(times: &[f64], watts: &[f64], cum: &[f64]) -> (ChunkMeta, Vec<u8>) {
    debug_assert!(!times.is_empty());
    let mut enc = Encoder::new();
    for (&t, &w) in times.iter().zip(watts) {
        enc.push(t, w);
    }
    let (payload, bit_len) = enc.finish();
    let meta = ChunkMeta {
        payload_offset: 0,
        payload_len: payload.len() as u32,
        bit_len: bit_len as u64,
        count: times.len() as u64,
        first_t: times[0],
        last_t: *times.last().expect("non-empty chunk"),
        first_w: watts[0],
        last_w: *watts.last().expect("non-empty chunk"),
        cum_first: cum[0],
        cum_last: *cum.last().expect("non-empty chunk"),
        peak_w: watts.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        min_w: watts.iter().copied().fold(f64::INFINITY, f64::min),
        payload_crc: crc32(&payload),
    };
    (meta, payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering as AtomicOrdering};

    static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    /// A unique scratch directory, removed on drop.
    struct ScratchDir(PathBuf);

    impl ScratchDir {
        fn new(tag: &str) -> Self {
            let seq = DIR_SEQ.fetch_add(1, AtomicOrdering::Relaxed);
            let dir =
                std::env::temp_dir().join(format!("tgi_store_{tag}_{}_{seq}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            ScratchDir(dir)
        }
    }

    impl Drop for ScratchDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn small_config(chunk_samples: usize) -> StoreConfig {
        StoreConfig { chunk_samples, retain_seconds: None }
    }

    /// The reference chain: the exact operations `PowerTrace` performs.
    fn reference_cum(times: &[f64], watts: &[f64]) -> Vec<f64> {
        let mut cum = Vec::with_capacity(times.len());
        for i in 0..times.len() {
            if i == 0 {
                cum.push(0.0);
            } else {
                let dt = times[i] - times[i - 1];
                let prev: f64 = cum[i - 1];
                cum.push(prev + 0.5 * (watts[i - 1] + watts[i]) * dt);
            }
        }
        cum
    }

    fn synth(n: usize) -> (Vec<f64>, Vec<f64>) {
        let mut times = Vec::with_capacity(n);
        let mut watts = Vec::with_capacity(n);
        for i in 0..n {
            times.push(i as f64 * 0.5);
            watts.push(100.0 + 40.0 * ((i % 17) as f64) + if i % 5 == 0 { 0.25 } else { 0.0 });
        }
        (times, watts)
    }

    #[test]
    fn append_seal_query_round_trip() {
        let scratch = ScratchDir::new("round_trip");
        let (times, watts) = synth(1000);
        let cum = reference_cum(&times, &watts);
        let mut store = TraceStore::open(&scratch.0, small_config(64)).unwrap();
        store.append_batch(&times, &watts).unwrap();
        assert_eq!(store.len(), 1000);
        assert_eq!(store.sealed_chunks(), 1000 / 64);
        assert_eq!(store.active_samples(), 1000 % 64);
        assert_eq!(store.energy_total().to_bits(), cum.last().unwrap().to_bits());
        assert_eq!(store.time_bounds(), Some((0.0, 499.5)));
        let (bt, bw) = store.to_columns().unwrap();
        assert_eq!(bt, times);
        assert_eq!(bw, watts);
    }

    #[test]
    fn reopen_recovers_sealed_and_active() {
        let scratch = ScratchDir::new("reopen");
        let (times, watts) = synth(500);
        {
            let mut store = TraceStore::open(&scratch.0, small_config(128)).unwrap();
            store.append_batch(&times, &watts).unwrap();
        }
        let store = TraceStore::open(&scratch.0, small_config(128)).unwrap();
        assert_eq!(store.len(), 500);
        assert_eq!(store.sealed_chunks(), 3);
        assert_eq!(store.active_samples(), 500 - 3 * 128);
        let cum = reference_cum(&times, &watts);
        assert_eq!(store.energy_total().to_bits(), cum.last().unwrap().to_bits());
        let (bt, bw) = store.to_columns().unwrap();
        assert_eq!(bt, times);
        assert_eq!(bw, watts);
    }

    #[test]
    fn torn_wal_tail_recovers_valid_prefix() {
        let scratch = ScratchDir::new("torn_wal");
        let (times, watts) = synth(100);
        {
            let mut store = TraceStore::open(&scratch.0, small_config(1000)).unwrap();
            store.append_batch(&times, &watts).unwrap();
        }
        // Tear the WAL mid-record.
        let wal_path = scratch.0.join(WAL_FILE);
        let len = std::fs::metadata(&wal_path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&wal_path).unwrap();
        f.set_len(len - 37).unwrap();
        drop(f);
        let store = TraceStore::open(&scratch.0, small_config(1000)).unwrap();
        // The single batch record is torn, so everything in it is lost —
        // but the store opens clean and empty rather than corrupt.
        assert_eq!(store.len(), 0);
        // And appends still work afterwards.
        drop(store);
        let mut store = TraceStore::open(&scratch.0, small_config(1000)).unwrap();
        store.append_batch(&times, &watts).unwrap();
        assert_eq!(store.len(), 100);
    }

    #[test]
    fn torn_segment_tail_is_resealed_from_wal() {
        let scratch = ScratchDir::new("torn_segment");
        let (times, watts) = synth(256);
        let wal_snapshot;
        {
            let mut store = TraceStore::open(&scratch.0, small_config(128)).unwrap();
            // First chunk seals and the WAL resets; snapshot the WAL just
            // before the second seal to simulate a crash where the seal's
            // segment write tore but the WAL had not yet been reset.
            store.append_batch(&times[..128], &watts[..128]).unwrap();
            store.append_batch(&times[128..255], &watts[128..255]).unwrap();
            wal_snapshot = std::fs::read(scratch.0.join(WAL_FILE)).unwrap();
            store.append_batch(&times[255..], &watts[255..]).unwrap();
            assert_eq!(store.sealed_chunks(), 2);
        }
        // Tear the second sealed block and restore the pre-seal WAL.
        let seg_path = scratch.0.join(SEGMENT_FILE);
        let seg_len = std::fs::metadata(&seg_path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&seg_path).unwrap();
        f.set_len(seg_len - 50).unwrap();
        drop(f);
        std::fs::write(scratch.0.join(WAL_FILE), &wal_snapshot).unwrap();
        let store = TraceStore::open(&scratch.0, small_config(128)).unwrap();
        // Samples 0..255 survive: chunk 0 from the segment, 128..255 from
        // the WAL (the torn chunk 1 is re-derived). Sample 255 was only in
        // the post-seal WAL, which this crash predates.
        assert_eq!(store.len(), 255);
        let (bt, bw) = store.to_columns().unwrap();
        assert_eq!(bt, &times[..255]);
        assert_eq!(bw, &watts[..255]);
    }

    #[test]
    fn queries_match_reference_chain_bitwise() {
        let scratch = ScratchDir::new("queries");
        let (times, watts) = synth(800);
        let cum = reference_cum(&times, &watts);
        let mut store = TraceStore::open(&scratch.0, small_config(64)).unwrap();
        store.append_batch(&times, &watts).unwrap();
        // Probe chunk interiors, chunk edges, and the active tail.
        for &t in &[0.0, 0.25, 31.5, 31.75, 32.0, 63.9, 200.0, 390.1, 399.5] {
            let a = store.cum_energy_at(t).unwrap();
            let i = times.partition_point(|&x| x <= t) - 1;
            let expected = if t <= times[i] {
                cum[i]
            } else {
                let dt = t - times[i];
                let seg = times[i + 1] - times[i];
                let w_t = watts[i] + (watts[i + 1] - watts[i]) * (dt / seg);
                cum[i] + 0.5 * (watts[i] + w_t) * dt
            };
            assert_eq!(a.to_bits(), expected.to_bits(), "cum_energy_at({t})");
        }
    }

    #[test]
    fn energy_between_decompresses_at_most_two_chunks() {
        let scratch = ScratchDir::new("bounded");
        let (times, watts) = synth(64 * 100);
        let mut store = TraceStore::open(&scratch.0, small_config(64)).unwrap();
        store.append_batch(&times, &watts).unwrap();
        store.reset_decompressions();
        // Both endpoints strictly inside (different) chunks.
        store.energy_between(100.3, 2500.7).unwrap();
        assert_eq!(store.decompressions(), 2);
        store.reset_decompressions();
        // Endpoints exactly on stored chunk-edge samples: footers only.
        let c0_last = times[63];
        let c9_last = times[64 * 10 - 1];
        store.energy_between(c0_last, c9_last).unwrap();
        assert_eq!(store.decompressions(), 0);
        store.reset_decompressions();
        // Whole-store query from the first to last sample: footers only
        // (both endpoints are edge samples).
        let (first, last) = store.time_bounds().unwrap();
        store.energy_between(first, last).unwrap();
        assert_eq!(store.decompressions(), 0);
    }

    #[test]
    fn power_at_and_bounds() {
        let scratch = ScratchDir::new("power_at");
        let mut store = TraceStore::open(&scratch.0, small_config(2)).unwrap();
        store.append_batch(&[0.0, 10.0], &[0.0, 100.0]).unwrap();
        assert_eq!(store.power_at(0.0).unwrap(), Some(0.0));
        assert_eq!(store.power_at(10.0).unwrap(), Some(100.0));
        let mid = store.power_at(2.5).unwrap().unwrap();
        assert!((mid - 25.0).abs() < 1e-12);
        assert_eq!(store.power_at(-0.1).unwrap(), None);
        assert_eq!(store.power_at(10.1).unwrap(), None);
    }

    #[test]
    fn rejects_invalid_batches_atomically() {
        let scratch = ScratchDir::new("invalid");
        let mut store = TraceStore::open(&scratch.0, small_config(16)).unwrap();
        store.append_batch(&[0.0, 1.0], &[100.0, 110.0]).unwrap();
        let err = store.append_batch(&[2.0, 1.5], &[100.0, 100.0]).unwrap_err();
        match err {
            StoreError::InvalidSample { index, .. } => assert_eq!(index, 1),
            other => panic!("expected InvalidSample, got {other:?}"),
        }
        // Nothing from the bad batch landed.
        assert_eq!(store.len(), 2);
        assert!(store.append_batch(&[1.0], &[f64::NAN]).is_err());
        assert!(store.append_batch(&[1.0], &[-1.0]).is_err());
        assert!(store.append_batch(&[-1.0], &[1.0]).is_err());
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn compact_retention_and_merge() {
        let scratch = ScratchDir::new("compact");
        let (times, watts) = synth(1024);
        let config = StoreConfig { chunk_samples: 64, retain_seconds: Some(100.0) };
        let mut store = TraceStore::open(&scratch.0, config).unwrap();
        store.append_batch(&times, &watts).unwrap();
        let total_before = store.energy_total();
        let last_t = times[1023];
        let horizon = last_t - 100.0;
        let expected_tail = store.energy_between(horizon, last_t).unwrap();
        let stats = store.compact().unwrap();
        assert!(stats.samples_dropped > 0, "retention dropped nothing");
        assert!(stats.chunks_after < stats.chunks_before);
        assert!(store.energy_total() < total_before);
        // Windowed energy over retained data is unchanged bit-for-bit.
        assert_eq!(
            store.energy_between(horizon, last_t).unwrap().to_bits(),
            expected_tail.to_bits()
        );
        // The store still reopens and appends after compaction.
        drop(store);
        let mut store = TraceStore::open(
            &scratch.0,
            StoreConfig { chunk_samples: 64, retain_seconds: Some(100.0) },
        )
        .unwrap();
        store.append(last_t + 1.0, 120.0).unwrap();
        assert!(store.power_at(last_t + 0.5).unwrap().is_some());
    }

    #[test]
    fn compact_merges_underfull_chunks() {
        let scratch = ScratchDir::new("merge");
        // Seal many tiny chunks, then recompact with a larger target.
        let (times, watts) = synth(256);
        {
            let mut store = TraceStore::open(&scratch.0, small_config(8)).unwrap();
            store.append_batch(&times, &watts).unwrap();
            assert_eq!(store.sealed_chunks(), 32);
        }
        let mut store = TraceStore::open(&scratch.0, small_config(128)).unwrap();
        let stats = store.compact().unwrap();
        assert_eq!(stats.samples_dropped, 0);
        assert_eq!(store.sealed_chunks(), 2);
        let cum = reference_cum(&times, &watts);
        assert_eq!(store.energy_total().to_bits(), cum.last().unwrap().to_bits());
        let (bt, bw) = store.to_columns().unwrap();
        assert_eq!(bt, times);
        assert_eq!(bw, watts);
    }

    #[test]
    fn compression_beats_two_bytes_per_sample_on_cadenced_input() {
        let scratch = ScratchDir::new("ratio");
        let n = 20_000usize;
        let mut times = Vec::with_capacity(n);
        let mut watts = Vec::with_capacity(n);
        let mut level = 180.0f64;
        for i in 0..n {
            times.push(i as f64);
            if i % 97 == 0 {
                level = 100.0 + ((i / 97) % 23) as f64 * 7.5;
            }
            watts.push(level);
        }
        let mut store = TraceStore::open(&scratch.0, small_config(4096)).unwrap();
        store.append_batch(&times, &watts).unwrap();
        let sealed_samples = store.sealed_count;
        let bytes = store.segment_len;
        let per_sample = bytes as f64 / sealed_samples as f64;
        assert!(per_sample < 2.0, "sealed storage took {per_sample:.3} bytes/sample");
    }

    #[test]
    fn empty_store_defaults() {
        let scratch = ScratchDir::new("empty");
        let store = TraceStore::open(&scratch.0, StoreConfig::default()).unwrap();
        assert!(store.is_empty());
        assert_eq!(store.energy_total(), 0.0);
        assert_eq!(store.peak_watts(), 0.0);
        assert_eq!(store.min_watts(), 0.0);
        assert_eq!(store.time_bounds(), None);
        assert_eq!(store.energy_between(0.0, 100.0).unwrap(), 0.0);
        assert_eq!(store.power_at(0.0).unwrap(), None);
    }
}
