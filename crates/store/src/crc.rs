//! CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
//!
//! Every on-disk record — WAL records, chunk payloads, chunk footers —
//! carries a CRC so torn or bit-flipped tails are *detected* and truncated
//! on open instead of surfacing as corrupt samples. The build environment
//! is offline, so the checksum is implemented here rather than pulled in.

/// The 256-entry lookup table for the reflected IEEE polynomial, built at
/// compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of `bytes` (initial value 0xFFFF_FFFF, final XOR 0xFFFF_FFFF —
/// the standard zlib/IEEE convention).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let mut data = b"power trace chunk payload".to_vec();
        let clean = crc32(&data);
        data[7] ^= 0x10;
        assert_ne!(crc32(&data), clean);
    }
}
