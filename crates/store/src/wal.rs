//! Write-ahead log for the active (not yet sealed) chunk.
//!
//! Appends land here first as length-prefixed, CRC'd records of raw
//! sample bits; a chunk is only compressed and sealed once it is full, so
//! a crash at any byte boundary loses at most the torn tail of the last
//! record — never a sealed chunk. On open, [`replay`] walks the records,
//! stops at the first invalid one (truncated length, bad CRC, or samples
//! violating the trace invariants), and reports the valid prefix length so
//! the store can truncate the tail — the same torn-tail recovery contract
//! as `tgi_harness::journal::read_tolerant`, at the binary layer.
//!
//! Each record carries the *absolute index* of its first sample in the
//! store's lifetime stream. Sealing fsyncs the segment before resetting
//! the WAL, so a crash between the two leaves records that overlap already
//! sealed data; replay drops the overlap by index instead of guessing by
//! timestamp (timestamps may legitimately repeat).

use crate::crc::crc32;
use std::io::{self, Read, Seek, SeekFrom, Write};

/// Magic prefix of every WAL record: "TGSW".
pub const RECORD_MAGIC: u32 = 0x5447_5357;
/// Record header: magic + payload length + payload CRC.
pub const RECORD_HEADER_LEN: usize = 12;
/// Fixed prefix of a record payload: start index + sample count.
pub const PAYLOAD_PREFIX_LEN: usize = 12;

/// Serializes one record: samples `times[i]`/`watts[i]` starting at
/// absolute sample index `start_index`.
pub fn encode_record(start_index: u64, times: &[f64], watts: &[f64]) -> Vec<u8> {
    debug_assert_eq!(times.len(), watts.len());
    let count = times.len() as u32;
    let mut payload = Vec::with_capacity(PAYLOAD_PREFIX_LEN + times.len() * 16);
    payload.extend_from_slice(&start_index.to_le_bytes());
    payload.extend_from_slice(&count.to_le_bytes());
    for (&t, &w) in times.iter().zip(watts) {
        payload.extend_from_slice(&t.to_bits().to_le_bytes());
        payload.extend_from_slice(&w.to_bits().to_le_bytes());
    }
    let mut out = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
    out.extend_from_slice(&RECORD_MAGIC.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// One decoded WAL record.
#[derive(Debug)]
pub struct Record {
    /// Absolute index of the first sample in the store's lifetime stream.
    pub start_index: u64,
    /// Sample timestamps.
    pub times: Vec<f64>,
    /// Sample power values.
    pub watts: Vec<f64>,
}

/// The result of replaying a WAL file.
#[derive(Debug)]
pub struct Replay {
    /// Records recovered in order, every sample valid.
    pub records: Vec<Record>,
    /// Byte length of the valid prefix; anything beyond is a torn or
    /// corrupt tail the store should truncate away.
    pub valid_len: u64,
}

/// Replays a WAL byte stream. `last_t` seeds the monotonicity check with
/// the last sealed sample's timestamp (or `f64::NEG_INFINITY` for a fresh
/// store); records whose samples fall entirely below `min_index` are
/// skipped as already sealed, and partially sealed records are trimmed.
///
/// Stops — and reports the prefix length — at the first record with a bad
/// magic, an impossible length, a CRC mismatch, or any sample that is
/// non-finite, negative, or out of order. Recovery never surfaces an
/// invalid sample.
pub fn replay(bytes: &[u8], min_index: u64, mut last_t: f64) -> Replay {
    let mut records = Vec::new();
    let mut offset = 0usize;
    let mut next_index = min_index;
    loop {
        let remaining = bytes.len() - offset;
        if remaining < RECORD_HEADER_LEN {
            break;
        }
        let magic = u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes"));
        let payload_len =
            u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().expect("4 bytes")) as usize;
        let stored_crc =
            u32::from_le_bytes(bytes[offset + 8..offset + 12].try_into().expect("4 bytes"));
        if magic != RECORD_MAGIC
            || payload_len < PAYLOAD_PREFIX_LEN
            || payload_len > remaining - RECORD_HEADER_LEN
        {
            break;
        }
        let payload = &bytes[offset + RECORD_HEADER_LEN..offset + RECORD_HEADER_LEN + payload_len];
        if crc32(payload) != stored_crc {
            break;
        }
        let start_index = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
        let count = u32::from_le_bytes(payload[8..12].try_into().expect("4 bytes")) as usize;
        if payload_len != PAYLOAD_PREFIX_LEN + count * 16 {
            break;
        }
        // Records must describe the stream in order without gaps: a record
        // from a previous generation (start beyond the expected next
        // index) would silently skip samples.
        if start_index > next_index {
            break;
        }
        // Trim the overlap with already sealed samples.
        let skip = (next_index - start_index) as usize;
        let mut times = Vec::with_capacity(count.saturating_sub(skip));
        let mut watts = Vec::with_capacity(count.saturating_sub(skip));
        let mut valid = true;
        for i in 0..count {
            let at = PAYLOAD_PREFIX_LEN + i * 16;
            let t = f64::from_bits(u64::from_le_bytes(
                payload[at..at + 8].try_into().expect("8 bytes"),
            ));
            let w = f64::from_bits(u64::from_le_bytes(
                payload[at + 8..at + 16].try_into().expect("8 bytes"),
            ));
            if i >= skip {
                if !t.is_finite() || t < 0.0 || !w.is_finite() || w < 0.0 || t < last_t {
                    valid = false;
                    break;
                }
                last_t = t;
                times.push(t);
                watts.push(w);
            }
        }
        if !valid {
            break;
        }
        next_index = start_index + count as u64;
        if !times.is_empty() {
            records.push(Record { start_index: next_index - times.len() as u64, times, watts });
        }
        offset += RECORD_HEADER_LEN + payload_len;
    }
    Replay { records, valid_len: offset as u64 }
}

/// Appends one record to the WAL file (a single `write_all`, so the
/// on-disk record boundary is the atomicity unit the replay recovers at).
pub fn append_record(
    file: &mut std::fs::File,
    start_index: u64,
    times: &[f64],
    watts: &[f64],
) -> io::Result<()> {
    file.seek(SeekFrom::End(0))?;
    file.write_all(&encode_record(start_index, times, watts))
}

/// Reads the whole WAL file (active chunks are bounded by the chunk size,
/// so this stays small).
pub fn read_all(file: &mut std::fs::File) -> io::Result<Vec<u8>> {
    let mut bytes = Vec::new();
    file.seek(SeekFrom::Start(0))?;
    file.read_to_end(&mut bytes)?;
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_replay_round_trips() {
        let mut bytes = encode_record(0, &[0.0, 1.0], &[100.0, 110.0]);
        bytes.extend(encode_record(2, &[2.0, 2.0], &[120.0, 90.0]));
        let replay = replay(&bytes, 0, f64::NEG_INFINITY);
        assert_eq!(replay.valid_len as usize, bytes.len());
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.records[0].times, vec![0.0, 1.0]);
        assert_eq!(replay.records[1].start_index, 2);
        assert_eq!(replay.records[1].watts, vec![120.0, 90.0]);
    }

    #[test]
    fn torn_tail_is_truncated_at_record_boundary() {
        let r1 = encode_record(0, &[0.0, 1.0], &[100.0, 110.0]);
        let r2 = encode_record(2, &[2.0], &[105.0]);
        let mut bytes = r1.clone();
        bytes.extend_from_slice(&r2[..r2.len() / 2]);
        let replay = replay(&bytes, 0, f64::NEG_INFINITY);
        assert_eq!(replay.valid_len as usize, r1.len());
        assert_eq!(replay.records.len(), 1);
    }

    #[test]
    fn corrupt_record_stops_replay() {
        let r1 = encode_record(0, &[0.0], &[100.0]);
        let mut r2 = encode_record(1, &[1.0], &[110.0]);
        let flip = RECORD_HEADER_LEN + 14;
        r2[flip] ^= 0x40;
        let mut bytes = r1.clone();
        bytes.extend_from_slice(&r2);
        let replay = replay(&bytes, 0, f64::NEG_INFINITY);
        assert_eq!(replay.valid_len as usize, r1.len());
        assert_eq!(replay.records.len(), 1);
    }

    #[test]
    fn sealed_overlap_is_trimmed_by_index() {
        // Record covers samples 0..4 but samples 0..2 are already sealed.
        let bytes = encode_record(0, &[0.0, 1.0, 2.0, 3.0], &[100.0, 101.0, 102.0, 103.0]);
        let replay = replay(&bytes, 2, 1.0);
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.records[0].start_index, 2);
        assert_eq!(replay.records[0].times, vec![2.0, 3.0]);
    }

    #[test]
    fn fully_sealed_record_is_dropped() {
        let mut bytes = encode_record(0, &[0.0, 1.0], &[100.0, 101.0]);
        bytes.extend(encode_record(2, &[2.0], &[102.0]));
        let replay = replay(&bytes, 2, 1.0);
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.records[0].times, vec![2.0]);
        assert_eq!(replay.valid_len as usize, bytes.len());
    }

    #[test]
    fn gapped_record_stops_replay() {
        // A record starting past the expected next index would skip
        // samples 2..5 — replay refuses it.
        let r1 = encode_record(0, &[0.0, 1.0], &[100.0, 101.0]);
        let r2 = encode_record(5, &[5.0], &[105.0]);
        let mut bytes = r1.clone();
        bytes.extend_from_slice(&r2);
        let replay = replay(&bytes, 0, f64::NEG_INFINITY);
        assert_eq!(replay.valid_len as usize, r1.len());
        assert_eq!(replay.records.len(), 1);
    }

    #[test]
    fn invalid_sample_stops_replay_before_surfacing() {
        let good = encode_record(0, &[0.0], &[100.0]);
        let bad = encode_record(1, &[0.5], &[-5.0]); // negative watts
        let mut bytes = good.clone();
        bytes.extend_from_slice(&bad);
        let r = replay(&bytes, 0, f64::NEG_INFINITY);
        assert_eq!(r.records.len(), 1);
        assert_eq!(r.valid_len as usize, good.len());
        // Equal timestamps are allowed (non-decreasing).
        let dup = encode_record(1, &[0.0], &[100.0]);
        let mut bytes = good.clone();
        bytes.extend_from_slice(&dup);
        let r2 = replay(&bytes, 0, f64::NEG_INFINITY);
        assert_eq!(r2.records.len(), 2);
    }
}
