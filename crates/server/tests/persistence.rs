//! `--data-dir` mode end-to-end: batches ingested over the wire persist
//! through the compressed trace store, survive a full server restart, and
//! answer queries identically to an in-memory oracle.

use std::path::{Path, PathBuf};
use std::time::Duration;
use tgi_server::{Client, Server, ServerConfig};

struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("tgi_server_store_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn start_server(data_dir: &Path) -> Server {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        shards: 4,
        queue_capacity: 64,
        max_body_bytes: 1024 * 1024,
        data_dir: Some(data_dir.to_path_buf()),
        // Small chunks so a modest batch exercises sealing + footers.
        store_chunk_samples: 32,
        ..ServerConfig::default()
    };
    Server::start(config, tgi_harness::experiments::system_g_reference()).expect("server starts")
}

fn connect(server: &Server) -> Client {
    Client::connect(&server.addr().to_string(), Duration::from_secs(5)).expect("connect")
}

fn batch_json(samples: &[(f64, f64)]) -> String {
    let entries: Vec<String> =
        samples.iter().map(|(t, w)| format!("{{\"t\":{t},\"watts\":{w}}}")).collect();
    format!("{{\"samples\":[{}]}}", entries.join(","))
}

fn extract_f64(body: &str, key: &str) -> f64 {
    let needle = format!("\"{key}\":");
    let start =
        body.find(&needle).unwrap_or_else(|| panic!("`{key}` missing in {body}")) + needle.len();
    let rest = &body[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].parse().unwrap_or_else(|_| panic!("`{key}` not a number in {body}"))
}

/// The oracle trace every test batch builds up: 100 samples across three
/// POSTs, enough to seal chunks at `store_chunk_samples = 32`.
fn oracle_samples() -> Vec<(f64, f64)> {
    (0..100).map(|i| (i as f64 * 0.5, 150.0 + 40.0 * ((i % 7) as f64) + 0.1)).collect()
}

#[test]
fn traces_survive_a_server_restart() {
    let scratch = ScratchDir::new("restart");
    let samples = oracle_samples();
    let mut oracle = power_model::PowerTrace::new();
    for &(t, w) in &samples {
        oracle.push(t, tgi_core::Watts::new(w));
    }

    // First server lifetime: ingest in three batches.
    {
        let mut server = start_server(&scratch.0);
        let mut client = connect(&server);
        for batch in samples.chunks(40) {
            let response =
                client.request("POST", "/traces/node0", &batch_json(batch)).expect("ingest");
            assert_eq!(response.status, 200, "{}", response.body);
        }
        let response = client.request("GET", "/healthz", "").expect("healthz");
        assert!(response.body.contains("\"enabled\":true"), "{}", response.body);
        assert!(response.body.contains("\"chunks\":"), "{}", response.body);
        let disk_bytes = extract_f64(&response.body, "disk_bytes");
        assert!(disk_bytes > 0.0, "store reported no bytes on disk: {}", response.body);
        server.shutdown();
    }

    // Second lifetime, same directory: everything recovers from disk.
    let server = start_server(&scratch.0);
    let mut client = connect(&server);

    let response = client.request("GET", "/traces", "").expect("list");
    assert_eq!(response.status, 200, "{}", response.body);
    assert!(response.body.contains("\"node\":\"node0\""), "{}", response.body);
    assert!(response.body.contains("\"samples\":100"), "{}", response.body);

    let response =
        client.request("GET", "/traces/node0/energy?from=3.3&to=41.7", "").expect("energy");
    assert_eq!(response.status, 200, "{}", response.body);
    let energy = extract_f64(&response.body, "energy_j");
    let expected = oracle.energy_between(3.3, 41.7).value();
    assert_eq!(energy.to_bits(), expected.to_bits(), "wire {energy} vs oracle {expected}");
    let average = extract_f64(&response.body, "average_w");
    let expected = oracle.average_power_between(3.3, 41.7).value();
    assert_eq!(average.to_bits(), expected.to_bits());

    // The snapshot materialized from the store is the oracle, bit for bit.
    let snapshot = server.state().trace_snapshot("node0").expect("trace recovered");
    assert_eq!(snapshot, oracle);

    // Appending continues the recovered timeline; replays are still 409s.
    let response = client
        .request("POST", "/traces/node0", &batch_json(&[(50.0, 180.0), (50.5, 185.0)]))
        .expect("append");
    assert_eq!(response.status, 200, "{}", response.body);
    let response =
        client.request("POST", "/traces/node0", &batch_json(&[(10.0, 100.0)])).expect("replay");
    assert_eq!(response.status, 409, "{}", response.body);
}

#[test]
fn fleet_endpoints_serve_from_the_store() {
    let scratch = ScratchDir::new("fleet");
    let server = start_server(&scratch.0);
    let mut client = connect(&server);
    for node in ["a1", "b2"] {
        let batch: Vec<(f64, f64)> = (0..50).map(|i| (i as f64, 200.0 + i as f64)).collect();
        let response = client
            .request("POST", &format!("/traces/{node}"), &batch_json(&batch))
            .expect("ingest");
        assert_eq!(response.status, 200, "{}", response.body);
    }
    let response = client.request("GET", "/fleet/summary", "").expect("summary");
    assert_eq!(response.status, 200, "{}", response.body);
    assert!(response.body.contains("a1"), "{}", response.body);
    assert!(response.body.contains("b2"), "{}", response.body);

    let response = client.request("GET", "/healthz", "").expect("healthz");
    assert!(response.body.contains("\"nodes\":2"), "{}", response.body);
    assert!(response.body.contains("\"enabled\":true"), "{}", response.body);
}

#[test]
fn memory_mode_reports_store_disabled() {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        shards: 1,
        queue_capacity: 16,
        max_body_bytes: 64 * 1024,
        ..ServerConfig::default()
    };
    let server =
        Server::start(config, tgi_harness::experiments::system_g_reference()).expect("start");
    let mut client = connect(&server);
    let response = client.request("GET", "/healthz", "").expect("healthz");
    assert!(response.body.contains("\"enabled\":false"), "{}", response.body);
}

#[test]
fn traversal_shaped_node_names_are_rejected() {
    let scratch = ScratchDir::new("names");
    let server = start_server(&scratch.0);
    let mut client = connect(&server);
    for name in ["..", "."] {
        let response = client
            .request("POST", &format!("/traces/{name}"), &batch_json(&[(0.0, 100.0)]))
            .expect("send");
        assert_eq!(response.status, 400, "`{name}` accepted: {}", response.body);
    }
}
