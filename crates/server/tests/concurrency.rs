//! The concurrency contract: many parallel clients interleaving ingest,
//! query, and evaluate traffic must lose no records, produce energy
//! totals identical to an in-memory oracle, and shut down cleanly.
//!
//! CI runs this under `TGI_NUM_THREADS={1,4}` (the rayon shim honors the
//! variable), so both a single-threaded pool and a contended one cover
//! the sharded-lock paths.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tgi_server::{Client, Server, ServerConfig};

const CLIENTS: usize = 16;
const BATCHES_PER_CLIENT: usize = 8;
const SAMPLES_PER_BATCH: usize = 16;

fn batch_json(t0: f64, watts0: f64) -> String {
    let entries: Vec<String> = (0..SAMPLES_PER_BATCH)
        .map(|i| format!("{{\"t\":{},\"watts\":{}}}", t0 + i as f64, watts0 + i as f64))
        .collect();
    format!("{{\"samples\":[{}]}}", entries.join(","))
}

#[test]
fn parallel_clients_lose_nothing_and_agree_with_the_oracle() {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 8,
        shards: 4,
        queue_capacity: 64,
        max_body_bytes: 1024 * 1024,
        ..ServerConfig::default()
    };
    let mut server =
        Server::start(config, tgi_harness::experiments::system_g_reference()).expect("start");
    let addr = server.addr().to_string();

    let evaluate_oks = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|client_id| {
            let addr = addr.clone();
            let evaluate_oks = Arc::clone(&evaluate_oks);
            std::thread::spawn(move || {
                let mut client =
                    Client::connect(&addr, Duration::from_secs(10)).expect("connect");
                let node = format!("node-{client_id}");
                for batch in 0..BATCHES_PER_CLIENT {
                    let t0 = (batch * SAMPLES_PER_BATCH) as f64;
                    let body = batch_json(t0, 100.0 + client_id as f64);
                    let r = client
                        .request("POST", &format!("/traces/{node}"), &body)
                        .expect("ingest");
                    assert_eq!(r.status, 200, "{}", r.body);

                    // Interleave a window query against our own node…
                    let r = client
                        .request("GET", &format!("/traces/{node}/energy?from=0&to={t0}"), "")
                        .expect("query");
                    assert_eq!(r.status, 200, "{}", r.body);

                    // …and an evaluation (shared evaluator + scratch pool).
                    let r = client
                        .request(
                            "POST",
                            "/evaluate",
                            &format!(
                                "{{\"measurements\":[{{\"id\":\"hpl\",\"gflops\":{},\"watts\":2900.0,\"seconds\":1800.0}}]}}",
                                50.0 + client_id as f64
                            ),
                        )
                        .expect("evaluate");
                    assert_eq!(r.status, 200, "{}", r.body);
                    evaluate_oks.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("client thread");
    }
    assert_eq!(evaluate_oks.load(Ordering::Relaxed), (CLIENTS * BATCHES_PER_CLIENT) as u64);

    // Oracle check: every node holds exactly the samples its client sent,
    // and the indexed energy equals a locally built trace's energy.
    for client_id in 0..CLIENTS {
        let node = format!("node-{client_id}");
        let snapshot =
            server.state().trace_snapshot(&node).unwrap_or_else(|| panic!("{node} missing"));
        assert_eq!(snapshot.len(), BATCHES_PER_CLIENT * SAMPLES_PER_BATCH, "{node} lost records");
        let mut oracle = power_model::PowerTrace::new();
        for batch in 0..BATCHES_PER_CLIENT {
            let t0 = (batch * SAMPLES_PER_BATCH) as f64;
            for i in 0..SAMPLES_PER_BATCH {
                oracle
                    .push(t0 + i as f64, tgi_core::Watts::new(100.0 + client_id as f64 + i as f64));
            }
        }
        assert_eq!(
            snapshot.energy().value(),
            oracle.energy().value(),
            "{node} energy diverged from the oracle"
        );
        assert_eq!(
            snapshot.energy_between(10.0, 90.0).value(),
            oracle.energy_between(10.0, 90.0).value(),
            "{node} window query diverged"
        );
    }

    // The totals on the wire agree with the oracle sum.
    let mut client = Client::connect(&addr, Duration::from_secs(10)).expect("connect");
    let r = client.request("GET", "/traces", "").expect("list");
    assert_eq!(r.status, 200);
    let expected_total = CLIENTS * BATCHES_PER_CLIENT * SAMPLES_PER_BATCH;
    assert!(r.body.contains(&format!("\"total_samples\":{expected_total}")), "{}", r.body);

    server.shutdown();
    // Shutdown is idempotent and everything joined — a second call is a no-op.
    server.shutdown();
}

#[test]
fn overload_answers_429_and_serves_the_rest() {
    // One worker, a one-slot queue: with many simultaneous connections
    // some must be rejected, and every accepted one must be answered.
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        shards: 1,
        queue_capacity: 1,
        max_body_bytes: 64 * 1024,
        ..ServerConfig::default()
    };
    let server =
        Server::start(config, tgi_harness::experiments::system_g_reference()).expect("start");
    let addr = server.addr().to_string();

    let outcomes: Vec<_> = (0..32)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr, Duration::from_secs(10)).ok()?;
                client.request("GET", "/healthz", "").ok().map(|r| (r.status, r.retry_after))
            })
        })
        .collect();
    let mut ok = 0u32;
    let mut rejected = 0u32;
    for handle in outcomes {
        match handle.join().expect("client thread") {
            Some((200, _)) => ok += 1,
            Some((429, retry_after)) => {
                rejected += 1;
                // Every refusal carries the standard backoff hint.
                assert_eq!(retry_after, Some(1), "429 without a Retry-After hint");
            }
            Some((other, _)) => panic!("unexpected status {other}"),
            None => {}
        }
    }
    // Under a 1-deep queue the exact split is timing-dependent, but the
    // server must answer — with a 200 or an explicit 429 — not hang or drop.
    assert!(ok > 0, "no request succeeded");
    assert_eq!(
        u64::from(ok),
        server.stats().served.load(Ordering::Relaxed),
        "served counter disagrees with observed 200s"
    );
    if rejected > 0 {
        assert!(
            server.stats().rejected.load(Ordering::Relaxed) >= u64::from(rejected),
            "rejected counter missed refusals"
        );
    }
}
