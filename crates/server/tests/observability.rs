//! The observability plane end-to-end: anomalies injected at the power
//! source travel through the background sampler, the on-disk trace
//! store, and a server recovering that store, and come out of
//! `GET /traces/{node}/anomalies` over a real socket — while a clean
//! synthetic trace produces zero events through the same pipeline.
//! Also covers the flight-recorder dump endpoint and the healthz/metrics
//! observability riders.

use power_model::sampler::PowerSource;
use power_model::{AnomalyConfig, BackgroundSampler, PowerTrace};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tgi_core::Watts;
use tgi_server::{Client, Server, ServerConfig};
use tgi_trace_store::{StoreConfig, TraceStore};

struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("tgi_server_obs_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn connect(server: &Server) -> Client {
    Client::connect(&server.addr().to_string(), Duration::from_secs(5)).expect("connect")
}

/// Deterministic splitmix-style generator (same construction as the
/// detector's own unit tests, so "clean" means the same thing here).
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Meter-like noise: ±2 W, quantized to 0.1 W.
    fn noise(&mut self) -> f64 {
        let uniform = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        ((uniform * 4.0 - 2.0) * 10.0).round() / 10.0
    }
}

fn clean_trace(n: usize, seed: u64) -> PowerTrace {
    let mut rng = Rng(seed);
    let mut trace = PowerTrace::with_capacity(n);
    for i in 0..n {
        trace.push(i as f64, Watts::new(200.0 + rng.noise()));
    }
    trace
}

/// A live source that burns steady ~200 W but spikes to 900 W for three
/// polls partway in — the injected fault for the sampler leg.
struct SpikingSource {
    polls: AtomicUsize,
}

impl PowerSource for SpikingSource {
    fn power_now(&self) -> Watts {
        let i = self.polls.fetch_add(1, Ordering::Relaxed);
        if (300..303).contains(&i) {
            return Watts::new(900.0);
        }
        // Deterministic quantized jitter so the baseline is noisy enough
        // not to read as a flatline.
        let mut rng = Rng(i as u64);
        Watts::new(200.0 + rng.noise())
    }
}

#[test]
fn anomalies_flow_from_sampler_through_store_to_the_wire() {
    let scratch = ScratchDir::new("pipeline");
    let store_config = StoreConfig { chunk_samples: 64, ..StoreConfig::default() };

    // Leg 1 — live capture: a watched streaming sampler polls the spiking
    // source straight into the on-disk store the server will later serve.
    let source = Arc::new(SpikingSource { polls: AtomicUsize::new(0) });
    let store = TraceStore::open(scratch.0.join("node-live"), store_config.clone())
        .expect("open live store");
    let sampler = BackgroundSampler::start_streaming_watched(
        Arc::clone(&source) as Arc<dyn PowerSource>,
        Duration::from_micros(200),
        store,
        Some(AnomalyConfig::default()),
    );
    // Run until the spike window (polls 300..303) is comfortably past.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while source.polls.load(Ordering::Relaxed) < 600 {
        assert!(std::time::Instant::now() < deadline, "sampler made no progress");
        std::thread::sleep(Duration::from_millis(5));
    }
    let (store, online_events) = sampler.stop_with_anomalies().expect("streaming capture");
    assert!(
        online_events.iter().any(|e| e.kind == power_model::AnomalyKind::Spike),
        "online watch saw the injected spike: {online_events:?}"
    );
    drop(store);

    // Leg 2 — synthetic faults written through the same store format.
    let mut drift = clean_trace(3_000, 9);
    let mut drifted = PowerTrace::with_capacity(3_000);
    for (i, (&t, &w)) in drift.times().iter().zip(drift.watts()).enumerate() {
        let creep = if i >= 1_000 { 0.2 * ((i - 1_000).min(400)) as f64 } else { 0.0 };
        drifted.push(t, Watts::new(w + creep));
    }
    drift = drifted;
    drop(drift.to_store(scratch.0.join("node-drift"), store_config.clone()).expect("drift store"));

    let flat_src = clean_trace(2_000, 11);
    let mut flat = PowerTrace::with_capacity(2_000);
    for (i, (&t, &w)) in flat_src.times().iter().zip(flat_src.watts()).enumerate() {
        let w = if (800..880).contains(&i) { 203.4 } else { w };
        flat.push(t, Watts::new(w));
    }
    drop(flat.to_store(scratch.0.join("node-flat"), store_config.clone()).expect("flat store"));

    let clean = clean_trace(5_000, 42);
    drop(clean.to_store(scratch.0.join("node-clean"), store_config.clone()).expect("clean store"));

    // Leg 3 — a fresh server recovers all four stores and answers the
    // post-hoc scans over the wire.
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        shards: 4,
        queue_capacity: 64,
        data_dir: Some(scratch.0.clone()),
        store_chunk_samples: 64,
        ..ServerConfig::default()
    };
    let server =
        Server::start(config, tgi_harness::experiments::system_g_reference()).expect("start");
    let mut client = connect(&server);

    let r = client.request("GET", "/traces/node-live/anomalies", "").expect("live scan");
    assert_eq!(r.status, 200, "{}", r.body);
    assert!(r.body.contains("\"kind\":\"Spike\""), "spike survived the store: {}", r.body);
    assert!(r.body.contains("\"value\":900"), "{}", r.body);

    let r = client.request("GET", "/traces/node-drift/anomalies", "").expect("drift scan");
    assert_eq!(r.status, 200, "{}", r.body);
    assert!(r.body.contains("\"kind\":\"Drift\""), "{}", r.body);
    assert!(!r.body.contains("\"kind\":\"Spike\""), "ramp must not read as spikes: {}", r.body);

    let r = client.request("GET", "/traces/node-flat/anomalies", "").expect("flat scan");
    assert_eq!(r.status, 200, "{}", r.body);
    assert!(r.body.contains("\"kind\":\"Dropout\""), "{}", r.body);

    // Zero false positives on the clean trace through the full pipeline.
    let r = client.request("GET", "/traces/node-clean/anomalies", "").expect("clean scan");
    assert_eq!(r.status, 200, "{}", r.body);
    assert!(r.body.contains("\"events\":[]"), "clean trace flagged events: {}", r.body);

    // A window that excludes the ramp is also clean; parameters validate.
    let r = client
        .request("GET", "/traces/node-drift/anomalies?from=0&to=900", "")
        .expect("windowed scan");
    assert_eq!(r.status, 200, "{}", r.body);
    assert!(r.body.contains("\"events\":[]"), "pre-ramp window is clean: {}", r.body);
    let r = client.request("GET", "/traces/node-drift/anomalies?from=banana", "").expect("bad");
    assert_eq!(r.status, 400, "{}", r.body);
    let r = client.request("GET", "/traces/nope/anomalies", "").expect("missing");
    assert_eq!(r.status, 404, "{}", r.body);
}

#[test]
fn online_ingest_watch_counts_anomalies_and_healthz_reports_them() {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        shards: 4,
        queue_capacity: 64,
        ..ServerConfig::default()
    };
    let server =
        Server::start(config, tgi_harness::experiments::system_g_reference()).expect("start");
    let mut client = connect(&server);

    // Ingest a clean stretch, then a batch with a huge spike, then enough
    // clean samples for the detector to close the spike event.
    let trace = clean_trace(2_000, 3);
    let mut body = String::from("{\"samples\":[");
    for (i, (&t, &w)) in trace.times().iter().zip(trace.watts()).enumerate() {
        let w = if (700..703).contains(&i) { 900.0 } else { w };
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!("{{\"t\":{t},\"watts\":{w}}}"));
    }
    body.push_str("]}");
    let r = client.request("POST", "/traces/live0", &body).expect("ingest");
    assert_eq!(r.status, 200, "{}", r.body);

    let counts = server.state().anomaly_counts("live0").expect("node exists");
    assert_eq!(counts.spikes, 1, "online watch closed the injected spike: {counts:?}");
    assert_eq!(counts.drifts, 0, "{counts:?}");

    // The live counts ride along the anomalies endpoint…
    let r = client.request("GET", "/traces/live0/anomalies", "").expect("scan");
    assert_eq!(r.status, 200, "{}", r.body);
    assert!(r.body.contains("\"live\":{\"spikes\":1"), "{}", r.body);
    assert!(r.body.contains("\"kind\":\"Spike\""), "post-hoc scan agrees: {}", r.body);

    // …and aggregate into /healthz along with SLO + telemetry state.
    let r = client.request("GET", "/healthz", "").expect("healthz");
    assert_eq!(r.status, 200, "{}", r.body);
    assert!(r.body.contains("\"status\":\"ok\""), "{}", r.body);
    assert!(r.body.contains("\"anomalies\":{\"events\":1,\"spikes\":1"), "{}", r.body);
    assert!(r.body.contains("\"slo\":{\"endpoints\":"), "{}", r.body);
    assert!(r.body.contains("\"dropped_events\":"), "{}", r.body);
    assert!(r.body.contains("\"recorder\":"), "{}", r.body);

    // The SLO families appear on /metrics with endpoint labels.
    let r = client.request("GET", "/metrics", "").expect("metrics");
    assert_eq!(r.status, 200, "{}", r.body);
    assert!(
        r.body.contains("tgi_server_request_latency_seconds{endpoint=\"ingest\""),
        "{}",
        r.body
    );
    assert!(r.body.contains("tgi_server_slo_requests_total{endpoint=\"ingest\"}"), "{}", r.body);
    assert!(
        r.body.contains("tgi_server_slo_burn_rate{endpoint=\"ingest\",window=\"1m\"}"),
        "{}",
        r.body
    );

    // The flight-recorder dump endpoint always answers (an empty Chrome
    // trace when the recorder never ran in this process).
    let r = client.request("GET", "/debug/flight", "").expect("flight");
    assert_eq!(r.status, 200, "{}", r.body);
    assert!(r.body.contains("\"traceEvents\""), "{}", r.body);
    let r = client.request("POST", "/debug/flight", "").expect("flight verb");
    assert_eq!(r.status, 405, "{}", r.body);
}
