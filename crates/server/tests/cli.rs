//! CLI contract tests for the `tgi-server` and `tgi-load` binaries —
//! the workspace convention: `--help` → usage on stdout, exit 0; parse
//! errors → usage on stderr, exit 2.

use std::process::Command;

fn server() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tgi-server"))
}

fn load() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tgi-load"))
}

#[test]
fn server_help_prints_to_stdout_and_exits_zero() {
    let out = server().arg("--help").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("usage: tgi-server"), "stdout was: {stdout}");
    assert!(stdout.contains("POST /traces"), "usage must document endpoints");
    assert!(out.stderr.is_empty(), "help must not write to stderr");
}

#[test]
fn server_unknown_argument_exits_2_with_usage() {
    let out = server().arg("--bogus").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown argument"), "stderr was: {stderr}");
    assert!(stderr.contains("usage: tgi-server"), "stderr must carry usage");
    assert!(out.stdout.is_empty(), "parse errors must not write to stdout");
}

#[test]
fn server_invalid_flag_values_exit_2() {
    for args in [
        &["--workers", "0"][..],
        &["--shards", "none"][..],
        &["--queue", "-3"][..],
        &["--duration", "nan"][..],
        &["--addr"][..],
    ] {
        let out = server().args(args).output().expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("usage: tgi-server"), "{args:?}: {stderr}");
    }
}

#[test]
fn server_bad_bind_address_exits_1() {
    let out =
        server().args(["--addr", "256.256.256.256:1", "--duration", "1"]).output().expect("runs");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("failed to start"), "stderr was: {stderr}");
}

#[test]
fn load_help_prints_to_stdout_and_exits_zero() {
    let out = load().arg("--help").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("usage: tgi-load"), "stdout was: {stdout}");
    assert!(out.stderr.is_empty(), "help must not write to stderr");
}

#[test]
fn load_unknown_argument_exits_2_with_usage() {
    let out = load().arg("--bogus").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown argument"), "stderr was: {stderr}");
    assert!(stderr.contains("usage: tgi-load"), "stderr must carry usage");
    assert!(out.stdout.is_empty());
}
