//! End-to-end tests over real sockets: a server instance per test, a
//! [`tgi_server::Client`] driving it, and in-memory oracles checking that
//! what went over the wire matches what the library computes directly.

use std::time::Duration;
use tgi_server::{Client, Server, ServerConfig};

fn start_server() -> Server {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        shards: 4,
        queue_capacity: 256,
        max_body_bytes: 1024 * 1024,
        ..ServerConfig::default()
    };
    Server::start(config, tgi_harness::experiments::system_g_reference()).expect("server starts")
}

fn connect(server: &Server) -> Client {
    Client::connect(&server.addr().to_string(), Duration::from_secs(5)).expect("connect")
}

fn batch_json(samples: &[(f64, f64)]) -> String {
    let entries: Vec<String> =
        samples.iter().map(|(t, w)| format!("{{\"t\":{t},\"watts\":{w}}}")).collect();
    format!("{{\"samples\":[{}]}}", entries.join(","))
}

#[test]
fn ingest_then_query_matches_in_memory_oracle() {
    let server = start_server();
    let mut client = connect(&server);

    let samples = [(0.0, 100.0), (1.0, 150.0), (2.0, 120.0), (4.0, 90.0)];
    let response = client.request("POST", "/traces/node0", &batch_json(&samples)).expect("ingest");
    assert_eq!(response.status, 200, "{}", response.body);
    assert!(response.body.contains("\"appended\":4"), "{}", response.body);

    // The oracle: the same samples in a local PowerTrace.
    let mut oracle = power_model::PowerTrace::new();
    for (t, w) in samples {
        oracle.push(t, tgi_core::Watts::new(w));
    }

    let response =
        client.request("GET", "/traces/node0/energy?from=0.5&to=3.5", "").expect("query");
    assert_eq!(response.status, 200, "{}", response.body);
    let expected = oracle.energy_between(0.5, 3.5).value();
    let energy: f64 = extract_f64(&response.body, "energy_j");
    assert!((energy - expected).abs() < 1e-9, "wire {energy} vs oracle {expected}");

    // Unbounded query = whole-trace energy.
    let response = client.request("GET", "/traces/node0/energy", "").expect("query");
    let energy: f64 = extract_f64(&response.body, "energy_j");
    assert!((energy - oracle.energy().value()).abs() < 1e-9);
}

#[test]
fn evaluate_matches_library_tgi_bit_for_bit() {
    let server = start_server();
    let mut client = connect(&server);
    let body = r#"{"measurements":[
        {"id":"hpl","gflops":82.0,"watts":3000.0,"seconds":3600.0},
        {"id":"stream","perf":2.5e9,"unit":"bytes_per_sec","watts":2500.0,"seconds":600.0}],
        "weighting":"energy","mean":"geometric"}"#;
    let response = client.request("POST", "/evaluate", body).expect("evaluate");
    assert_eq!(response.status, 200, "{}", response.body);
    let wire_tgi = extract_f64(&response.body, "tgi");

    let reference = tgi_harness::experiments::system_g_reference();
    let expected = tgi_core::Tgi::builder()
        .reference(reference)
        .weighting(tgi_core::Weighting::Energy)
        .mean(tgi_core::MeanKind::Geometric)
        .measurement(
            tgi_core::Measurement::new(
                "hpl",
                tgi_core::Perf::gflops(82.0),
                tgi_core::Watts::new(3000.0),
                tgi_core::Seconds::new(3600.0),
            )
            .unwrap(),
        )
        .measurement(
            tgi_core::Measurement::new(
                "stream",
                tgi_core::Perf::new(2.5e9, tgi_core::PerfUnit::BytesPerSecond).unwrap(),
                tgi_core::Watts::new(2500.0),
                tgi_core::Seconds::new(600.0),
            )
            .unwrap(),
        )
        .compute()
        .unwrap();
    assert_eq!(wire_tgi, expected.value(), "wire and library TGI must agree exactly");
}

#[test]
fn malformed_bodies_are_rejected_with_typed_errors() {
    let server = start_server();
    let mut client = connect(&server);

    // Broken JSON.
    let r = client.request("POST", "/traces/n0", "{not json").expect("send");
    assert_eq!(r.status, 400, "{}", r.body);
    assert!(r.body.contains("error"), "{}", r.body);

    // Valid JSON, invalid samples: negative watts.
    let r = client
        .request("POST", "/traces/n0", &batch_json(&[(0.0, 100.0), (1.0, -5.0)]))
        .expect("send");
    assert_eq!(r.status, 400, "{}", r.body);
    assert!(r.body.contains("sample 1"), "error must name the sample: {}", r.body);

    // Backwards timestamps.
    let r = client
        .request("POST", "/traces/n0", &batch_json(&[(5.0, 100.0), (1.0, 100.0)]))
        .expect("send");
    assert_eq!(r.status, 400, "{}", r.body);
    assert!(r.body.contains("non-decreasing"), "{}", r.body);

    // Non-finite watts (JSON can't carry NaN; 1e999 parses to +inf).
    let r = client
        .request("POST", "/traces/n0", "{\"samples\":[{\"t\":0.0,\"watts\":1e999}]}")
        .expect("send");
    assert_eq!(r.status, 400, "{}", r.body);

    // Nothing was stored by any of the rejected batches.
    let r = client.request("GET", "/traces/n0/energy", "").expect("send");
    assert_eq!(r.status, 404, "rejected batches must not create the node: {}", r.body);

    // Invalid node names.
    let r = client.request("POST", "/traces/bad%20name", "{\"samples\":[]}").expect("send");
    assert_eq!(r.status, 400, "{}", r.body);

    // Evaluate: NaN-free but non-positive performance.
    let r = client
        .request(
            "POST",
            "/evaluate",
            r#"{"measurements":[{"id":"hpl","gflops":-3.0,"watts":100.0,"seconds":10.0}]}"#,
        )
        .expect("send");
    assert_eq!(r.status, 400, "{}", r.body);
    assert!(r.body.contains("gflops"), "{}", r.body);

    // Evaluate: unknown weighting.
    let r = client
        .request(
            "POST",
            "/evaluate",
            r#"{"measurements":[{"id":"hpl","gflops":3.0,"watts":100.0,"seconds":10.0}],"weighting":"vibes"}"#,
        )
        .expect("send");
    assert_eq!(r.status, 400, "{}", r.body);

    // Evaluate: benchmark missing from the reference → typed core error.
    let r = client
        .request(
            "POST",
            "/evaluate",
            r#"{"measurements":[{"id":"no-such-benchmark","gflops":3.0,"watts":100.0,"seconds":10.0}]}"#,
        )
        .expect("send");
    assert_eq!(r.status, 400, "{}", r.body);
    assert!(r.body.contains("evaluation rejected"), "{}", r.body);
}

#[test]
fn out_of_order_batches_conflict_instead_of_corrupting() {
    let server = start_server();
    let mut client = connect(&server);
    let r = client
        .request("POST", "/traces/n0", &batch_json(&[(0.0, 100.0), (10.0, 100.0)]))
        .expect("send");
    assert_eq!(r.status, 200);
    // A replayed/overlapping batch must not splice into the timeline.
    let r = client.request("POST", "/traces/n0", &batch_json(&[(5.0, 100.0)])).expect("send");
    assert_eq!(r.status, 409, "{}", r.body);
    // The stored trace still has exactly the first batch.
    let snapshot = server.state().trace_snapshot("n0").expect("trace exists");
    assert_eq!(snapshot.len(), 2);
    // A batch continuing the timeline is fine (equal boundary allowed).
    let r = client
        .request("POST", "/traces/n0", &batch_json(&[(10.0, 50.0), (11.0, 50.0)]))
        .expect("send");
    assert_eq!(r.status, 200, "{}", r.body);
}

#[test]
fn routing_errors_are_distinguished() {
    let server = start_server();
    let mut client = connect(&server);

    let r = client.request("GET", "/nope", "").expect("send");
    assert_eq!(r.status, 404);

    let r = client.request("DELETE", "/traces/n0", "").expect("send");
    assert_eq!(r.status, 405, "wrong verb on a known path is 405: {}", r.body);

    let r = client.request("GET", "/traces/unknown-node/energy", "").expect("send");
    assert_eq!(r.status, 404);

    let r = client.request("GET", "/traces/n0/energy?from=banana", "").expect("send");
    // Unknown node would 404, but the parameter is validated first.
    assert_eq!(r.status, 400, "{}", r.body);
    assert!(r.body.contains("from"), "{}", r.body);

    let r = client.request("GET", "/healthz", "").expect("send");
    assert_eq!(r.status, 200);
    assert!(r.body.contains("ok"));
}

#[test]
fn oversized_and_malformed_framing_close_with_an_error() {
    use std::io::{Read, Write};
    let server = start_server();

    // Declared body over the configured cap → 413 before the body uploads.
    let mut stream = std::net::TcpStream::connect(server.addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write!(stream, "POST /traces/n0 HTTP/1.1\r\ncontent-length: 99999999\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    assert!(response.starts_with("HTTP/1.1 413"), "{response}");

    // Garbage request line → 400, connection closed.
    let mut stream = std::net::TcpStream::connect(server.addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write!(stream, "??? ???\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    assert!(response.starts_with("HTTP/1.1 400"), "{response}");

    // Chunked upload → 501.
    let mut stream = std::net::TcpStream::connect(server.addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write!(stream, "POST /evaluate HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    assert!(response.starts_with("HTTP/1.1 501"), "{response}");
}

#[test]
fn list_and_fleet_summary_cover_all_nodes() {
    let server = start_server();
    let mut client = connect(&server);
    for node in ["alpha", "beta", "gamma"] {
        let r = client
            .request("POST", &format!("/traces/{node}"), &batch_json(&[(0.0, 100.0), (2.0, 200.0)]))
            .expect("send");
        assert_eq!(r.status, 200, "{}", r.body);
    }
    let r = client.request("GET", "/traces", "").expect("send");
    assert_eq!(r.status, 200);
    for node in ["alpha", "beta", "gamma"] {
        assert!(r.body.contains(node), "{}", r.body);
    }
    assert!(r.body.contains("\"total_samples\":6"), "{}", r.body);

    let r = client.request("GET", "/fleet/summary", "").expect("send");
    assert_eq!(r.status, 200, "{}", r.body);
    assert!(r.body.contains("alpha"), "{}", r.body);
}

#[cfg(feature = "telemetry")]
#[test]
fn metrics_expose_request_counters() {
    // Counters record only while the global collector is installed (the
    // tgi-server binary installs it at startup; here the test does).
    tgi_telemetry::install();
    let server = start_server();
    let mut client = connect(&server);
    client.request("GET", "/healthz", "").expect("send");
    let r = client.request("GET", "/metrics", "").expect("send");
    assert_eq!(r.status, 200);
    assert!(r.body.contains("server_requests_total"), "{}", r.body);
    let _ = tgi_telemetry::uninstall();
}

#[test]
fn graceful_shutdown_completes_in_flight_sessions() {
    let mut server = start_server();
    let addr = server.addr();
    let mut client = connect(&server);
    let r = client.request("POST", "/traces/n0", &batch_json(&[(0.0, 100.0)])).expect("send");
    assert_eq!(r.status, 200);

    server.shutdown();

    // The stored data survived the drain (read through the state handle).
    assert_eq!(server.state().trace_snapshot("n0").expect("trace kept").len(), 1);
    // New connections are refused once the listener is gone (or answered
    // with a close by a racing drain) — either way, no hang.
    let refused = std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(500));
    if let Ok(stream) = refused {
        // The acceptor may still hold the socket open briefly; reads end.
        let mut stream = stream;
        stream.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let mut buffer = Vec::new();
        let _ = std::io::Read::read_to_end(&mut stream, &mut buffer);
    }
}

/// Pulls `"key":<number>` out of a flat JSON body (enough for tests).
fn extract_f64(body: &str, key: &str) -> f64 {
    let needle = format!("\"{key}\":");
    let start =
        body.find(&needle).unwrap_or_else(|| panic!("`{key}` not in {body}")) + needle.len();
    let rest = &body[start..];
    let end = rest
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+')
        })
        .unwrap_or(rest.len());
    rest[..end].parse().unwrap_or_else(|_| panic!("`{key}` not numeric in {body}"))
}
