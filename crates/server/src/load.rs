//! The load generator: N concurrent keep-alive clients driving a mixed
//! ingest/query/evaluate workload, with per-request latency capture.
//!
//! Shared by the `tgi-load` binary (against any address) and the
//! `server_load` benchmark (against an in-process server), so the numbers
//! in `BENCH_server.json` come from exactly the code a user would run.

use crate::client::Client;
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tgi_telemetry::QuantileHistogram;

/// Relative error of the latency sketch: 1% keeps a 10ms p99 exact to
/// ~100µs while the whole run needs a few KB instead of a latency `Vec`
/// per request.
const LATENCY_SKETCH_ALPHA: f64 = 0.01;

/// Load-run parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address, `host:port`.
    pub addr: String,
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests issued per client.
    pub requests_per_client: usize,
    /// Samples in each ingest batch.
    pub batch_samples: usize,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: "127.0.0.1:7070".to_string(),
            clients: 1000,
            requests_per_client: 20,
            batch_samples: 32,
        }
    }
}

/// Aggregated outcome of a load run.
#[derive(Debug, Serialize)]
pub struct LoadReport {
    /// Concurrent clients that ran.
    pub clients: usize,
    /// Requests per client.
    pub requests_per_client: usize,
    /// Requests answered `2xx`.
    pub ok: u64,
    /// Requests answered `429` (backpressure; retried).
    pub rejected: u64,
    /// Requests answered any other status.
    pub failed: u64,
    /// Transport-level errors (connect/timeout).
    pub transport_errors: u64,
    /// Wall-clock duration of the run, seconds.
    pub wall_s: f64,
    /// Completed requests per wall-clock second.
    pub rps: f64,
    /// Median request latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: f64,
    /// 99.9th-percentile request latency, microseconds.
    pub p999_us: f64,
    /// Slowest request, microseconds.
    pub max_us: f64,
}

struct Counters {
    ok: AtomicU64,
    rejected: AtomicU64,
    failed: AtomicU64,
    transport: AtomicU64,
}

/// The request mix one client cycles through. Each client owns a node, so
/// ingest batches append monotonically without cross-client conflicts.
fn run_client(
    config: &LoadConfig,
    client_id: usize,
    counters: &Counters,
    latencies: &QuantileHistogram,
) {
    let timeout = Duration::from_secs(10);
    let mut client = match Client::connect(&config.addr, timeout) {
        Ok(c) => c,
        Err(_) => {
            counters.transport.fetch_add(1, Ordering::Relaxed);
            return;
        }
    };
    let node = format!("load-node-{client_id}");
    let mut t0 = 0.0f64;
    let mut issued = 0usize;
    while issued < config.requests_per_client {
        let (method, path, body): (&str, String, String) = match issued % 4 {
            // Two ingests for every query and evaluate: write-heavy.
            0 | 1 => {
                let samples: Vec<String> = (0..config.batch_samples)
                    .map(|i| {
                        let t = t0 + i as f64;
                        let w = 100.0 + ((client_id + i) % 40) as f64;
                        format!("{{\"t\":{t},\"watts\":{w}}}")
                    })
                    .collect();
                t0 += config.batch_samples as f64;
                ("POST", format!("/traces/{node}"), format!("{{\"samples\":[{}]}}", samples.join(",")))
            }
            2 => {
                ("GET", format!("/traces/{node}/energy?from=0&to={t0}"), String::new())
            }
            _ => (
                "POST",
                "/evaluate".to_string(),
                format!(
                    "{{\"measurements\":[{{\"id\":\"hpl\",\"gflops\":{}, \"watts\":2900.0,\"seconds\":1800.0}}],\"weighting\":\"energy\",\"mean\":\"geometric\"}}",
                    80.0 + (client_id % 20) as f64
                ),
            ),
        };
        let started = Instant::now();
        match client.request(method, &path, &body) {
            Ok(response) => {
                latencies.observe(started.elapsed().as_micros() as f64);
                match response.status {
                    200 => {
                        counters.ok.fetch_add(1, Ordering::Relaxed);
                        issued += 1;
                    }
                    429 => {
                        // Backpressure: reconnect (the server closed us) and
                        // retry the same step after a short pause.
                        counters.rejected.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(Duration::from_millis(5));
                        match Client::connect(&config.addr, timeout) {
                            Ok(c) => client = c,
                            Err(_) => {
                                counters.transport.fetch_add(1, Ordering::Relaxed);
                                return;
                            }
                        }
                    }
                    _ => {
                        counters.failed.fetch_add(1, Ordering::Relaxed);
                        issued += 1;
                    }
                }
                if response.close && issued < config.requests_per_client {
                    match Client::connect(&config.addr, timeout) {
                        Ok(c) => client = c,
                        Err(_) => {
                            counters.transport.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                    }
                }
            }
            Err(_) => {
                counters.transport.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
    }
}

/// Runs the workload and aggregates latencies across every client.
pub fn run(config: &LoadConfig) -> LoadReport {
    let counters = Arc::new(Counters {
        ok: AtomicU64::new(0),
        rejected: AtomicU64::new(0),
        failed: AtomicU64::new(0),
        transport: AtomicU64::new(0),
    });
    let started = Instant::now();
    let handles: Vec<_> = (0..config.clients)
        .map(|client_id| {
            let config = config.clone();
            let counters = Arc::clone(&counters);
            // Small stacks: 1k+ threads at the default 8 MiB would reserve
            // 8 GiB of address space for what is a tiny request loop.
            std::thread::Builder::new()
                .name(format!("tgi-load-{client_id}"))
                .stack_size(128 * 1024)
                .spawn(move || {
                    let latencies = QuantileHistogram::new(LATENCY_SKETCH_ALPHA);
                    run_client(&config, client_id, &counters, &latencies);
                    latencies
                })
                .expect("spawn load client")
        })
        .collect();
    let latencies = QuantileHistogram::new(LATENCY_SKETCH_ALPHA);
    for handle in handles {
        latencies.merge(&handle.join().expect("load client panicked"));
    }
    let wall_s = started.elapsed().as_secs_f64();
    let completed = counters.ok.load(Ordering::Relaxed) + counters.failed.load(Ordering::Relaxed);
    LoadReport {
        clients: config.clients,
        requests_per_client: config.requests_per_client,
        ok: counters.ok.load(Ordering::Relaxed),
        rejected: counters.rejected.load(Ordering::Relaxed),
        failed: counters.failed.load(Ordering::Relaxed),
        transport_errors: counters.transport.load(Ordering::Relaxed),
        wall_s,
        rps: if wall_s > 0.0 { completed as f64 / wall_s } else { 0.0 },
        p50_us: latencies.quantile(0.50).unwrap_or(0.0),
        p99_us: latencies.quantile(0.99).unwrap_or(0.0),
        p999_us: latencies.quantile(0.999).unwrap_or(0.0),
        max_us: latencies.max().unwrap_or(0.0),
    }
}
