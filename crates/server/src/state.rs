//! Shared server state and the request router.
//!
//! [`ServerState`] owns the data plane: node traces sharded across
//! independently locked maps (ingest for node A never contends with a
//! query for node B on another shard), one cached [`TgiEvaluator`] bound
//! to the reference system for the process lifetime, and a pool of
//! [`EvalScratch`] buffers so concurrent `/evaluate` requests reuse warm
//! allocations instead of building fresh ones.
//!
//! Every request body crosses a *validated* deserialization boundary
//! before touching state: power samples go through `PowerTrace`'s
//! validating `Deserialize` (NaN/negative/backwards samples are a 400,
//! never a poisoned prefix index), and measurement suites go through
//! [`Measurement::new`]'s typed checks. Handlers return typed JSON errors;
//! nothing in this module panics on user input.

use crate::http::{Request, Response};
use power_model::fleet::TraceSet;
use power_model::PowerTrace;
use serde::{Serialize, Value};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use tgi_core::evaluator::{EvalScratch, TgiEvaluator};
use tgi_core::{MeanKind, Measurement, Perf, PerfUnit, ReferenceSystem, Seconds, Watts, Weighting};

/// Tunables for a server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads serving connections. Defaults to the rayon shim's
    /// pool width, so the service and the compute pool are sized together.
    pub workers: usize,
    /// Trace shards (independently locked). More shards, less contention.
    pub shards: usize,
    /// Accepted-connection queue capacity — the backpressure bound; beyond
    /// it the acceptor answers `429` instead of queueing.
    pub queue_capacity: usize,
    /// Largest accepted request body, bytes.
    pub max_body_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: rayon::current_num_threads().max(2),
            shards: 16,
            queue_capacity: 1024,
            max_body_bytes: 4 * 1024 * 1024,
        }
    }
}

/// The shared, thread-safe data plane behind every worker.
pub struct ServerState {
    shards: Vec<Mutex<HashMap<String, PowerTrace>>>,
    evaluator: TgiEvaluator<'static>,
    scratch_pool: Mutex<Vec<EvalScratch>>,
    max_body_bytes: usize,
    draining: AtomicBool,
}

#[derive(Serialize)]
struct IngestResponse {
    node: String,
    appended: usize,
    samples: usize,
    energy_j: f64,
}

#[derive(Serialize)]
struct EnergyResponse {
    node: String,
    from: f64,
    to: f64,
    energy_j: f64,
    average_w: f64,
    samples: usize,
}

#[derive(Serialize)]
struct NodeInfo {
    node: String,
    samples: usize,
    duration_s: f64,
    energy_j: f64,
}

#[derive(Serialize)]
struct ListResponse {
    nodes: Vec<NodeInfo>,
    total_samples: usize,
    total_energy_j: f64,
}

#[derive(Serialize)]
struct EvaluateResponse {
    tgi: f64,
    reference: String,
    weighting: String,
    mean: String,
    benchmarks: Vec<String>,
    rees: Vec<f64>,
    weights: Vec<f64>,
}

fn json_response<T: Serialize>(status: u16, value: &T) -> Response {
    match serde_json::to_string(value) {
        Ok(body) => Response::json(status, body),
        Err(e) => Response::error(500, &format!("response serialization failed: {e}")),
    }
}

/// A node label usable as a path segment and shard key: non-empty,
/// ≤ 128 bytes, `[A-Za-z0-9._-]` only.
fn valid_node_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 128
        && name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
}

impl ServerState {
    /// Builds the state, caching one evaluator over `reference` for the
    /// process lifetime (the reference is intentionally leaked: the
    /// evaluator borrows it, and a server's reference lives as long as the
    /// process serves `/evaluate`).
    pub fn new(config: &ServerConfig, reference: ReferenceSystem) -> Self {
        let reference: &'static ReferenceSystem = Box::leak(Box::new(reference));
        let shards = (0..config.shards.max(1)).map(|_| Mutex::new(HashMap::new())).collect();
        ServerState {
            shards,
            evaluator: TgiEvaluator::new(reference),
            scratch_pool: Mutex::new(Vec::new()),
            max_body_bytes: config.max_body_bytes,
            draining: AtomicBool::new(false),
        }
    }

    /// Largest accepted request body, bytes.
    pub fn max_body_bytes(&self) -> usize {
        self.max_body_bytes
    }

    /// Flags the state as draining: keep-alive sessions close after the
    /// in-flight request finishes.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn shard(&self, node: &str) -> &Mutex<HashMap<String, PowerTrace>> {
        let mut hasher = DefaultHasher::new();
        node.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % self.shards.len()]
    }

    /// Routes one parsed request to its handler.
    pub fn handle(&self, request: &Request) -> Response {
        let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
        match (request.method.as_str(), segments.as_slice()) {
            ("GET", ["healthz"]) => self.healthz(),
            ("GET", ["metrics"]) => self.metrics(),
            ("GET", ["traces"]) => self.list_traces(),
            ("POST", ["traces", node]) => self.ingest(node, &request.body),
            ("GET", ["traces", node, "energy"]) => self.energy(node, request),
            ("GET", ["fleet", "summary"]) => self.fleet_summary(),
            ("POST", ["evaluate"]) => self.evaluate(&request.body),
            // Known paths with the wrong verb get a 405, not a 404.
            (_, ["healthz"] | ["metrics"] | ["traces"] | ["evaluate"] | ["fleet", "summary"])
            | (_, ["traces", _] | ["traces", _, "energy"]) => {
                Response::error(405, &format!("method {} not allowed here", request.method))
            }
            _ => Response::error(404, &format!("no route for {}", request.path)),
        }
    }

    fn healthz(&self) -> Response {
        let nodes: usize =
            self.shards.iter().map(|s| s.lock().expect("shard poisoned").len()).sum();
        Response::json(200, format!("{{\"status\":\"ok\",\"nodes\":{nodes}}}"))
    }

    fn metrics(&self) -> Response {
        let snapshot = tgi_telemetry::metrics::snapshot();
        Response::text(200, tgi_telemetry::export::prometheus(&snapshot))
    }

    /// `POST /traces/{node}`: appends a validated batch of samples to the
    /// node's trace. The batch must continue the node's timeline — its
    /// first timestamp may not precede the last already-ingested one
    /// (409 otherwise, so replayed or reordered batches cannot corrupt
    /// the prefix index).
    fn ingest(&self, node: &str, body: &[u8]) -> Response {
        if !valid_node_name(node) {
            return Response::error(400, "node name must be 1-128 chars of [A-Za-z0-9._-]");
        }
        let text = match std::str::from_utf8(body) {
            Ok(t) => t,
            Err(_) => return Response::error(400, "body must be UTF-8 JSON"),
        };
        // The validated deserialization boundary: NaN/negative/backwards
        // samples are rejected here with the sample index, before any
        // shared state is touched.
        let batch: PowerTrace = match serde_json::from_str(text) {
            Ok(t) => t,
            Err(e) => return Response::error(400, &format!("invalid trace batch: {e}")),
        };
        let mut shard = self.shard(node).lock().expect("shard poisoned");
        let trace = shard.entry(node.to_string()).or_default();
        if let (Some((_, last)), Some((first, _))) = (trace.time_bounds(), batch.time_bounds()) {
            if first < last {
                return Response::error(
                    409,
                    &format!(
                        "batch starts at t={first} but node `{node}` has samples through t={last}"
                    ),
                );
            }
        }
        // Safe: the batch is validated, and its first timestamp does not
        // precede the trace's last, so `push`'s invariants hold.
        trace.reserve(batch.len());
        for s in batch.iter() {
            trace.push(s.t, Watts::new(s.watts));
        }
        let response = IngestResponse {
            node: node.to_string(),
            appended: batch.len(),
            samples: trace.len(),
            energy_j: trace.energy().value(),
        };
        if tgi_telemetry::enabled() {
            tgi_telemetry::counter!("server_samples_ingested_total").add(batch.len() as u64);
        }
        json_response(200, &response)
    }

    /// `GET /traces/{node}/energy?from=&to=`: an O(log n) indexed window
    /// query against the node's prefix index.
    fn energy(&self, node: &str, request: &Request) -> Response {
        let parse_bound = |key: &str, default: f64| -> Result<f64, Response> {
            match request.query_value(key) {
                None => Ok(default),
                Some(raw) => match raw.parse::<f64>() {
                    Ok(v) if !v.is_nan() => Ok(v),
                    _ => Err(Response::error(
                        400,
                        &format!("query parameter `{key}` must be a finite number, got `{raw}`"),
                    )),
                },
            }
        };
        let from = match parse_bound("from", f64::NEG_INFINITY) {
            Ok(v) => v,
            Err(r) => return r,
        };
        let to = match parse_bound("to", f64::INFINITY) {
            Ok(v) => v,
            Err(r) => return r,
        };
        let shard = self.shard(node).lock().expect("shard poisoned");
        let trace = match shard.get(node) {
            Some(t) => t,
            None => return Response::error(404, &format!("unknown node `{node}`")),
        };
        let (first, last) = trace.time_bounds().unwrap_or((0.0, 0.0));
        let response = EnergyResponse {
            node: node.to_string(),
            from: from.max(first),
            to: to.min(last),
            energy_j: trace.energy_between(from, to).value(),
            average_w: trace.average_power_between(from, to).value(),
            samples: trace.len(),
        };
        json_response(200, &response)
    }

    fn list_traces(&self) -> Response {
        let mut nodes: Vec<NodeInfo> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("shard poisoned");
            for (name, trace) in shard.iter() {
                nodes.push(NodeInfo {
                    node: name.clone(),
                    samples: trace.len(),
                    duration_s: trace.duration().value(),
                    energy_j: trace.energy().value(),
                });
            }
        }
        nodes.sort_by(|a, b| a.node.cmp(&b.node));
        let response = ListResponse {
            total_samples: nodes.iter().map(|n| n.samples).sum(),
            total_energy_j: nodes.iter().map(|n| n.energy_j).sum(),
            nodes,
        };
        json_response(200, &response)
    }

    /// `GET /fleet/summary`: snapshots every node into a [`TraceSet`] and
    /// summarizes it on the rayon shim pool (per-node percentile caches in
    /// parallel). Clones the traces — this is the reporting endpoint, not
    /// the hot path.
    fn fleet_summary(&self) -> Response {
        let mut entries: Vec<(String, PowerTrace)> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("shard poisoned");
            for (name, trace) in shard.iter() {
                entries.push((name.clone(), trace.clone()));
            }
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let summary = TraceSet::from_entries(entries).summarize();
        json_response(200, &summary)
    }

    /// `POST /evaluate`: scores a measurement suite against the cached
    /// reference through the zero-alloc evaluator, with a pooled scratch.
    fn evaluate(&self, body: &[u8]) -> Response {
        let text = match std::str::from_utf8(body) {
            Ok(t) => t,
            Err(_) => return Response::error(400, "body must be UTF-8 JSON"),
        };
        let value: Value = match serde_json::from_str(text) {
            Ok(v) => v,
            Err(e) => return Response::error(400, &format!("invalid JSON: {e}")),
        };
        let (measurements, weighting, mean) = match parse_evaluate_request(&value) {
            Ok(parts) => parts,
            Err(msg) => return Response::error(400, &msg),
        };

        let mut scratch =
            self.scratch_pool.lock().expect("scratch poisoned").pop().unwrap_or_default();
        let result = self.evaluator.evaluate_into(&measurements, &weighting, mean, &mut scratch);
        let response = match result {
            Ok(tgi) => {
                let response = EvaluateResponse {
                    tgi,
                    reference: self.evaluator.reference().name().to_string(),
                    weighting: weighting.label().to_string(),
                    mean: mean.label().to_string(),
                    benchmarks: measurements.iter().map(|m| m.id().to_string()).collect(),
                    rees: scratch.rees().to_vec(),
                    weights: scratch.weights().to_vec(),
                };
                json_response(200, &response)
            }
            Err(e) => Response::error(400, &format!("evaluation rejected: {e}")),
        };
        self.scratch_pool.lock().expect("scratch poisoned").push(scratch);
        response
    }

    /// Test/oracle accessor: a clone of one node's trace.
    pub fn trace_snapshot(&self, node: &str) -> Option<PowerTrace> {
        self.shard(node).lock().expect("shard poisoned").get(node).cloned()
    }
}

/// Parses the `/evaluate` request body:
///
/// ```json
/// {"measurements": [{"id": "hpl", "gflops": 90.0, "watts": 2900.0, "seconds": 1800.0}],
///  "weighting": "arithmetic|time|energy|power",
///  "mean": "arithmetic|geometric|harmonic"}
/// ```
///
/// `weighting` and `mean` default to `arithmetic`. Every measurement is
/// validated through [`Measurement::new`]'s typed checks; performance is
/// additionally checked here because `Perf::gflops` is a raw constructor.
fn parse_evaluate_request(
    value: &Value,
) -> Result<(Vec<Measurement>, Weighting, MeanKind), String> {
    let list = value
        .get("measurements")
        .ok_or("missing field `measurements`")?
        .as_array()
        .ok_or("`measurements` must be an array")?;
    let mut measurements = Vec::with_capacity(list.len());
    for (i, entry) in list.iter().enumerate() {
        let field = |name: &str| -> Result<f64, String> {
            entry
                .get(name)
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("measurement {i}: missing numeric field `{name}`"))
        };
        let id = entry
            .get("id")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("measurement {i}: missing string field `id`"))?;
        // Performance comes as the `gflops` shorthand or as a generic
        // `perf` + `unit` pair (the reference suite mixes FLOPS and B/s).
        // `Perf::new` (unlike `Perf::gflops`) validates, so every wire
        // value funnels through the checked constructor.
        let perf = match (entry.get("gflops"), entry.get("perf")) {
            (Some(_), Some(_)) => {
                return Err(format!("measurement {i}: give `gflops` or `perf`+`unit`, not both"))
            }
            (Some(_), None) => Perf::new(field("gflops")? * 1e9, PerfUnit::Flops)
                .map_err(|e| format!("measurement {i}: `gflops`: {e}"))?,
            (None, Some(_)) => {
                let unit = match entry.get("unit").map(|u| u.as_str()) {
                    Some(Some("flops")) => PerfUnit::Flops,
                    Some(Some("bytes_per_sec")) => PerfUnit::BytesPerSecond,
                    Some(Some("gups")) => PerfUnit::Gups,
                    Some(Some(other)) => PerfUnit::Custom(other.to_string()),
                    _ => {
                        return Err(format!(
                            "measurement {i}: `perf` needs a string `unit` \
                             (flops|bytes_per_sec|gups|<custom label>)"
                        ))
                    }
                };
                Perf::new(field("perf")?, unit)
                    .map_err(|e| format!("measurement {i}: `perf`: {e}"))?
            }
            (None, None) => {
                return Err(format!("measurement {i}: missing `gflops` or `perf`+`unit`"))
            }
        };
        // `Watts::try_new`/`Seconds::try_new` here rather than the raw
        // constructors: these values are straight off the wire.
        let watts = Watts::try_new(field("watts")?)
            .map_err(|e| format!("measurement {i}: `watts`: {e}"))?;
        let seconds = Seconds::try_new(field("seconds")?)
            .map_err(|e| format!("measurement {i}: `seconds`: {e}"))?;
        let m = Measurement::new(id, perf, watts, seconds)
            .map_err(|e| format!("measurement {i}: {e}"))?;
        measurements.push(m);
    }

    let weighting = match value.get("weighting").map(|v| v.as_str()) {
        None => Weighting::Arithmetic,
        Some(Some("arithmetic")) => Weighting::Arithmetic,
        Some(Some("time")) => Weighting::Time,
        Some(Some("energy")) => Weighting::Energy,
        Some(Some("power")) => Weighting::Power,
        Some(other) => {
            return Err(format!(
                "`weighting` must be one of arithmetic|time|energy|power, got {other:?}"
            ))
        }
    };
    let mean = match value.get("mean").map(|v| v.as_str()) {
        None => MeanKind::Arithmetic,
        Some(Some("arithmetic")) => MeanKind::Arithmetic,
        Some(Some("geometric")) => MeanKind::Geometric,
        Some(Some("harmonic")) => MeanKind::Harmonic,
        Some(other) => {
            return Err(format!(
                "`mean` must be one of arithmetic|geometric|harmonic, got {other:?}"
            ))
        }
    };
    Ok((measurements, weighting, mean))
}
