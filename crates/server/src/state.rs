//! Shared server state and the request router.
//!
//! [`ServerState`] owns the data plane: node traces sharded across
//! independently locked maps (ingest for node A never contends with a
//! query for node B on another shard), one cached [`TgiEvaluator`] bound
//! to the reference system for the process lifetime, and a pool of
//! [`EvalScratch`] buffers so concurrent `/evaluate` requests reuse warm
//! allocations instead of building fresh ones.
//!
//! Every request body crosses a *validated* deserialization boundary
//! before touching state: power samples go through `PowerTrace`'s
//! validating `Deserialize` (NaN/negative/backwards samples are a 400,
//! never a poisoned prefix index), and measurement suites go through
//! [`Measurement::new`]'s typed checks. Handlers return typed JSON errors;
//! nothing in this module panics on user input.

use crate::http::{Request, Response};
use crate::slo::SloTracker;
use power_model::anomaly;
use power_model::fleet::TraceSet;
use power_model::{
    AnomalyConfig, AnomalyCounts, AnomalyDetector, AnomalyEvent, PowerTrace, StoreBackedTrace,
};
use serde::{Serialize, Value};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use tgi_core::evaluator::{EvalScratch, TgiEvaluator};
use tgi_core::{MeanKind, Measurement, Perf, PerfUnit, ReferenceSystem, Seconds, Watts, Weighting};
use tgi_trace_store::{StoreConfig, StoreError};

/// Tunables for a server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads serving connections. Defaults to the rayon shim's
    /// pool width, so the service and the compute pool are sized together.
    pub workers: usize,
    /// Trace shards (independently locked). More shards, less contention.
    pub shards: usize,
    /// Accepted-connection queue capacity — the backpressure bound; beyond
    /// it the acceptor answers `429` instead of queueing.
    pub queue_capacity: usize,
    /// Largest accepted request body, bytes.
    pub max_body_bytes: usize,
    /// When set, traces persist to compressed `tgi-trace-store` stores
    /// under this directory (one subdirectory per node) instead of living
    /// only in memory; existing stores are recovered on startup.
    pub data_dir: Option<PathBuf>,
    /// Samples per sealed store chunk in `--data-dir` mode.
    pub store_chunk_samples: usize,
    /// When set, the tgi-telemetry flight recorder is enabled at startup
    /// with this per-thread ring capacity, and `GET /debug/flight` dumps
    /// it. `None` leaves the process-global recorder untouched (tests
    /// sharing a process must not fight over it; the `tgi-server` binary
    /// turns it on).
    pub flight_recorder_capacity: Option<usize>,
    /// Detector tuning for the per-node online anomaly watch and the
    /// post-hoc `GET /traces/{node}/anomalies` scans.
    pub anomaly: AnomalyConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: rayon::current_num_threads().max(2),
            shards: 16,
            queue_capacity: 1024,
            max_body_bytes: 4 * 1024 * 1024,
            data_dir: None,
            store_chunk_samples: StoreConfig::default().chunk_samples,
            flight_recorder_capacity: None,
            anomaly: AnomalyConfig::default(),
        }
    }
}

/// One node's trace, either purely in memory (the default) or backed by
/// an on-disk store (`--data-dir` mode). The two variants answer every
/// query the handlers need with identical semantics; the stored one is
/// fallible because cold chunks live on disk.
enum NodeTrace {
    Memory(PowerTrace),
    Stored(StoreBackedTrace),
}

impl NodeTrace {
    fn len(&self) -> usize {
        match self {
            NodeTrace::Memory(t) => t.len(),
            NodeTrace::Stored(s) => s.len() as usize,
        }
    }

    fn time_bounds(&self) -> Option<(f64, f64)> {
        match self {
            NodeTrace::Memory(t) => t.time_bounds(),
            NodeTrace::Stored(s) => s.time_bounds(),
        }
    }

    fn duration_s(&self) -> f64 {
        match self {
            NodeTrace::Memory(t) => t.duration().value(),
            NodeTrace::Stored(s) => s.duration().value(),
        }
    }

    fn energy_j(&self) -> f64 {
        match self {
            NodeTrace::Memory(t) => t.energy().value(),
            NodeTrace::Stored(s) => s.energy().value(),
        }
    }

    fn energy_between(&self, a: f64, b: f64) -> Result<f64, StoreError> {
        match self {
            NodeTrace::Memory(t) => Ok(t.energy_between(a, b).value()),
            NodeTrace::Stored(s) => Ok(s.energy_between(a, b)?.value()),
        }
    }

    fn average_power_between(&self, a: f64, b: f64) -> Result<f64, StoreError> {
        match self {
            NodeTrace::Memory(t) => Ok(t.average_power_between(a, b).value()),
            NodeTrace::Stored(s) => Ok(s.average_power_between(a, b)?.value()),
        }
    }

    /// Appends a pre-validated, timeline-continuing batch and (in stored
    /// mode) makes it durable before the caller acknowledges it.
    fn append_batch(&mut self, times: &[f64], watts: &[f64]) -> Result<(), StoreError> {
        match self {
            NodeTrace::Memory(t) => {
                t.extend_from_slices(times, watts);
                Ok(())
            }
            NodeTrace::Stored(s) => {
                s.extend_from_slices(times, watts)?;
                // A 200 promises the batch survives a crash: fsync the WAL
                // tail (sealed chunks were already synced by the append).
                s.store_mut().sync()
            }
        }
    }

    /// Materializes the full trace (clones the memory variant, decodes
    /// the stored one).
    fn materialize(&self) -> Result<PowerTrace, StoreError> {
        match self {
            NodeTrace::Memory(t) => Ok(t.clone()),
            NodeTrace::Stored(s) => s.to_trace(),
        }
    }
}

/// Recent anomaly events kept live per node (older ones stay queryable
/// post-hoc through the trace scan; this bound only caps hot memory).
const RECENT_ANOMALIES: usize = 256;

/// The online anomaly watch riding along a node's trace: one O(1)-state
/// detector fed at ingest, plus a bounded deque of the most recent
/// events for the health/anomaly endpoints.
struct NodeWatch {
    detector: AnomalyDetector,
    recent: VecDeque<AnomalyEvent>,
}

impl NodeWatch {
    fn new(config: AnomalyConfig) -> Self {
        NodeWatch { detector: AnomalyDetector::new(config), recent: VecDeque::new() }
    }

    /// Feeds one validated batch through the detector; returns how many
    /// anomaly events the batch closed.
    fn observe_batch(&mut self, times: &[f64], watts: &[f64]) -> usize {
        let mut events = Vec::new();
        for (&t, &w) in times.iter().zip(watts) {
            self.detector.push(t, w, &mut events);
        }
        let closed = events.len();
        for event in events {
            if self.recent.len() == RECENT_ANOMALIES {
                self.recent.pop_front();
            }
            self.recent.push_back(event);
        }
        closed
    }
}

/// One node's full server-side state: the trace plus its anomaly watch.
struct NodeEntry {
    trace: NodeTrace,
    watch: NodeWatch,
}

/// Where `--data-dir` mode keeps its per-node stores.
struct StoreRoot {
    dir: PathBuf,
    config: StoreConfig,
}

/// The shared, thread-safe data plane behind every worker.
pub struct ServerState {
    shards: Vec<Mutex<HashMap<String, NodeEntry>>>,
    store: Option<StoreRoot>,
    evaluator: TgiEvaluator<'static>,
    scratch_pool: Mutex<Vec<EvalScratch>>,
    max_body_bytes: usize,
    draining: AtomicBool,
    anomaly_config: AnomalyConfig,
    /// Anomaly events closed by online detection since startup, across
    /// every node (cheap aggregate for `/healthz`).
    anomalies_detected: AtomicU64,
    slo: SloTracker,
}

#[derive(Serialize)]
struct IngestResponse {
    node: String,
    appended: usize,
    samples: usize,
    energy_j: f64,
}

#[derive(Serialize)]
struct EnergyResponse {
    node: String,
    from: f64,
    to: f64,
    energy_j: f64,
    average_w: f64,
    samples: usize,
}

#[derive(Serialize)]
struct NodeInfo {
    node: String,
    samples: usize,
    duration_s: f64,
    energy_j: f64,
}

#[derive(Serialize)]
struct ListResponse {
    nodes: Vec<NodeInfo>,
    total_samples: usize,
    total_energy_j: f64,
}

#[derive(Serialize)]
struct AnomaliesResponse {
    node: String,
    from: f64,
    to: f64,
    /// Events from the post-hoc scan over the requested window.
    events: Vec<AnomalyEvent>,
    /// Per-kind totals of `events`.
    counts: AnomalyCounts,
    /// Lifetime counts from the node's online detector (this process).
    live: AnomalyCounts,
    /// Most recent events the online detector closed (bounded buffer).
    recent: Vec<AnomalyEvent>,
}

#[derive(Serialize)]
struct EvaluateResponse {
    tgi: f64,
    reference: String,
    weighting: String,
    mean: String,
    benchmarks: Vec<String>,
    rees: Vec<f64>,
    weights: Vec<f64>,
}

fn json_response<T: Serialize>(status: u16, value: &T) -> Response {
    match serde_json::to_string(value) {
        Ok(body) => Response::json(status, body),
        Err(e) => Response::error(500, &format!("response serialization failed: {e}")),
    }
}

/// A node label usable as a path segment, shard key, and (in `--data-dir`
/// mode) directory name: non-empty, ≤ 128 bytes, `[A-Za-z0-9._-]` only.
/// `.` and `..` are excluded explicitly — the character set admits them,
/// but as directory names they would escape the per-node layout.
fn valid_node_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 128
        && name != "."
        && name != ".."
        && name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
}

/// Maps a node name to its shard slot (stable across restarts within one
/// build; persistence does not depend on it — recovery re-hashes names).
fn shard_index(node: &str, shards: usize) -> usize {
    let mut hasher = DefaultHasher::new();
    node.hash(&mut hasher);
    (hasher.finish() as usize) % shards
}

impl ServerState {
    /// Builds the state, caching one evaluator over `reference` for the
    /// process lifetime (the reference is intentionally leaked: the
    /// evaluator borrows it, and a server's reference lives as long as the
    /// process serves `/evaluate`).
    ///
    /// With `config.data_dir` set, the directory is created if needed and
    /// every existing per-node store under it is recovered (WAL replay,
    /// torn-tail truncation) before the server accepts traffic; a store
    /// that cannot be opened fails startup instead of silently serving a
    /// partial fleet.
    pub fn new(config: &ServerConfig, reference: ReferenceSystem) -> io::Result<Self> {
        let reference: &'static ReferenceSystem = Box::leak(Box::new(reference));
        if let Some(capacity) = config.flight_recorder_capacity {
            tgi_telemetry::recorder::enable(capacity);
        }
        let shard_count = config.shards.max(1);
        let mut shards: Vec<Mutex<HashMap<String, NodeEntry>>> =
            (0..shard_count).map(|_| Mutex::new(HashMap::new())).collect();
        let store = match &config.data_dir {
            None => None,
            Some(dir) => {
                let store_config = StoreConfig {
                    chunk_samples: config.store_chunk_samples.max(2),
                    ..StoreConfig::default()
                };
                std::fs::create_dir_all(dir)?;
                for entry in std::fs::read_dir(dir)? {
                    let entry = entry?;
                    if !entry.file_type()?.is_dir() {
                        continue;
                    }
                    let name = match entry.file_name().into_string() {
                        Ok(n) if valid_node_name(&n) => n,
                        _ => continue,
                    };
                    let backed = StoreBackedTrace::open(entry.path(), store_config.clone())
                        .map_err(|e| {
                            io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!("recovering store for node `{name}`: {e}"),
                            )
                        })?;
                    // Recovered nodes restart their online detector from
                    // a clean slate; history stays queryable through the
                    // post-hoc scan over the store.
                    shards[shard_index(&name, shard_count)]
                        .get_mut()
                        .expect("shard poisoned")
                        .insert(
                            name,
                            NodeEntry {
                                trace: NodeTrace::Stored(backed),
                                watch: NodeWatch::new(config.anomaly),
                            },
                        );
                }
                Some(StoreRoot { dir: dir.clone(), config: store_config })
            }
        };
        Ok(ServerState {
            shards,
            store,
            evaluator: TgiEvaluator::new(reference),
            scratch_pool: Mutex::new(Vec::new()),
            max_body_bytes: config.max_body_bytes,
            draining: AtomicBool::new(false),
            anomaly_config: config.anomaly,
            anomalies_detected: AtomicU64::new(0),
            slo: SloTracker::default(),
        })
    }

    /// The per-endpoint latency SLO tracker (workers record into it;
    /// `/metrics` and `/healthz` report from it).
    pub fn slo(&self) -> &SloTracker {
        &self.slo
    }

    /// Largest accepted request body, bytes.
    pub fn max_body_bytes(&self) -> usize {
        self.max_body_bytes
    }

    /// Flags the state as draining: keep-alive sessions close after the
    /// in-flight request finishes.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn shard(&self, node: &str) -> &Mutex<HashMap<String, NodeEntry>> {
        &self.shards[shard_index(node, self.shards.len())]
    }

    /// Routes one parsed request to its handler.
    pub fn handle(&self, request: &Request) -> Response {
        let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
        match (request.method.as_str(), segments.as_slice()) {
            ("GET", ["healthz"]) => self.healthz(),
            ("GET", ["metrics"]) => self.metrics(),
            ("GET", ["traces"]) => self.list_traces(),
            ("POST", ["traces", node]) => self.ingest(node, &request.body),
            ("GET", ["traces", node, "energy"]) => self.energy(node, request),
            ("GET", ["traces", node, "anomalies"]) => self.anomalies(node, request),
            ("GET", ["fleet", "summary"]) => self.fleet_summary(),
            ("POST", ["evaluate"]) => self.evaluate(&request.body),
            ("GET", ["debug", "flight"]) => self.debug_flight(),
            // Known paths with the wrong verb get a 405, not a 404.
            (_, ["healthz"] | ["metrics"] | ["traces"] | ["evaluate"] | ["fleet", "summary"])
            | (_, ["traces", _] | ["traces", _, "energy"] | ["traces", _, "anomalies"])
            | (_, ["debug", "flight"]) => {
                Response::error(405, &format!("method {} not allowed here", request.method))
            }
            _ => Response::error(404, &format!("no route for {}", request.path)),
        }
    }

    fn healthz(&self) -> Response {
        let mut nodes = 0usize;
        let mut chunks = 0u64;
        let mut disk_bytes = 0u64;
        let mut anomaly_counts = AnomalyCounts::default();
        for shard in &self.shards {
            let shard = shard.lock().expect("shard poisoned");
            nodes += shard.len();
            for entry in shard.values() {
                anomaly_counts.absorb(entry.watch.detector.counts());
                if let NodeTrace::Stored(s) = &entry.trace {
                    chunks += s.store().sealed_chunks() as u64;
                    disk_bytes += s.store().disk_bytes();
                }
            }
        }
        let store = match &self.store {
            Some(_) => {
                format!("{{\"enabled\":true,\"chunks\":{chunks},\"disk_bytes\":{disk_bytes}}}")
            }
            None => "{\"enabled\":false}".to_string(),
        };
        // Observability riders: online anomaly totals, SLO burn state,
        // and the telemetry plane's own loss/retention counters.
        let anomalies = format!(
            "{{\"events\":{},\"spikes\":{},\"drifts\":{},\"dropouts\":{}}}",
            self.anomalies_detected.load(Ordering::Relaxed),
            anomaly_counts.spikes,
            anomaly_counts.drifts,
            anomaly_counts.dropouts,
        );
        let slo_status = self.slo.status();
        let slo = format!(
            "{{\"endpoints\":{},\"breaching\":{}}}",
            slo_status.len(),
            slo_status.iter().filter(|s| s.breaching).count(),
        );
        let recorder = tgi_telemetry::recorder::stats();
        let telemetry = format!(
            "{{\"dropped_events\":{},\"recorder\":{{\"active\":{},\"threads\":{},\
             \"buffered\":{},\"skipped_writes\":{},\"dumps\":{}}}}}",
            tgi_telemetry::metrics::snapshot()
                .counter("tgi_telemetry_dropped_events_total")
                .unwrap_or(0),
            recorder.active,
            recorder.threads,
            recorder.buffered,
            recorder.skipped_writes,
            recorder.dumps,
        );
        Response::json(
            200,
            format!(
                "{{\"status\":\"ok\",\"nodes\":{nodes},\"store\":{store},\
                 \"anomalies\":{anomalies},\"slo\":{slo},\"telemetry\":{telemetry}}}"
            ),
        )
    }

    fn metrics(&self) -> Response {
        let snapshot = tgi_telemetry::metrics::snapshot();
        let mut body = tgi_telemetry::export::prometheus(&snapshot);
        self.slo.prometheus_append(&mut body);
        Response::text(200, body)
    }

    /// `GET /debug/flight`: dumps the flight recorder's retained spans as
    /// Chrome trace JSON (loadable in `chrome://tracing` / Perfetto).
    /// Served even while the recorder is inactive — the dump is then the
    /// events retained from when it last ran, or empty.
    fn debug_flight(&self) -> Response {
        Response::json(200, tgi_telemetry::recorder::dump_chrome())
    }

    /// `POST /traces/{node}`: appends a validated batch of samples to the
    /// node's trace. The batch must continue the node's timeline — its
    /// first timestamp may not precede the last already-ingested one
    /// (409 otherwise, so replayed or reordered batches cannot corrupt
    /// the prefix index).
    fn ingest(&self, node: &str, body: &[u8]) -> Response {
        if !valid_node_name(node) {
            return Response::error(400, "node name must be 1-128 chars of [A-Za-z0-9._-]");
        }
        let text = match std::str::from_utf8(body) {
            Ok(t) => t,
            Err(_) => return Response::error(400, "body must be UTF-8 JSON"),
        };
        // The validated deserialization boundary: NaN/negative/backwards
        // samples are rejected here with the sample index, before any
        // shared state is touched.
        let batch: PowerTrace = match serde_json::from_str(text) {
            Ok(t) => t,
            Err(e) => return Response::error(400, &format!("invalid trace batch: {e}")),
        };
        let mut shard = self.shard(node).lock().expect("shard poisoned");
        if !shard.contains_key(node) {
            // First batch for this node: open (or create) its store in
            // `--data-dir` mode, otherwise start an in-memory trace.
            let fresh = match &self.store {
                None => NodeTrace::Memory(PowerTrace::new()),
                Some(root) => {
                    match StoreBackedTrace::open(root.dir.join(node), root.config.clone()) {
                        Ok(backed) => NodeTrace::Stored(backed),
                        Err(e) => {
                            return Response::error(
                                500,
                                &format!("opening store for node `{node}`: {e}"),
                            )
                        }
                    }
                }
            };
            shard.insert(
                node.to_string(),
                NodeEntry { trace: fresh, watch: NodeWatch::new(self.anomaly_config) },
            );
        }
        let entry = shard.get_mut(node).expect("just inserted");
        if let (Some((_, last)), Some((first, _))) =
            (entry.trace.time_bounds(), batch.time_bounds())
        {
            if first < last {
                return Response::error(
                    409,
                    &format!(
                        "batch starts at t={first} but node `{node}` has samples through t={last}"
                    ),
                );
            }
        }
        // Safe: the batch is validated, and its first timestamp does not
        // precede the trace's last, so the append invariants hold. In
        // stored mode the batch is durable (WAL fsynced) before the 200.
        if let Err(e) = entry.trace.append_batch(batch.times(), batch.watts()) {
            return Response::error(500, &format!("persisting batch for node `{node}`: {e}"));
        }
        // The acknowledged batch streams through the node's online
        // detector; closed events become health/metrics markers.
        let closed = entry.watch.observe_batch(batch.times(), batch.watts());
        if closed > 0 {
            self.anomalies_detected.fetch_add(closed as u64, Ordering::Relaxed);
            if tgi_telemetry::enabled() {
                tgi_telemetry::counter!("server_power_anomalies_total").add(closed as u64);
            }
        }
        let response = IngestResponse {
            node: node.to_string(),
            appended: batch.len(),
            samples: entry.trace.len(),
            energy_j: entry.trace.energy_j(),
        };
        if tgi_telemetry::enabled() {
            tgi_telemetry::counter!("server_samples_ingested_total").add(batch.len() as u64);
        }
        json_response(200, &response)
    }

    /// `GET /traces/{node}/energy?from=&to=`: an O(log n) indexed window
    /// query against the node's prefix index.
    fn energy(&self, node: &str, request: &Request) -> Response {
        let parse_bound = |key: &str, default: f64| -> Result<f64, Response> {
            match request.query_value(key) {
                None => Ok(default),
                Some(raw) => match raw.parse::<f64>() {
                    Ok(v) if !v.is_nan() => Ok(v),
                    _ => Err(Response::error(
                        400,
                        &format!("query parameter `{key}` must be a finite number, got `{raw}`"),
                    )),
                },
            }
        };
        let from = match parse_bound("from", f64::NEG_INFINITY) {
            Ok(v) => v,
            Err(r) => return r,
        };
        let to = match parse_bound("to", f64::INFINITY) {
            Ok(v) => v,
            Err(r) => return r,
        };
        let shard = self.shard(node).lock().expect("shard poisoned");
        let trace = match shard.get(node) {
            Some(entry) => &entry.trace,
            None => return Response::error(404, &format!("unknown node `{node}`")),
        };
        let (first, last) = trace.time_bounds().unwrap_or((0.0, 0.0));
        let (energy_j, average_w) =
            match (trace.energy_between(from, to), trace.average_power_between(from, to)) {
                (Ok(e), Ok(w)) => (e, w),
                (Err(e), _) | (_, Err(e)) => {
                    return Response::error(500, &format!("store query for `{node}` failed: {e}"))
                }
            };
        let response = EnergyResponse {
            node: node.to_string(),
            from: from.max(first),
            to: to.min(last),
            energy_j,
            average_w,
            samples: trace.len(),
        };
        json_response(200, &response)
    }

    /// `GET /traces/{node}/anomalies?from=&to=`: a post-hoc detector scan
    /// over the node's stored samples in `[from, to]` (the whole trace by
    /// default), plus the live online counts. The scan replays a fresh
    /// detector over the window, so anomalies are queryable long after
    /// the online watch saw them — including over traces recovered from
    /// disk by a later process.
    fn anomalies(&self, node: &str, request: &Request) -> Response {
        let parse_bound = |key: &str| -> Result<Option<f64>, Response> {
            match request.query_value(key) {
                None => Ok(None),
                Some(raw) => match raw.parse::<f64>() {
                    Ok(v) if v.is_finite() => Ok(Some(v)),
                    _ => Err(Response::error(
                        400,
                        &format!("query parameter `{key}` must be a finite number, got `{raw}`"),
                    )),
                },
            }
        };
        let from = match parse_bound("from") {
            Ok(v) => v,
            Err(r) => return r,
        };
        let to = match parse_bound("to") {
            Ok(v) => v,
            Err(r) => return r,
        };
        let shard = self.shard(node).lock().expect("shard poisoned");
        let entry = match shard.get(node) {
            Some(e) => e,
            None => return Response::error(404, &format!("unknown node `{node}`")),
        };
        let events = match &entry.trace {
            NodeTrace::Memory(t) => {
                let window =
                    t.window(from.unwrap_or(f64::NEG_INFINITY), to.unwrap_or(f64::INFINITY));
                anomaly::scan(&window, self.anomaly_config)
            }
            NodeTrace::Stored(s) => match anomaly::scan_stored(s, self.anomaly_config, from, to) {
                Ok(events) => events,
                Err(e) => {
                    return Response::error(500, &format!("anomaly scan for `{node}` failed: {e}"))
                }
            },
        };
        let mut counts = AnomalyCounts::default();
        for event in &events {
            match event.kind {
                power_model::AnomalyKind::Spike => counts.spikes += 1,
                power_model::AnomalyKind::Drift => counts.drifts += 1,
                power_model::AnomalyKind::Dropout => counts.dropouts += 1,
            }
        }
        let (first, last) = entry.trace.time_bounds().unwrap_or((0.0, 0.0));
        let response = AnomaliesResponse {
            node: node.to_string(),
            from: from.unwrap_or(first),
            to: to.unwrap_or(last),
            events,
            counts,
            live: entry.watch.detector.counts(),
            recent: entry.watch.recent.iter().copied().collect(),
        };
        json_response(200, &response)
    }

    fn list_traces(&self) -> Response {
        let mut nodes: Vec<NodeInfo> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("shard poisoned");
            for (name, entry) in shard.iter() {
                nodes.push(NodeInfo {
                    node: name.clone(),
                    samples: entry.trace.len(),
                    duration_s: entry.trace.duration_s(),
                    energy_j: entry.trace.energy_j(),
                });
            }
        }
        nodes.sort_by(|a, b| a.node.cmp(&b.node));
        let response = ListResponse {
            total_samples: nodes.iter().map(|n| n.samples).sum(),
            total_energy_j: nodes.iter().map(|n| n.energy_j).sum(),
            nodes,
        };
        json_response(200, &response)
    }

    /// `GET /fleet/summary`: snapshots every node into a [`TraceSet`] and
    /// summarizes it on the rayon shim pool (per-node percentile caches in
    /// parallel). Clones the traces — this is the reporting endpoint, not
    /// the hot path.
    fn fleet_summary(&self) -> Response {
        let mut entries: Vec<(String, PowerTrace)> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("shard poisoned");
            for (name, entry) in shard.iter() {
                match entry.trace.materialize() {
                    Ok(t) => entries.push((name.clone(), t)),
                    Err(e) => {
                        return Response::error(
                            500,
                            &format!("materializing trace for `{name}`: {e}"),
                        )
                    }
                }
            }
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let summary = TraceSet::from_entries(entries).summarize();
        json_response(200, &summary)
    }

    /// `POST /evaluate`: scores a measurement suite against the cached
    /// reference through the zero-alloc evaluator, with a pooled scratch.
    fn evaluate(&self, body: &[u8]) -> Response {
        let text = match std::str::from_utf8(body) {
            Ok(t) => t,
            Err(_) => return Response::error(400, "body must be UTF-8 JSON"),
        };
        let value: Value = match serde_json::from_str(text) {
            Ok(v) => v,
            Err(e) => return Response::error(400, &format!("invalid JSON: {e}")),
        };
        let (measurements, weighting, mean) = match parse_evaluate_request(&value) {
            Ok(parts) => parts,
            Err(msg) => return Response::error(400, &msg),
        };

        let mut scratch =
            self.scratch_pool.lock().expect("scratch poisoned").pop().unwrap_or_default();
        let result = self.evaluator.evaluate_into(&measurements, &weighting, mean, &mut scratch);
        let response = match result {
            Ok(tgi) => {
                let response = EvaluateResponse {
                    tgi,
                    reference: self.evaluator.reference().name().to_string(),
                    weighting: weighting.label().to_string(),
                    mean: mean.label().to_string(),
                    benchmarks: measurements.iter().map(|m| m.id().to_string()).collect(),
                    rees: scratch.rees().to_vec(),
                    weights: scratch.weights().to_vec(),
                };
                json_response(200, &response)
            }
            Err(e) => Response::error(400, &format!("evaluation rejected: {e}")),
        };
        self.scratch_pool.lock().expect("scratch poisoned").push(scratch);
        response
    }

    /// Test/oracle accessor: a materialized copy of one node's trace
    /// (cloned from memory, or decoded from the store in `--data-dir`
    /// mode).
    pub fn trace_snapshot(&self, node: &str) -> Option<PowerTrace> {
        self.shard(node)
            .lock()
            .expect("shard poisoned")
            .get(node)
            .and_then(|entry| entry.trace.materialize().ok())
    }

    /// Test/oracle accessor: the lifetime online anomaly counts for one
    /// node's detector.
    pub fn anomaly_counts(&self, node: &str) -> Option<AnomalyCounts> {
        self.shard(node)
            .lock()
            .expect("shard poisoned")
            .get(node)
            .map(|entry| entry.watch.detector.counts())
    }
}

/// Parses the `/evaluate` request body:
///
/// ```json
/// {"measurements": [{"id": "hpl", "gflops": 90.0, "watts": 2900.0, "seconds": 1800.0}],
///  "weighting": "arithmetic|time|energy|power",
///  "mean": "arithmetic|geometric|harmonic"}
/// ```
///
/// `weighting` and `mean` default to `arithmetic`. Every measurement is
/// validated through [`Measurement::new`]'s typed checks; performance is
/// additionally checked here because `Perf::gflops` is a raw constructor.
fn parse_evaluate_request(
    value: &Value,
) -> Result<(Vec<Measurement>, Weighting, MeanKind), String> {
    let list = value
        .get("measurements")
        .ok_or("missing field `measurements`")?
        .as_array()
        .ok_or("`measurements` must be an array")?;
    let mut measurements = Vec::with_capacity(list.len());
    for (i, entry) in list.iter().enumerate() {
        let field = |name: &str| -> Result<f64, String> {
            entry
                .get(name)
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("measurement {i}: missing numeric field `{name}`"))
        };
        let id = entry
            .get("id")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("measurement {i}: missing string field `id`"))?;
        // Performance comes as the `gflops` shorthand or as a generic
        // `perf` + `unit` pair (the reference suite mixes FLOPS and B/s).
        // `Perf::new` (unlike `Perf::gflops`) validates, so every wire
        // value funnels through the checked constructor.
        let perf = match (entry.get("gflops"), entry.get("perf")) {
            (Some(_), Some(_)) => {
                return Err(format!("measurement {i}: give `gflops` or `perf`+`unit`, not both"))
            }
            (Some(_), None) => Perf::new(field("gflops")? * 1e9, PerfUnit::Flops)
                .map_err(|e| format!("measurement {i}: `gflops`: {e}"))?,
            (None, Some(_)) => {
                let unit = match entry.get("unit").map(|u| u.as_str()) {
                    Some(Some("flops")) => PerfUnit::Flops,
                    Some(Some("bytes_per_sec")) => PerfUnit::BytesPerSecond,
                    Some(Some("gups")) => PerfUnit::Gups,
                    Some(Some(other)) => PerfUnit::Custom(other.to_string()),
                    _ => {
                        return Err(format!(
                            "measurement {i}: `perf` needs a string `unit` \
                             (flops|bytes_per_sec|gups|<custom label>)"
                        ))
                    }
                };
                Perf::new(field("perf")?, unit)
                    .map_err(|e| format!("measurement {i}: `perf`: {e}"))?
            }
            (None, None) => {
                return Err(format!("measurement {i}: missing `gflops` or `perf`+`unit`"))
            }
        };
        // `Watts::try_new`/`Seconds::try_new` here rather than the raw
        // constructors: these values are straight off the wire.
        let watts = Watts::try_new(field("watts")?)
            .map_err(|e| format!("measurement {i}: `watts`: {e}"))?;
        let seconds = Seconds::try_new(field("seconds")?)
            .map_err(|e| format!("measurement {i}: `seconds`: {e}"))?;
        let m = Measurement::new(id, perf, watts, seconds)
            .map_err(|e| format!("measurement {i}: {e}"))?;
        measurements.push(m);
    }

    let weighting = match value.get("weighting").map(|v| v.as_str()) {
        None => Weighting::Arithmetic,
        Some(Some("arithmetic")) => Weighting::Arithmetic,
        Some(Some("time")) => Weighting::Time,
        Some(Some("energy")) => Weighting::Energy,
        Some(Some("power")) => Weighting::Power,
        Some(other) => {
            return Err(format!(
                "`weighting` must be one of arithmetic|time|energy|power, got {other:?}"
            ))
        }
    };
    let mean = match value.get("mean").map(|v| v.as_str()) {
        None => MeanKind::Arithmetic,
        Some(Some("arithmetic")) => MeanKind::Arithmetic,
        Some(Some("geometric")) => MeanKind::Geometric,
        Some(Some("harmonic")) => MeanKind::Harmonic,
        Some(other) => {
            return Err(format!(
                "`mean` must be one of arithmetic|geometric|harmonic, got {other:?}"
            ))
        }
    };
    Ok((measurements, weighting, mean))
}
