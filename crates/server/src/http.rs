//! A minimal, strict HTTP/1.1 codec over blocking `std::net` streams.
//!
//! This is a *service* codec, not a general web server: it understands
//! exactly what the TGI endpoints need — request line, headers,
//! `Content-Length` bodies, keep-alive — and rejects everything else
//! loudly. Every limit is enforced while reading, so a hostile or broken
//! peer cannot make the server buffer an unbounded request:
//!
//! * request line and each header line ≤ [`MAX_LINE_BYTES`];
//! * at most [`MAX_HEADERS`] headers;
//! * body ≤ the server's configured `max_body_bytes` (413 on overflow
//!   *before* reading the body, from the declared `Content-Length`);
//! * `Transfer-Encoding: chunked` is not implemented → 501.
//!
//! Parse failures map to typed [`HttpError`]s that the connection loop
//! converts into 4xx/5xx responses; they never panic.

use std::io::{self, BufRead, Write};

/// Longest accepted request/header line, bytes (incl. CRLF).
pub const MAX_LINE_BYTES: usize = 8 * 1024;
/// Most headers accepted per request.
pub const MAX_HEADERS: usize = 64;

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed the connection before sending a request line —
    /// the normal end of a keep-alive session, not an error to report.
    Closed,
    /// Transport error mid-request.
    Io(io::Error),
    /// The request violated the protocol; the detail is safe to echo.
    BadRequest(String),
    /// The declared body exceeds the configured limit.
    BodyTooLarge {
        /// Declared `Content-Length`.
        declared: usize,
        /// Configured ceiling.
        limit: usize,
    },
    /// A protocol feature this codec does not implement (e.g. chunked
    /// transfer encoding).
    NotImplemented(&'static str),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Closed => write!(f, "connection closed"),
            HttpError::Io(e) => write!(f, "I/O error: {e}"),
            HttpError::BadRequest(d) => write!(f, "bad request: {d}"),
            HttpError::BodyTooLarge { declared, limit } => {
                write!(f, "body of {declared} bytes exceeds the {limit}-byte limit")
            }
            HttpError::NotImplemented(what) => write!(f, "not implemented: {what}"),
        }
    }
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

impl HttpError {
    /// The response a connection loop should answer with before closing.
    /// (`Closed`/`Io` sessions are already unwritable; they map to a 400
    /// for completeness.)
    pub fn to_response(&self) -> Response {
        let status = match self {
            HttpError::Closed | HttpError::Io(_) | HttpError::BadRequest(_) => 400,
            HttpError::BodyTooLarge { .. } => 413,
            HttpError::NotImplemented(_) => 501,
        };
        let mut response = Response::error(status, &self.to_string());
        response.close = true;
        response
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Path without the query string (e.g. `/traces/node0/energy`).
    pub path: String,
    /// Decoded `key=value` pairs from the query string, in order.
    pub query: Vec<(String, String)>,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` was given).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value with the given (lower-case) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// First query value with the given key.
    pub fn query_value(&self, key: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange (HTTP/1.1 defaults to keep-alive).
    pub fn wants_close(&self) -> bool {
        self.header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Reads one line (up to CRLF or LF), rejecting lines over the cap.
fn read_line<R: BufRead>(reader: &mut R) -> Result<Option<String>, HttpError> {
    let mut line = Vec::new();
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            // EOF: a clean close only if nothing was read yet.
            if line.is_empty() {
                return Ok(None);
            }
            return Err(HttpError::BadRequest("truncated line".into()));
        }
        let (consumed, done) = match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                line.extend_from_slice(&buf[..pos]);
                (pos + 1, true)
            }
            None => {
                line.extend_from_slice(buf);
                (buf.len(), false)
            }
        };
        reader.consume(consumed);
        if line.len() > MAX_LINE_BYTES {
            return Err(HttpError::BadRequest(format!("line exceeds {MAX_LINE_BYTES} bytes")));
        }
        if done {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return Ok(Some(
                String::from_utf8(line).map_err(|_| {
                    HttpError::BadRequest("header bytes are not valid UTF-8".into())
                })?,
            ));
        }
    }
}

/// Decodes `%xx` escapes and `+` in a query component.
fn url_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' if i + 2 < bytes.len() => {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).ok();
                match hex.and_then(|h| u8::from_str_radix(h, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 2;
                    }
                    None => out.push(b'%'),
                }
            }
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Reads and validates one request from `reader`.
///
/// `max_body_bytes` caps the accepted `Content-Length`; the body is only
/// read once the declaration passes the check, so an oversized upload is
/// rejected without buffering it.
pub fn read_request<R: BufRead>(
    reader: &mut R,
    max_body_bytes: usize,
) -> Result<Request, HttpError> {
    let request_line = match read_line(reader)? {
        Some(line) => line,
        None => return Err(HttpError::Closed),
    };
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("empty request line".into()))?
        .to_ascii_uppercase();
    let target =
        parts.next().ok_or_else(|| HttpError::BadRequest("request line has no target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("request line has no HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!("unsupported version `{version}`")));
    }
    if !target.starts_with('/') {
        return Err(HttpError::BadRequest(format!("target must be absolute, got `{target}`")));
    }

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let query = raw_query
        .map(|q| {
            q.split('&')
                .filter(|kv| !kv.is_empty())
                .map(|kv| match kv.split_once('=') {
                    Some((k, v)) => (url_decode(k), url_decode(v)),
                    None => (url_decode(kv), String::new()),
                })
                .collect()
        })
        .unwrap_or_default();

    let mut headers = Vec::new();
    loop {
        let line = match read_line(reader)? {
            Some(line) => line,
            None => return Err(HttpError::BadRequest("connection closed mid-headers".into())),
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::BadRequest(format!("more than {MAX_HEADERS} headers")));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadRequest(format!("malformed header `{line}`")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut request =
        Request { method, path: url_decode(raw_path), query, headers, body: Vec::new() };

    if request.header("transfer-encoding").is_some_and(|v| !v.eq_ignore_ascii_case("identity")) {
        return Err(HttpError::NotImplemented("transfer-encoding"));
    }
    if let Some(len) = request.header("content-length") {
        let declared: usize = len
            .parse()
            .map_err(|_| HttpError::BadRequest(format!("invalid content-length `{len}`")))?;
        if declared > max_body_bytes {
            return Err(HttpError::BodyTooLarge { declared, limit: max_body_bytes });
        }
        let mut body = vec![0u8; declared];
        io::Read::read_exact(reader, &mut body)?;
        request.body = body;
    }
    Ok(request)
}

/// One response, written with `Content-Length` framing.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
    /// The body bytes.
    pub body: String,
    /// Whether to close the connection after writing.
    pub close: bool,
    /// When set, a `Retry-After: <seconds>` header is emitted — the
    /// standard backoff hint on `429`/`503` answers.
    pub retry_after: Option<u64>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: String) -> Self {
        Response { status, content_type: "application/json", body, close: false, retry_after: None }
    }

    /// A plain-text response with the given status.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/plain; version=0.0.4",
            body: body.into(),
            close: false,
            retry_after: None,
        }
    }

    /// Attaches a `Retry-After` hint (seconds).
    pub fn with_retry_after(mut self, seconds: u64) -> Self {
        self.retry_after = Some(seconds);
        self
    }

    /// A JSON error envelope: `{"error": "..."}`.
    pub fn error(status: u16, message: &str) -> Self {
        let escaped: String =
            serde_json::to_string(&message.to_string()).unwrap_or_else(|_| "\"error\"".to_string());
        Response::json(status, format!("{{\"error\":{escaped}}}"))
    }

    /// The standard reason phrase for this response's status code.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            501 => "Not Implemented",
            503 => "Service Unavailable",
            _ => "",
        }
    }

    /// Writes the response with explicit framing headers.
    pub fn write_to<W: Write>(&self, writer: &mut W) -> io::Result<()> {
        write!(
            writer,
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len(),
            if self.close { "close" } else { "keep-alive" },
        )?;
        if let Some(seconds) = self.retry_after {
            write!(writer, "retry-after: {seconds}\r\n")?;
        }
        writer.write_all(b"\r\n")?;
        writer.write_all(self.body.as_bytes())?;
        writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        read_request(&mut raw.as_bytes(), 1024)
    }

    #[test]
    fn parses_get_with_query() {
        let r = parse("GET /traces/node0/energy?from=1.5&to=9 HTTP/1.1\r\nHost: x\r\n\r\n")
            .expect("valid");
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/traces/node0/energy");
        assert_eq!(r.query_value("from"), Some("1.5"));
        assert_eq!(r.query_value("to"), Some("9"));
        assert_eq!(r.header("host"), Some("x"));
        assert!(!r.wants_close());
    }

    #[test]
    fn parses_post_with_body() {
        let r = parse("POST /evaluate HTTP/1.1\r\nContent-Length: 4\r\n\r\n{\"a\"").expect("valid");
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"{\"a\"");
    }

    #[test]
    fn clean_close_is_distinguished_from_garbage() {
        assert!(matches!(parse(""), Err(HttpError::Closed)));
        assert!(matches!(parse("garbage\r\n\r\n"), Err(HttpError::BadRequest(_))));
        assert!(matches!(parse("GET\r\n\r\n"), Err(HttpError::BadRequest(_))));
        assert!(matches!(parse("GET /x SPDY/99\r\n\r\n"), Err(HttpError::BadRequest(_))));
    }

    #[test]
    fn oversized_body_is_rejected_from_the_declaration() {
        let err = parse("POST /evaluate HTTP/1.1\r\nContent-Length: 999999\r\n\r\n").unwrap_err();
        assert!(matches!(err, HttpError::BodyTooLarge { declared: 999999, limit: 1024 }));
    }

    #[test]
    fn invalid_content_length_is_a_bad_request() {
        assert!(matches!(
            parse("POST /evaluate HTTP/1.1\r\nContent-Length: banana\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn chunked_encoding_is_not_implemented() {
        assert!(matches!(
            parse("POST /evaluate HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpError::NotImplemented(_))
        ));
    }

    #[test]
    fn header_flood_is_bounded() {
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..100 {
            raw.push_str(&format!("x-h{i}: v\r\n"));
        }
        raw.push_str("\r\n");
        assert!(matches!(parse(&raw), Err(HttpError::BadRequest(_))));
    }

    #[test]
    fn long_line_is_bounded() {
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_LINE_BYTES + 10));
        assert!(matches!(parse(&raw), Err(HttpError::BadRequest(_))));
    }

    #[test]
    fn url_decoding_handles_escapes() {
        assert_eq!(url_decode("a%20b+c"), "a b c");
        assert_eq!(url_decode("100%"), "100%");
        assert_eq!(url_decode("%zz"), "%zz");
    }

    #[test]
    fn response_writes_framing() {
        let mut out = Vec::new();
        Response::json(200, "{}".to_string()).write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-length: 2"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");
        assert!(!text.contains("retry-after"), "{text}");
    }

    #[test]
    fn retry_after_header_is_emitted_when_set() {
        let mut out = Vec::new();
        Response::error(429, "overloaded").with_retry_after(2).write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"), "{text}");
        assert!(text.contains("retry-after: 2\r\n"), "{text}");
        // The hint stays inside the header block, before the blank line.
        let header_block = text.split("\r\n\r\n").next().unwrap();
        assert!(header_block.contains("retry-after: 2"), "{text}");
    }
}
