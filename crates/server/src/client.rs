//! A tiny blocking HTTP/1.1 client over `std::net`, shared by the load
//! generator, the benchmarks, and the integration tests.
//!
//! One [`Client`] is one keep-alive connection; requests run strictly in
//! sequence. Responses are fully buffered (they are small JSON bodies).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Errors a request can surface.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, timeout).
    Io(std::io::Error),
    /// The server's response could not be parsed.
    BadResponse(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "I/O error: {e}"),
            ClientError::BadResponse(d) => write!(f, "bad response: {d}"),
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A buffered response.
#[derive(Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Body bytes as text.
    pub body: String,
    /// Whether the server asked to close the connection.
    pub close: bool,
    /// The `Retry-After` backoff hint (seconds), when the server sent one.
    pub retry_after: Option<u64>,
}

/// One keep-alive connection to a server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    addr: String,
}

impl Client {
    /// Connects with a read/write timeout.
    pub fn connect(addr: &str, timeout: Duration) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        // Small request frames; Nagle would stall the ping-pong.
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer, addr: addr.to_string() })
    }

    /// Sends one request and reads the response. `body` is sent with a
    /// `Content-Length` header; pass `""` for body-less methods.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
    ) -> Result<ClientResponse, ClientError> {
        write!(
            self.writer,
            "{method} {path} HTTP/1.1\r\nhost: {}\r\ncontent-length: {}\r\n\r\n",
            self.addr,
            body.len(),
        )?;
        self.writer.write_all(body.as_bytes())?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_line(&mut self) -> Result<String, ClientError> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::BadResponse("connection closed mid-response".into()));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    fn read_response(&mut self) -> Result<ClientResponse, ClientError> {
        let status_line = self.read_line()?;
        let status: u16 =
            status_line.split_whitespace().nth(1).and_then(|s| s.parse().ok()).ok_or_else(
                || ClientError::BadResponse(format!("bad status line `{status_line}`")),
            )?;
        let mut content_length = 0usize;
        let mut close = false;
        let mut retry_after = None;
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                let name = name.trim().to_ascii_lowercase();
                let value = value.trim();
                if name == "content-length" {
                    content_length = value.parse().map_err(|_| {
                        ClientError::BadResponse(format!("bad content-length `{value}`"))
                    })?;
                } else if name == "connection" {
                    close = value.eq_ignore_ascii_case("close");
                } else if name == "retry-after" {
                    retry_after = value.parse().ok();
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        let body = String::from_utf8(body)
            .map_err(|_| ClientError::BadResponse("body is not UTF-8".into()))?;
        Ok(ClientResponse { status, body, close, retry_after })
    }
}
