//! Per-endpoint latency SLOs with burn-rate windows.
//!
//! Every served request lands in exactly one [`Endpoint`] class. Each
//! class keeps a log-linear [`QuantileHistogram`] (relative-error-bounded
//! p50/p99/p999, replacing the old fixed-bucket request histogram), a
//! pair of lifetime good/total counters against the class objective, and
//! a 600-slot per-second ring so burn rates over the last 1 and 10
//! minutes come from real wall-clock windows, not lifetime averages.
//!
//! The burn rate follows the standard SRE definition: with objective `o`
//! (fraction of requests that must finish under the latency threshold),
//! `burn = bad_fraction / (1 - o)`. Burn 1.0 means the error budget is
//! being spent exactly as fast as it accrues; above 1.0 the endpoint is
//! breaching.

use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{SystemTime, UNIX_EPOCH};
use tgi_telemetry::export::{prom_label_value, prom_name};
use tgi_telemetry::QuantileHistogram;

/// Seconds of per-second history the burn-rate ring retains (covers the
/// 10-minute window exactly).
const RING_SECONDS: usize = 600;

/// The request classes tracked independently. `Other` absorbs 404s and
/// unknown paths so noise cannot pollute a real endpoint's quantiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `GET /healthz`
    Healthz,
    /// `GET /metrics`
    Metrics,
    /// `GET /traces`
    ListTraces,
    /// `POST /traces/{node}`
    Ingest,
    /// `GET /traces/{node}/energy`
    Energy,
    /// `GET /traces/{node}/anomalies`
    Anomalies,
    /// `GET /fleet/summary`
    FleetSummary,
    /// `POST /evaluate`
    Evaluate,
    /// `GET /debug/flight`
    DebugFlight,
    /// Everything else (unknown paths, wrong verbs).
    Other,
}

impl Endpoint {
    const ALL: [Endpoint; 10] = [
        Endpoint::Healthz,
        Endpoint::Metrics,
        Endpoint::ListTraces,
        Endpoint::Ingest,
        Endpoint::Energy,
        Endpoint::Anomalies,
        Endpoint::FleetSummary,
        Endpoint::Evaluate,
        Endpoint::DebugFlight,
        Endpoint::Other,
    ];

    /// Stable label used in metrics and health output.
    pub fn label(self) -> &'static str {
        match self {
            Endpoint::Healthz => "healthz",
            Endpoint::Metrics => "metrics",
            Endpoint::ListTraces => "list_traces",
            Endpoint::Ingest => "ingest",
            Endpoint::Energy => "energy",
            Endpoint::Anomalies => "anomalies",
            Endpoint::FleetSummary => "fleet_summary",
            Endpoint::Evaluate => "evaluate",
            Endpoint::DebugFlight => "debug_flight",
            Endpoint::Other => "other",
        }
    }

    fn index(self) -> usize {
        Endpoint::ALL.iter().position(|e| *e == self).expect("endpoint in ALL")
    }
}

/// Classifies a parsed request into its endpoint class. Mirrors the
/// router in [`crate::ServerState::handle`]; anything the router would
/// 404 or 405 lands in [`Endpoint::Other`].
pub fn classify(method: &str, path: &str) -> Endpoint {
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match (method, segments.as_slice()) {
        ("GET", ["healthz"]) => Endpoint::Healthz,
        ("GET", ["metrics"]) => Endpoint::Metrics,
        ("GET", ["traces"]) => Endpoint::ListTraces,
        ("POST", ["traces", _]) => Endpoint::Ingest,
        ("GET", ["traces", _, "energy"]) => Endpoint::Energy,
        ("GET", ["traces", _, "anomalies"]) => Endpoint::Anomalies,
        ("GET", ["fleet", "summary"]) => Endpoint::FleetSummary,
        ("POST", ["evaluate"]) => Endpoint::Evaluate,
        ("GET", ["debug", "flight"]) => Endpoint::DebugFlight,
        _ => Endpoint::Other,
    }
}

/// One wall-clock second of good/bad counts.
#[derive(Debug, Clone, Copy, Default)]
struct SecondCell {
    epoch_s: u64,
    good: u64,
    bad: u64,
}

/// The SLO state for one endpoint class.
struct EndpointSlo {
    endpoint: Endpoint,
    /// Fraction of requests that must land under the threshold.
    objective: f64,
    /// Latency threshold, seconds.
    threshold_s: f64,
    latency: QuantileHistogram,
    good: AtomicU64,
    total: AtomicU64,
    /// Per-second ring. Slot `epoch_s % RING_SECONDS`; a slot whose
    /// stored epoch is stale is reset in place on first write of the new
    /// second. Lock hold times are a few loads/stores, and contention is
    /// limited to requests landing in the same class in the same second.
    ring: Vec<Mutex<SecondCell>>,
}

impl EndpointSlo {
    fn new(endpoint: Endpoint, objective: f64, threshold_s: f64) -> Self {
        EndpointSlo {
            endpoint,
            objective,
            threshold_s,
            // 1% relative error: p99 of a 1ms endpoint is exact to ~10µs.
            latency: QuantileHistogram::new(0.01),
            good: AtomicU64::new(0),
            total: AtomicU64::new(0),
            ring: (0..RING_SECONDS).map(|_| Mutex::new(SecondCell::default())).collect(),
        }
    }

    fn record(&self, latency_s: f64, epoch_s: u64) {
        self.latency.observe(latency_s);
        let good = latency_s <= self.threshold_s;
        self.total.fetch_add(1, Ordering::Relaxed);
        if good {
            self.good.fetch_add(1, Ordering::Relaxed);
        }
        let slot = (epoch_s as usize) % RING_SECONDS;
        let mut cell = self.ring[slot].lock().unwrap_or_else(PoisonError::into_inner);
        if cell.epoch_s != epoch_s {
            *cell = SecondCell { epoch_s, good: 0, bad: 0 };
        }
        if good {
            cell.good += 1;
        } else {
            cell.bad += 1;
        }
    }

    /// `(good, total)` over the trailing `window_s` seconds ending at
    /// `now_s` (inclusive).
    fn window_counts(&self, now_s: u64, window_s: u64) -> (u64, u64) {
        let oldest = now_s.saturating_sub(window_s.saturating_sub(1));
        let mut good = 0u64;
        let mut total = 0u64;
        for cell in &self.ring {
            let cell = cell.lock().unwrap_or_else(PoisonError::into_inner);
            if cell.epoch_s >= oldest && cell.epoch_s <= now_s {
                good += cell.good;
                total += cell.good + cell.bad;
            }
        }
        (good, total)
    }

    fn burn_rate(&self, now_s: u64, window_s: u64) -> f64 {
        let (good, total) = self.window_counts(now_s, window_s);
        if total == 0 {
            return 0.0;
        }
        let bad_fraction = (total - good) as f64 / total as f64;
        bad_fraction / (1.0 - self.objective)
    }
}

/// A point-in-time view of one endpoint's SLO state, as reported by
/// `/healthz`.
#[derive(Debug, Clone, Serialize)]
pub struct EndpointSloStatus {
    /// Endpoint label (`ingest`, `evaluate`, …).
    pub endpoint: &'static str,
    /// Lifetime requests observed.
    pub total: u64,
    /// Lifetime requests under the threshold.
    pub good: u64,
    /// Latency objective: fraction that must land under the threshold.
    pub objective: f64,
    /// Latency threshold, seconds.
    pub threshold_s: f64,
    /// Median latency, seconds (0 when nothing was observed).
    pub p50_s: f64,
    /// 99th-percentile latency, seconds.
    pub p99_s: f64,
    /// 99.9th-percentile latency, seconds.
    pub p999_s: f64,
    /// Burn rate over the trailing minute.
    pub burn_1m: f64,
    /// Burn rate over the trailing ten minutes.
    pub burn_10m: f64,
    /// Whether the fast (1-minute) window is burning budget faster than
    /// it accrues.
    pub breaching: bool,
}

/// Per-endpoint latency SLOs for a running server.
pub struct SloTracker {
    endpoints: Vec<EndpointSlo>,
}

impl Default for SloTracker {
    fn default() -> Self {
        SloTracker::new(0.99, 0.25)
    }
}

impl SloTracker {
    /// Builds a tracker where every endpoint shares one objective
    /// (`objective` of requests under `threshold_s` seconds).
    pub fn new(objective: f64, threshold_s: f64) -> Self {
        assert!((0.0..1.0).contains(&objective), "objective must be in [0, 1)");
        assert!(threshold_s > 0.0, "threshold must be positive");
        SloTracker {
            endpoints: Endpoint::ALL
                .iter()
                .map(|&e| EndpointSlo::new(e, objective, threshold_s))
                .collect(),
        }
    }

    /// Records one served request.
    pub fn record(&self, endpoint: Endpoint, latency_s: f64) {
        self.record_at(endpoint, latency_s, epoch_seconds());
    }

    /// Records with an explicit wall-clock second (tests drive windows
    /// deterministically through this).
    pub fn record_at(&self, endpoint: Endpoint, latency_s: f64, epoch_s: u64) {
        self.endpoints[endpoint.index()].record(latency_s, epoch_s);
    }

    /// Burn rate for one endpoint over the trailing `window_s` seconds.
    pub fn burn_rate(&self, endpoint: Endpoint, window_s: u64) -> f64 {
        self.burn_rate_at(endpoint, window_s, epoch_seconds())
    }

    /// Burn rate with an explicit "now" second.
    pub fn burn_rate_at(&self, endpoint: Endpoint, window_s: u64, now_s: u64) -> f64 {
        self.endpoints[endpoint.index()].burn_rate(now_s, window_s.min(RING_SECONDS as u64))
    }

    /// Status rows for every endpoint that has seen traffic.
    pub fn status(&self) -> Vec<EndpointSloStatus> {
        let now_s = epoch_seconds();
        self.endpoints
            .iter()
            .filter(|slo| slo.total.load(Ordering::Relaxed) > 0)
            .map(|slo| {
                let burn_1m = slo.burn_rate(now_s, 60);
                EndpointSloStatus {
                    endpoint: slo.endpoint.label(),
                    total: slo.total.load(Ordering::Relaxed),
                    good: slo.good.load(Ordering::Relaxed),
                    objective: slo.objective,
                    threshold_s: slo.threshold_s,
                    p50_s: slo.latency.quantile(0.50).unwrap_or(0.0),
                    p99_s: slo.latency.quantile(0.99).unwrap_or(0.0),
                    p999_s: slo.latency.quantile(0.999).unwrap_or(0.0),
                    burn_1m,
                    burn_10m: slo.burn_rate(now_s, 600),
                    breaching: burn_1m > 1.0,
                }
            })
            .collect()
    }

    /// Number of endpoints whose 1-minute burn rate exceeds 1.0.
    pub fn breaching(&self) -> usize {
        let now_s = epoch_seconds();
        self.endpoints
            .iter()
            .filter(|slo| slo.total.load(Ordering::Relaxed) > 0)
            .filter(|slo| slo.burn_rate(now_s, 60) > 1.0)
            .count()
    }

    /// Appends the SLO metric families to a Prometheus exposition body:
    /// a latency summary (quantiles from the log-linear histogram) and
    /// the good/total counters plus windowed burn-rate gauges, all
    /// labeled by endpoint.
    pub fn prometheus_append(&self, out: &mut String) {
        let now_s = epoch_seconds();
        let latency = prom_name("tgi_server_request_latency_seconds");
        out.push_str(&format!(
            "# HELP {latency} Request latency by endpoint \
             (log-linear sketch, 1% relative error).\n"
        ));
        out.push_str(&format!("# TYPE {latency} summary\n"));
        for slo in &self.endpoints {
            if slo.latency.count() == 0 {
                continue;
            }
            let label = prom_label_value(slo.endpoint.label());
            for (q, tag) in [(0.50, "0.5"), (0.99, "0.99"), (0.999, "0.999")] {
                let v = slo.latency.quantile(q).unwrap_or(0.0);
                out.push_str(&format!(
                    "{latency}{{endpoint=\"{label}\",quantile=\"{tag}\"}} {v}\n"
                ));
            }
            out.push_str(&format!("{latency}_sum{{endpoint=\"{label}\"}} {}\n", slo.latency.sum()));
            out.push_str(&format!(
                "{latency}_count{{endpoint=\"{label}\"}} {}\n",
                slo.latency.count()
            ));
        }

        let good = prom_name("tgi_server_slo_good_total");
        let total = prom_name("tgi_server_slo_requests_total");
        let burn = prom_name("tgi_server_slo_burn_rate");
        out.push_str(&format!(
            "# HELP {good} Requests under the endpoint latency threshold.\n# TYPE {good} counter\n"
        ));
        for slo in &self.endpoints {
            if slo.total.load(Ordering::Relaxed) == 0 {
                continue;
            }
            let label = prom_label_value(slo.endpoint.label());
            out.push_str(&format!(
                "{good}{{endpoint=\"{label}\"}} {}\n",
                slo.good.load(Ordering::Relaxed)
            ));
        }
        out.push_str(&format!(
            "# HELP {total} Requests observed against the endpoint SLO.\n\
             # TYPE {total} counter\n"
        ));
        for slo in &self.endpoints {
            if slo.total.load(Ordering::Relaxed) == 0 {
                continue;
            }
            let label = prom_label_value(slo.endpoint.label());
            out.push_str(&format!(
                "{total}{{endpoint=\"{label}\"}} {}\n",
                slo.total.load(Ordering::Relaxed)
            ));
        }
        out.push_str(&format!(
            "# HELP {burn} Error-budget burn rate over the trailing window \
             (1.0 = burning exactly at budget).\n# TYPE {burn} gauge\n"
        ));
        for slo in &self.endpoints {
            if slo.total.load(Ordering::Relaxed) == 0 {
                continue;
            }
            let label = prom_label_value(slo.endpoint.label());
            for (window, tag) in [(60u64, "1m"), (600, "10m")] {
                out.push_str(&format!(
                    "{burn}{{endpoint=\"{label}\",window=\"{tag}\"}} {}\n",
                    slo.burn_rate(now_s, window)
                ));
            }
        }
    }
}

/// Whole seconds since the Unix epoch (0 if the clock is before it).
fn epoch_seconds() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_mirrors_the_router() {
        assert_eq!(classify("GET", "/healthz"), Endpoint::Healthz);
        assert_eq!(classify("GET", "/metrics"), Endpoint::Metrics);
        assert_eq!(classify("GET", "/traces"), Endpoint::ListTraces);
        assert_eq!(classify("POST", "/traces/node-7"), Endpoint::Ingest);
        assert_eq!(classify("GET", "/traces/node-7/energy"), Endpoint::Energy);
        assert_eq!(classify("GET", "/traces/node-7/anomalies"), Endpoint::Anomalies);
        assert_eq!(classify("GET", "/fleet/summary"), Endpoint::FleetSummary);
        assert_eq!(classify("POST", "/evaluate"), Endpoint::Evaluate);
        assert_eq!(classify("GET", "/debug/flight"), Endpoint::DebugFlight);
        assert_eq!(classify("DELETE", "/traces/node-7"), Endpoint::Other);
        assert_eq!(classify("GET", "/nope"), Endpoint::Other);
    }

    #[test]
    fn burn_rate_windows_are_wall_clock_scoped() {
        let slo = SloTracker::new(0.99, 0.25);
        let t0 = 1_000_000u64;
        // 99 fast + 1 slow in the first second: bad fraction exactly the
        // error budget → burn 1.0 over any window containing it.
        for _ in 0..99 {
            slo.record_at(Endpoint::Ingest, 0.001, t0);
        }
        slo.record_at(Endpoint::Ingest, 0.5, t0);
        assert!((slo.burn_rate_at(Endpoint::Ingest, 60, t0) - 1.0).abs() < 1e-9);
        // 5 minutes later the 1-minute window is clean, the 10-minute one
        // still sees the breach.
        let t1 = t0 + 300;
        slo.record_at(Endpoint::Ingest, 0.001, t1);
        assert_eq!(slo.burn_rate_at(Endpoint::Ingest, 60, t1), 0.0);
        assert!(slo.burn_rate_at(Endpoint::Ingest, 600, t1) > 0.9);
        // Other endpoints are untouched.
        assert_eq!(slo.burn_rate_at(Endpoint::Evaluate, 600, t1), 0.0);
    }

    #[test]
    fn status_reports_quantiles_and_breaches() {
        let slo = SloTracker::new(0.9, 0.01);
        let now = epoch_seconds();
        for i in 0..100 {
            // Half under the 10ms threshold, half far over it.
            let latency = if i % 2 == 0 { 0.001 } else { 0.1 };
            slo.record_at(Endpoint::Evaluate, latency, now);
        }
        let status = slo.status();
        assert_eq!(status.len(), 1);
        let row = &status[0];
        assert_eq!(row.endpoint, "evaluate");
        assert_eq!(row.total, 100);
        assert_eq!(row.good, 50);
        assert!(row.p99_s > 0.09 && row.p99_s < 0.11, "{row:?}");
        assert!(row.breaching, "bad fraction 0.5 burns 5x the 0.1 budget: {row:?}");
        assert_eq!(slo.breaching(), 1);

        let mut out = String::new();
        slo.prometheus_append(&mut out);
        assert!(
            out.contains(
                "tgi_server_request_latency_seconds{endpoint=\"evaluate\",quantile=\"0.99\"}"
            ),
            "{out}"
        );
        assert!(out.contains("tgi_server_slo_requests_total{endpoint=\"evaluate\"} 100"), "{out}");
        assert!(out.contains("window=\"1m\""), "{out}");
    }
}
