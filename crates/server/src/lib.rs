//! `tgi-server` — a std-only networked evaluation and metrics service for
//! The Green Index pipeline.
//!
//! The service puts the validated ingest boundaries on the wire: power
//! traces stream in over `POST /traces/{node}` (sharded storage, bounded
//! backpressure), indexed energy windows answer in O(log n) over
//! `GET /traces/{node}/energy`, measurement suites score through the
//! cached zero-alloc evaluator at `POST /evaluate`, and `GET /metrics`
//! exposes the tgi-telemetry registry in Prometheus text format.
//!
//! Everything runs on `std::net` + `std::thread` — no async runtime —
//! with the same compat-shim discipline as the rest of the workspace:
//! heavy aggregate endpoints (fleet summaries) borrow the rayon pool,
//! everything else is plain blocking I/O with explicit limits.
//!
//! ```no_run
//! use tgi_server::{Server, ServerConfig};
//!
//! let config = ServerConfig { addr: "127.0.0.1:7070".into(), ..Default::default() };
//! let server = Server::start(config, tgi_harness::experiments::system_g_reference()).unwrap();
//! println!("listening on {}", server.addr());
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod load;
pub mod queue;
pub mod server;
pub mod slo;
pub mod state;

pub use client::{Client, ClientError, ClientResponse};
pub use load::{LoadConfig, LoadReport};
pub use server::{Server, ServerStats};
pub use slo::{Endpoint, EndpointSloStatus, SloTracker};
pub use state::{ServerConfig, ServerState};
