//! `tgi-server` binary: serves the TGI evaluation + metrics API.
//!
//! CLI convention (workspace-wide): `--help` is an answer — usage on
//! stdout, exit 0. Parse errors print usage on stderr and exit 2. Runtime
//! failures report on stderr and exit 1; nothing panics.

use tgi_server::{Server, ServerConfig};

const USAGE: &str = "\
usage: tgi-server [--addr HOST:PORT] [--workers N] [--shards N]
                  [--queue N] [--data-dir PATH] [--duration SECONDS]
                  [--flight-recorder N] [--no-flight-recorder] [--help]

Serves the TGI evaluation + metrics API over HTTP/1.1 (std::net).

options:
  --addr HOST:PORT    listen address             (default 127.0.0.1:7070)
  --workers N         worker threads             (default: rayon pool width)
  --shards N          trace shards               (default 16)
  --queue N           connection queue capacity  (default 1024)
  --data-dir PATH     persist traces to compressed on-disk stores under
                      PATH (one directory per node); existing stores are
                      recovered on startup    (default: in-memory only)
  --duration SECONDS  serve for a fixed time, then drain and exit
                      (default: serve until killed)
  --flight-recorder N per-thread flight-recorder ring capacity, spans
                      (default 4096)
  --no-flight-recorder
                      disable the always-on flight recorder
  -h, --help          print this help

endpoints:
  POST /traces/{node}             ingest a validated sample batch
  GET  /traces                    list nodes
  GET  /traces/{node}/energy      indexed energy window (?from=&to=)
  GET  /traces/{node}/anomalies   post-hoc anomaly scan (?from=&to=)
  GET  /fleet/summary             parallel fleet statistics
  POST /evaluate                  score a measurement suite (TGI)
  GET  /metrics                   Prometheus exposition (+ SLO burn rates)
  GET  /debug/flight              flight-recorder dump (Chrome trace JSON)
  GET  /healthz                   liveness probe (store/anomaly/SLO status)
";

fn parse_error(msg: &str) -> ! {
    eprintln!("tgi-server: {msg}\n{USAGE}");
    std::process::exit(2);
}

struct Args {
    config: ServerConfig,
    duration: Option<f64>,
}

fn parse_args() -> Args {
    let mut config = ServerConfig {
        addr: "127.0.0.1:7070".to_string(),
        // The binary keeps the flight recorder on by default: ~4096
        // spans/thread of bounded memory buys a crash/overload black box
        // (`/debug/flight`, panic hook, 429-storm dumps).
        flight_recorder_capacity: Some(4096),
        ..ServerConfig::default()
    };
    let mut duration = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value_of = |flag: &str| -> String {
            args.next().unwrap_or_else(|| parse_error(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            "--addr" => config.addr = value_of("--addr"),
            "--workers" => {
                config.workers = parse_count("--workers", &value_of("--workers"));
            }
            "--shards" => {
                config.shards = parse_count("--shards", &value_of("--shards"));
            }
            "--queue" => {
                config.queue_capacity = parse_count("--queue", &value_of("--queue"));
            }
            "--data-dir" => {
                config.data_dir = Some(std::path::PathBuf::from(value_of("--data-dir")));
            }
            "--flight-recorder" => {
                let n = parse_count("--flight-recorder", &value_of("--flight-recorder"));
                config.flight_recorder_capacity = Some(n);
            }
            "--no-flight-recorder" => config.flight_recorder_capacity = None,
            "--duration" => {
                let raw = value_of("--duration");
                match raw.parse::<f64>() {
                    Ok(v) if v.is_finite() && v > 0.0 => duration = Some(v),
                    _ => parse_error(&format!("--duration must be a positive number, got `{raw}`")),
                }
            }
            other => parse_error(&format!("unknown argument `{other}`")),
        }
    }
    Args { config, duration }
}

fn parse_count(flag: &str, raw: &str) -> usize {
    match raw.parse::<usize>() {
        Ok(v) if v > 0 => v,
        _ => parse_error(&format!("{flag} must be a positive integer, got `{raw}`")),
    }
}

fn main() {
    let args = parse_args();
    // Install the global collector so `/metrics` reports live counters and
    // request spans are recorded (no-op when built without telemetry).
    tgi_telemetry::install();
    // A panicking server leaves its last moments on disk: the hook dumps
    // the flight recorder before unwinding.
    if args.config.flight_recorder_capacity.is_some() {
        tgi_telemetry::recorder::install_panic_hook(
            std::env::temp_dir()
                .join(format!("tgi_server_flight_panic_{}.json", std::process::id())),
        );
    }
    let reference = tgi_harness::experiments::system_g_reference();
    let mut server = match Server::start(args.config, reference) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("tgi-server: failed to start: {e}");
            std::process::exit(1);
        }
    };
    println!("tgi-server listening on {}", server.addr());
    match args.duration {
        Some(seconds) => {
            std::thread::sleep(std::time::Duration::from_secs_f64(seconds));
            println!("tgi-server: duration elapsed, draining");
            server.shutdown();
            let stats = server.stats();
            println!(
                "tgi-server: served {} requests ({} connections accepted, {} rejected)",
                stats.served.load(std::sync::atomic::Ordering::Relaxed),
                stats.accepted.load(std::sync::atomic::Ordering::Relaxed),
                stats.rejected.load(std::sync::atomic::Ordering::Relaxed),
            );
        }
        None => loop {
            std::thread::sleep(std::time::Duration::from_secs(60));
            // Span events buffer per thread until drained; discard them
            // periodically so a long-running server stays bounded (the
            // /metrics registry is separate and unaffected).
            let _ = tgi_telemetry::drain();
        },
    }
}
