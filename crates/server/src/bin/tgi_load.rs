//! `tgi-load` binary: drives a mixed ingest/query/evaluate workload at a
//! running `tgi-server` and prints a JSON latency report.
//!
//! Same CLI convention as the rest of the workspace: `--help` → stdout,
//! exit 0; parse errors → usage on stderr, exit 2; runtime failures →
//! stderr, exit 1.

use tgi_server::{load, LoadConfig};

const USAGE: &str = "\
usage: tgi-load [--addr HOST:PORT] [--clients N] [--requests N]
                [--batch N] [--help]

Drives concurrent load at a tgi-server and reports rps + latency
percentiles as JSON on stdout.

options:
  --addr HOST:PORT  server address              (default 127.0.0.1:7070)
  --clients N       concurrent connections      (default 1000)
  --requests N      requests per client         (default 20)
  --batch N         samples per ingest batch    (default 32)
  -h, --help        print this help
";

fn parse_error(msg: &str) -> ! {
    eprintln!("tgi-load: {msg}\n{USAGE}");
    std::process::exit(2);
}

fn parse_count(flag: &str, raw: &str) -> usize {
    match raw.parse::<usize>() {
        Ok(v) if v > 0 => v,
        _ => parse_error(&format!("{flag} must be a positive integer, got `{raw}`")),
    }
}

fn parse_args() -> LoadConfig {
    let mut config = LoadConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value_of = |flag: &str| -> String {
            args.next().unwrap_or_else(|| parse_error(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            "--addr" => config.addr = value_of("--addr"),
            "--clients" => config.clients = parse_count("--clients", &value_of("--clients")),
            "--requests" => {
                config.requests_per_client = parse_count("--requests", &value_of("--requests"));
            }
            "--batch" => config.batch_samples = parse_count("--batch", &value_of("--batch")),
            other => parse_error(&format!("unknown argument `{other}`")),
        }
    }
    config
}

fn main() {
    let config = parse_args();
    let report = load::run(&config);
    match serde_json::to_string_pretty(&report) {
        Ok(json) => println!("{json}"),
        Err(e) => {
            eprintln!("tgi-load: failed to serialize report: {e}");
            std::process::exit(1);
        }
    }
    if report.ok == 0 {
        eprintln!("tgi-load: no requests succeeded — is the server up at {}?", config.addr);
        std::process::exit(1);
    }
}
