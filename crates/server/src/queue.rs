//! A bounded MPMC queue of accepted connections — the server's
//! backpressure point.
//!
//! The acceptor `try_push`es; when the queue is full the connection is
//! rejected immediately with `429 Too Many Requests` instead of queueing
//! unbounded work. Workers `pop` (blocking) and drain whatever is left
//! after [`BoundedQueue::close`], so graceful shutdown finishes every
//! connection that was accepted before the signal.
//!
//! Std-only (`Mutex` + `Condvar`), matching the `compat/` shim idiom: the
//! crossbeam shim's channel has no non-blocking send, and backpressure
//! *requires* one.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded FIFO usable from any number of producer and consumer threads.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

/// Why a `try_push` was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the item is handed back for the caller's
    /// overload response.
    Full(T),
    /// The queue has been closed; no new work is accepted.
    Closed(T),
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner { items: VecDeque::new(), closed: false }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues without blocking; refuses when full or closed.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().expect("queue mutex poisoned");
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues, blocking until an item arrives or the queue is closed
    /// *and* drained (then `None` — the consumer's exit signal).
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue mutex poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            // A timeout guards against a missed notify under shutdown races;
            // the loop re-checks state either way.
            let (guard, _) = self
                .not_empty
                .wait_timeout(inner, Duration::from_millis(100))
                .expect("queue mutex poisoned");
            inner = guard;
        }
    }

    /// Number of items currently waiting.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue mutex poisoned").items.len()
    }

    /// True when nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the queue: future pushes fail, consumers drain what remains
    /// and then observe `None`.
    pub fn close(&self) {
        self.inner.lock().expect("queue mutex poisoned").closed = true;
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_capacity() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = BoundedQueue::new(4);
        q.try_push("a").unwrap();
        q.close();
        assert_eq!(q.try_push("b"), Err(PushError::Closed("b")));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn concurrent_producers_and_consumers_lose_nothing() {
        let q = Arc::new(BoundedQueue::new(8));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..100u32 {
                        let mut item = p * 1000 + i;
                        // Spin on Full: the consumers guarantee progress.
                        loop {
                            match q.try_push(item) {
                                Ok(()) => break,
                                Err(PushError::Full(v)) => {
                                    item = v;
                                    std::thread::yield_now();
                                }
                                Err(PushError::Closed(_)) => panic!("closed early"),
                            }
                        }
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap().len()).sum();
        assert_eq!(total, 400);
    }
}
