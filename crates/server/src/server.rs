//! The connection engine: one acceptor thread, N worker threads, a
//! bounded hand-off queue between them, and graceful shutdown.
//!
//! The acceptor never blocks on a slow client — it only accepts and
//! `try_push`es. When the queue is full it answers `429 Too Many
//! Requests` inline (a one-line write on a fresh socket) and closes; that
//! is the whole backpressure story, no unbounded buffering anywhere.
//!
//! Each worker owns a full keep-alive session: it parses requests off the
//! connection, dispatches into [`ServerState::handle`], and writes
//! responses until the client closes, errors, or the server drains.
//! Shutdown flips the drain flag, closes the queue, pokes the acceptor
//! awake with a loopback connect, and joins every thread — every request
//! accepted before the signal completes.

use crate::http::{read_request, HttpError, Response};
use crate::queue::{BoundedQueue, PushError};
use crate::state::{ServerConfig, ServerState};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Per-connection socket timeout: a stalled peer cannot pin a worker
/// forever, it surfaces as an I/O error and the session closes.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(10);

/// A running server. Dropping it (or calling [`Server::shutdown`]) drains
/// in-flight connections and joins every thread.
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServerState>,
    queue: Arc<BoundedQueue<TcpStream>>,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    stats: Arc<ServerStats>,
}

/// Process-lifetime counters, readable while the server runs.
#[derive(Default)]
pub struct ServerStats {
    /// Connections accepted and queued for a worker.
    pub accepted: AtomicU64,
    /// Connections refused with `429` because the queue was full.
    pub rejected: AtomicU64,
    /// Requests fully served (any status).
    pub served: AtomicU64,
}

impl Server {
    /// Binds, spawns the acceptor and `config.workers` workers, and
    /// returns once the listener is live.
    pub fn start(
        config: ServerConfig,
        reference: tgi_core::ReferenceSystem,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ServerState::new(&config, reference)?);
        let queue = Arc::new(BoundedQueue::new(config.queue_capacity));
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::default());

        let workers = (0..config.workers.max(1))
            .map(|i| {
                let state = Arc::clone(&state);
                let queue = Arc::clone(&queue);
                let stats = Arc::clone(&stats);
                std::thread::Builder::new()
                    .name(format!("tgi-server-worker-{i}"))
                    .spawn(move || worker_loop(&state, &queue, &stats))
                    .expect("spawn worker")
            })
            .collect();

        let acceptor = {
            let queue = Arc::clone(&queue);
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            std::thread::Builder::new()
                .name("tgi-server-acceptor".to_string())
                .spawn(move || acceptor_loop(&listener, &queue, &stop, &stats))
                .expect("spawn acceptor")
        };

        Ok(Server { addr, state, queue, stop, acceptor: Some(acceptor), workers, stats })
    }

    /// The bound address (useful with an ephemeral `:0` bind).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (test oracles read trace snapshots through this).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Graceful shutdown: stop accepting, finish everything already
    /// accepted, join all threads. Idempotent.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Keep-alive sessions close after their in-flight request…
        self.state.begin_drain();
        // …no new connections are queued…
        self.queue.close();
        // …and a loopback connect un-blocks `accept()` so the acceptor
        // observes the flag without waiting for outside traffic.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Detects a 429 storm on the acceptor thread: when rejections exceed
/// [`StormTrigger::THRESHOLD`] within one second, the flight recorder
/// dumps itself so the moments *leading into* the overload are captured
/// while they are still in the rings. Dumps are rate-limited and written
/// off-thread — the acceptor never blocks on disk.
struct StormTrigger {
    window_start: Instant,
    rejections: u32,
    last_dump: Option<Instant>,
}

impl StormTrigger {
    /// Rejections within one second that count as a storm.
    const THRESHOLD: u32 = 100;
    /// Minimum spacing between automatic dumps.
    const COOLDOWN: Duration = Duration::from_secs(60);

    fn new() -> Self {
        StormTrigger { window_start: Instant::now(), rejections: 0, last_dump: None }
    }

    /// Notes one rejected connection; fires a dump when a storm is on.
    fn note_rejection(&mut self) {
        let now = Instant::now();
        if now.duration_since(self.window_start) > Duration::from_secs(1) {
            self.window_start = now;
            self.rejections = 0;
        }
        self.rejections += 1;
        if self.rejections < Self::THRESHOLD || !tgi_telemetry::recorder::active() {
            return;
        }
        if let Some(last) = self.last_dump {
            if now.duration_since(last) < Self::COOLDOWN {
                return;
            }
        }
        self.last_dump = Some(now);
        self.rejections = 0;
        let path =
            std::env::temp_dir().join(format!("tgi_server_flight_429_{}.json", std::process::id()));
        std::thread::Builder::new()
            .name("tgi-flight-dump".to_string())
            .spawn(move || match tgi_telemetry::recorder::write_dump(&path) {
                Ok(()) => {
                    eprintln!("tgi-server: 429 storm, flight recorder dumped to {}", path.display())
                }
                Err(e) => eprintln!("tgi-server: 429 storm, flight dump failed: {e}"),
            })
            .ok();
    }
}

fn acceptor_loop(
    listener: &TcpListener,
    queue: &BoundedQueue<TcpStream>,
    stop: &AtomicBool,
    stats: &ServerStats,
) {
    let mut storm = StormTrigger::new();
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match queue.try_push(stream) {
            Ok(()) => {
                stats.accepted.fetch_add(1, Ordering::Relaxed);
            }
            Err(PushError::Full(stream)) | Err(PushError::Closed(stream)) => {
                stats.rejected.fetch_add(1, Ordering::Relaxed);
                if tgi_telemetry::enabled() {
                    tgi_telemetry::counter!("server_connections_rejected_total").inc();
                }
                storm.note_rejection();
                reject_overloaded(stream);
            }
        }
    }
}

/// Answers `429` on a connection there is no room to serve. Best-effort:
/// the socket gets a short write timeout so a dead peer cannot stall the
/// acceptor. The `Retry-After` hint tells well-behaved clients how long to
/// back off before reconnecting.
fn reject_overloaded(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let response = Response::error(429, "server overloaded, retry later").with_retry_after(1);
    let _ = response.write_to(&mut stream);
}

fn worker_loop(state: &ServerState, queue: &BoundedQueue<TcpStream>, stats: &ServerStats) {
    while let Some(stream) = queue.pop() {
        serve_connection(state, stream, stats);
    }
}

/// Runs one keep-alive session to completion.
fn serve_connection(state: &ServerState, stream: TcpStream, stats: &ServerStats) {
    let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
    let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
    // Request/response ping-pong with small frames: Nagle + delayed ACK
    // would add ~40ms to every exchange.
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let request = match read_request(&mut reader, state.max_body_bytes()) {
            Ok(r) => r,
            Err(HttpError::Closed) => return,
            Err(HttpError::Io(_)) => return,
            Err(e) => {
                // Malformed framing: answer with the mapped status and
                // close — the stream position is no longer trustworthy.
                let _ = e.to_response().write_to(&mut writer);
                return;
            }
        };
        let started = Instant::now();
        // `recording()` covers the flight recorder too: request spans land
        // in its ring even when no collector is installed.
        let mut response = if tgi_telemetry::recording() {
            let span = tgi_telemetry::span_cat("server.request", "server")
                .field("method", request.method.as_str())
                .field("path", request.path.as_str());
            let response = state.handle(&request);
            span.field("status", i64::from(response.status)).end();
            response
        } else {
            state.handle(&request)
        };
        // Latency lands in the per-endpoint SLO tracker (a log-linear
        // quantile sketch — this replaced the old fixed-bucket
        // `server_request_seconds` histogram, whose widest bucket hid
        // everything between 100ms and 1s).
        let endpoint = crate::slo::classify(&request.method, &request.path);
        state.slo().record(endpoint, started.elapsed().as_secs_f64());
        if tgi_telemetry::enabled() {
            tgi_telemetry::counter!("server_requests_total").inc();
        }
        // Drain: finish this response, then close the session.
        let close = request.wants_close() || state.draining();
        response.close = close;
        stats.served.fetch_add(1, Ordering::Relaxed);
        if response.write_to(&mut writer).is_err() || close {
            return;
        }
    }
}
