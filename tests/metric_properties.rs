//! Cross-crate property tests: invariants of the TGI metric exercised with
//! measurements produced by the cluster simulator (not hand-built fixtures).

use proptest::prelude::*;
use tgi::cluster::{ClusterSpec, ExecutionEngine, Workload};
use tgi::prelude::*;

fn engine() -> ExecutionEngine {
    ExecutionEngine::new(ClusterSpec::fire())
}

fn reference() -> ReferenceSystem {
    tgi::harness::system_g_reference()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// TGI under every builtin weighting lies within the hull of the REEs
    /// for arbitrary (valid) process counts.
    #[test]
    fn tgi_within_ree_hull(procs in 1usize..=128) {
        let reference = reference();
        let runs = engine().run_suite(&Workload::fire_suite(), procs);
        let measurements: Vec<Measurement> = runs.iter().map(|r| r.measurement()).collect();
        for weighting in [Weighting::Arithmetic, Weighting::Time, Weighting::Energy, Weighting::Power] {
            let tgi = Tgi::builder()
                .reference(reference.clone())
                .weighting(weighting)
                .measurements(measurements.clone())
                .compute()
                .expect("valid suite");
            let rees: Vec<f64> = tgi.contributions().iter().map(|c| c.ree).collect();
            let lo = rees.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = rees.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(tgi.value() >= lo - 1e-9 && tgi.value() <= hi + 1e-9);
        }
    }

    /// Contributions always sum to the TGI value and weights to one.
    #[test]
    fn decomposition_is_exact(procs in 1usize..=128) {
        let reference = reference();
        let runs = engine().run_suite(&Workload::fire_suite(), procs);
        let measurements: Vec<Measurement> = runs.iter().map(|r| r.measurement()).collect();
        let tgi = Tgi::builder()
            .reference(reference)
            .weighting(Weighting::Energy)
            .measurements(measurements)
            .compute()
            .expect("valid suite");
        let csum: f64 = tgi.contributions().iter().map(|c| c.contribution).sum();
        let wsum: f64 = tgi.contributions().iter().map(|c| c.weight).sum();
        prop_assert!((csum - tgi.value()).abs() < 1e-12 * tgi.value().abs().max(1.0));
        prop_assert!((wsum - 1.0).abs() < 1e-9);
    }

    /// Monotonicity: improving one benchmark's performance (all else fixed)
    /// never lowers TGI, for any non-degenerate weighting.
    #[test]
    fn improving_performance_never_hurts(procs in 8usize..=128, boost in 1.01..3.0f64) {
        let reference = reference();
        let runs = engine().run_suite(&Workload::fire_suite(), procs);
        let base: Vec<Measurement> = runs.iter().map(|r| r.measurement()).collect();
        let boosted: Vec<Measurement> = base
            .iter()
            .map(|m| {
                if m.id() == "stream" {
                    Measurement::new(
                        m.id(),
                        Perf::mbps(m.performance().as_mbps() * boost),
                        m.power(),
                        m.time(),
                    )
                    .expect("valid")
                } else {
                    m.clone()
                }
            })
            .collect();
        // Arithmetic weights: weight vector identical, so the comparison is clean.
        let t0 = Tgi::builder()
            .reference(reference.clone())
            .measurements(base)
            .compute()
            .expect("valid")
            .value();
        let t1 = Tgi::builder()
            .reference(reference)
            .measurements(boosted)
            .compute()
            .expect("valid")
            .value();
        prop_assert!(t1 >= t0 - 1e-12, "boosting stream lowered TGI: {t0} -> {t1}");
    }

    /// Swapping system-under-test and reference inverts each REE: the
    /// contribution REEs of (A vs B) are reciprocals of (B vs A).
    #[test]
    fn ree_reciprocity(procs in 8usize..=128) {
        let g_ref = reference();
        let runs = engine().run_suite(&Workload::fire_suite(), procs);
        let fire: Vec<Measurement> = runs.iter().map(|r| r.measurement()).collect();

        let forward = Tgi::builder()
            .reference(g_ref.clone())
            .measurements(fire.clone())
            .compute()
            .expect("valid");

        let mut fire_ref = ReferenceSystem::builder("Fire");
        for m in &fire {
            fire_ref = fire_ref.benchmark(m.clone());
        }
        let fire_ref = fire_ref.build().expect("non-empty");
        let g_suite: Vec<Measurement> = g_ref.iter().map(|(_, m)| m.clone()).collect();
        let backward = Tgi::builder()
            .reference(fire_ref)
            .measurements(g_suite)
            .compute()
            .expect("valid");

        for f in forward.contributions() {
            let b = backward
                .contribution(&f.benchmark)
                .expect("same benchmark set");
            prop_assert!((f.ree * b.ree - 1.0).abs() < 1e-9, "{}: {} * {}", f.benchmark, f.ree, b.ree);
        }
    }
}

#[test]
fn ranking_is_consistent_with_pairwise_tgi() {
    // If A's TGI > B's TGI, A must rank above B.
    let reference = reference();
    let mut ranking = Ranking::new();
    let mut values = Vec::new();
    for procs in [32usize, 64, 128] {
        let runs = engine().run_suite(&Workload::fire_suite(), procs);
        let tgi = Tgi::builder()
            .reference(reference.clone())
            .measurements(runs.iter().map(|r| r.measurement()))
            .compute()
            .expect("valid");
        let name = format!("fire-{procs}");
        values.push((name.clone(), tgi.value()));
        ranking.add_result(name, tgi);
    }
    values.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    for (i, (name, _)) in values.iter().enumerate() {
        assert_eq!(ranking.rank_of(name), Some(i + 1));
    }
}
