//! Numerical stress tests for the linear-algebra substrate: pathological
//! matrices that punish sloppy pivoting, plus analytically-known transforms.

use tgi::kernels::condest;
use tgi::kernels::fft::{self, Direction};
use tgi::kernels::lu;
use tgi::kernels::matrix::{vec_norm_inf, Matrix};
use tgi::kernels::Complex64;

fn solve_and_residual(a: &Matrix, nb: usize) -> f64 {
    let n = a.rows();
    let b: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 11) as f64 - 5.0).collect();
    let x = lu::solve(a.clone(), &b, nb).expect("non-singular");
    let ax = a.matvec(&x);
    let r: Vec<f64> = ax.iter().zip(&b).map(|(p, q)| p - q).collect();
    let scale = a.norm_inf() * vec_norm_inf(&x) + vec_norm_inf(&b);
    vec_norm_inf(&r) / scale.max(1e-300)
}

#[test]
fn hilbert_matrix_solves_with_expected_accuracy() {
    // Hilbert matrices are famously ill-conditioned; at n = 8, κ ≈ 1e10, so
    // a backward-stable solver still produces a small *residual* even
    // though the solution error is large.
    let n = 8;
    let h = Matrix::from_fn(n, n, |i, j| 1.0 / (i + j + 1) as f64);
    let residual = solve_and_residual(&h, 4);
    assert!(residual < 1e-13, "residual {residual}");

    // And the condition estimator flags the danger.
    let mut lu_m = h.clone();
    let piv = lu::factor_blocked(&mut lu_m, 4).expect("non-singular");
    let cond = condest::condition_estimate(&h, &lu_m, &piv);
    assert!(cond > 1e8, "κ₁(H₈) estimated at {cond}");
}

#[test]
fn permutation_matrix_exercises_pivoting_only() {
    // A permutation matrix has zero diagonal (mostly): every elimination
    // step must pivot.
    let n = 17;
    let p = Matrix::from_fn(n, n, |i, j| if (i + 5) % n == j { 1.0 } else { 0.0 });
    let residual = solve_and_residual(&p, 4);
    assert!(residual < 1e-15, "residual {residual}");
}

#[test]
fn wilkinson_growth_matrix_still_passes_residual() {
    // Wilkinson's example: partial pivoting suffers 2^(n-1) element growth,
    // the worst case. The residual stays acceptable at modest n.
    let n = 24;
    let w = Matrix::from_fn(n, n, |i, j| {
        if i == j || j == n - 1 {
            1.0
        } else if i > j {
            -1.0
        } else {
            0.0
        }
    });
    let residual = solve_and_residual(&w, 8);
    assert!(residual < 1e-10, "residual {residual}");
}

#[test]
fn scaled_rows_do_not_break_partial_pivoting() {
    // Wildly different row scales: partial pivoting picks magnitude-max
    // pivots; the solve must stay backward stable per row scale.
    let n = 32;
    let mut a = Matrix::random(n, n, 77);
    for i in 0..n {
        let scale = 10f64.powi((i % 13) as i32 - 6);
        for j in 0..n {
            a[(i, j)] *= scale;
        }
    }
    for i in 0..n {
        a[(i, i)] += 1e-6; // keep it comfortably non-singular
    }
    let residual = solve_and_residual(&a, 8);
    assert!(residual < 1e-12, "residual {residual}");
}

#[test]
fn tridiagonal_system_exact() {
    // -1/2/-1 Poisson matrix has a known LU without any pivoting drama.
    let n = 50;
    let a = Matrix::from_fn(n, n, |i, j| {
        if i == j {
            2.0
        } else if i.abs_diff(j) == 1 {
            -1.0
        } else {
            0.0
        }
    });
    // Solve against the all-ones RHS; solution is analytic:
    // x_i = (i+1)(n-i)/2 for the discrete Poisson problem.
    let b = vec![1.0; n];
    let x = lu::solve(a.clone(), &b, 16).expect("non-singular");
    for (i, xi) in x.iter().enumerate() {
        let expected = (i + 1) as f64 * (n - i) as f64 / 2.0;
        assert!((xi - expected).abs() < 1e-9 * expected, "x[{i}] = {xi}, expected {expected}");
    }
}

#[test]
fn fft_of_pure_sinusoid_has_single_bin() {
    let n = 256;
    let k0 = 19;
    let mut data: Vec<Complex64> = (0..n)
        .map(|t| {
            let ang = 2.0 * std::f64::consts::PI * (k0 * t) as f64 / n as f64;
            Complex64::new(ang.cos(), ang.sin())
        })
        .collect();
    fft::fft(&mut data, Direction::Forward);
    for (k, z) in data.iter().enumerate() {
        if k == k0 {
            assert!((z.re - n as f64).abs() < 1e-9, "bin {k0}: {z:?}");
            assert!(z.im.abs() < 1e-9);
        } else {
            assert!(z.abs() < 1e-9, "leakage at bin {k}: {}", z.abs());
        }
    }
}

#[test]
fn fft_shift_theorem_holds() {
    // x[t-s] ⇔ X[k]·e^{-2πiks/n}.
    let n = 128;
    let s = 5usize;
    let signal: Vec<Complex64> =
        (0..n).map(|t| Complex64::new(((t * t) % 23) as f64 / 23.0 - 0.5, 0.0)).collect();
    let mut spectrum = signal.clone();
    fft::fft(&mut spectrum, Direction::Forward);

    let shifted: Vec<Complex64> = (0..n).map(|t| signal[(t + n - s) % n]).collect();
    let mut shifted_spectrum = shifted;
    fft::fft(&mut shifted_spectrum, Direction::Forward);

    for k in 0..n {
        let phase = -2.0 * std::f64::consts::PI * (k * s) as f64 / n as f64;
        let expected = spectrum[k] * Complex64::from_polar_unit(phase);
        let diff = (shifted_spectrum[k] - expected).abs();
        assert!(diff < 1e-9, "bin {k}: diff {diff}");
    }
}

#[test]
fn distributed_hpl_agrees_on_pathological_matrix_sizes() {
    // Prime sizes with tiny blocks stress the block-cyclic bookkeeping.
    use tgi::mpi::hpl::{run, DistributedHplConfig};
    use tgi::mpi::World;
    for (n, nb, ranks) in [(13usize, 3usize, 4usize), (29, 5, 3), (31, 7, 2)] {
        let config = DistributedHplConfig { n, block_size: nb, seed: 99 };
        let out = World::run(ranks, move |comm| run(comm, config));
        for r in &out {
            assert!(r.passed, "n={n} nb={nb} ranks={ranks}: {}", r.scaled_residual);
            assert_eq!(r.x, out[0].x);
        }
    }
}
