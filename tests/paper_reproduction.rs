//! End-to-end reproduction checks: every quantitative claim the paper makes
//! that this repository reproduces, asserted in one place.
//!
//! See EXPERIMENTS.md for the paper-vs-measured discussion of each artifact.

use tgi::harness::{
    experiments, fig2_hpl_efficiency, fig3_stream_efficiency, fig4_iozone_efficiency,
    fig5_tgi_arithmetic, fig6_tgi_weighted, system_g_reference, table1_reference_performance,
    table2_pcc, FireSweep,
};
use tgi::prelude::*;

fn fixtures() -> (FireSweep, ReferenceSystem) {
    (FireSweep::run(), system_g_reference())
}

#[test]
fn fire_cluster_hits_90_gflops_anchor() {
    // §IV: "The cluster is capable of delivering 90 GFLOPS on the LINPACK
    // benchmark."
    let (sweep, _) = fixtures();
    let full = sweep.points().last().expect("sweep non-empty");
    let hpl = full.measurements.iter().find(|m| m.id() == "hpl").expect("hpl measured");
    let gflops = hpl.performance().as_gflops();
    assert!((gflops - 90.0).abs() < 2.0, "Fire HPL at 128 cores: {gflops}");
}

#[test]
fn system_g_hits_table1_hpl_anchor() {
    // Table I: HPL 8.1 TFLOPS on SystemG.
    let reference = system_g_reference();
    let hpl = reference.measurement("hpl").expect("hpl in reference");
    let tflops = hpl.performance().value() / 1e12;
    assert!((tflops - 8.1).abs() < 0.2, "SystemG HPL: {tflops} TFLOPS");
}

#[test]
fn reference_system_scores_exactly_one() {
    // SPEC-rating sanity: the reference measured against itself must have
    // TGI = 1 under every weighting (every REE is 1, weights sum to 1).
    let reference = system_g_reference();
    let suite: Vec<Measurement> = reference.iter().map(|(_, m)| m.clone()).collect();
    for weighting in [Weighting::Arithmetic, Weighting::Time, Weighting::Energy, Weighting::Power] {
        let tgi = Tgi::builder()
            .reference(reference.clone())
            .weighting(weighting)
            .measurements(suite.clone())
            .compute()
            .expect("self-comparison is valid");
        assert!((tgi.value() - 1.0).abs() < 1e-12);
    }
}

#[test]
fn all_five_figures_regenerate_with_eight_points() {
    let (sweep, reference) = fixtures();
    let figures = [
        fig2_hpl_efficiency(&sweep),
        fig3_stream_efficiency(&sweep),
        fig4_iozone_efficiency(&sweep),
        fig5_tgi_arithmetic(&sweep, &reference),
    ];
    for f in &figures {
        assert_eq!(f.series.len(), 1, "{}", f.id);
        assert_eq!(f.series[0].points.len(), 8, "{}", f.id);
        assert!(f.series[0].ys().iter().all(|v| v.is_finite() && *v > 0.0), "{}", f.id);
    }
    let f6 = fig6_tgi_weighted(&sweep, &reference);
    assert_eq!(f6.series.len(), 3);
    for s in &f6.series {
        assert_eq!(s.points.len(), 8);
    }
}

#[test]
fn tgi_tracks_iozone_most_closely_under_arithmetic_mean() {
    // §IV-B: correlations of TGI(AM) with IOzone/Stream/HPL are .99/.96/.58:
    // IOzone first, Stream close behind, HPL clearly lowest.
    let (sweep, reference) = fixtures();
    let pcc = experiments::pcc_for_weighting(&sweep, &reference, Weighting::Arithmetic);
    let (io, st, hpl) = (pcc[0].1, pcc[1].1, pcc[2].1);
    assert!(io > 0.95, "io {io}");
    assert!(st > 0.90, "stream {st}");
    assert!(hpl < st - 0.1 && hpl < io - 0.1, "hpl {hpl} must be clearly lowest");
}

#[test]
fn energy_and_power_weights_favor_hpl() {
    // §IV-B: "TGI using energy and power as weights show higher correlation
    // with the energy efficiency of the HPL benchmark which is not a desired
    // property."
    let (sweep, reference) = fixtures();
    for weighting in [Weighting::Energy, Weighting::Power] {
        let label = weighting.label();
        let pcc = experiments::pcc_for_weighting(&sweep, &reference, weighting);
        let (io, st, hpl) = (pcc[0].1, pcc[1].1, pcc[2].1);
        assert!(hpl > io && hpl > st, "{label}: io={io:.3} st={st:.3} hpl={hpl:.3}");
        assert!(hpl > 0.9, "{label}: hpl correlation should be strong, got {hpl:.3}");
    }
}

#[test]
fn time_weights_behave_like_arithmetic_mean() {
    // §IV-B: "TGI using time as weights shows similar correlation to
    // individual benchmarks when compared to TGI using arithmetic mean."
    let (sweep, reference) = fixtures();
    let am = experiments::pcc_for_weighting(&sweep, &reference, Weighting::Arithmetic);
    let time = experiments::pcc_for_weighting(&sweep, &reference, Weighting::Time);
    for (a, t) in am.iter().zip(&time) {
        assert_eq!(a.0, t.0);
        assert!(
            (a.1 - t.1).abs() < 0.15,
            "{}: AM {:.3} vs time {:.3} should be similar",
            a.0,
            a.1,
            t.1
        );
    }
    // And the ordering matches: io & stream above hpl.
    assert!(time[0].1 > time[2].1 && time[1].1 > time[2].1);
}

#[test]
fn table1_and_table2_render_the_paper_layout() {
    let (sweep, reference) = fixtures();
    let t1 = table1_reference_performance(&reference);
    assert_eq!(t1.headers, vec!["Benchmark", "Performance", "Power"]);
    assert_eq!(t1.rows.len(), 3);
    let t2 = table2_pcc(&sweep, &reference);
    assert_eq!(t2.rows.len(), 3);
    assert_eq!(
        t2.rows.iter().map(|r| r[0].as_str()).collect::<Vec<_>>(),
        vec!["IOzone", "Stream", "HPL"]
    );
    // CSV round-trip: every figure/table renders to parseable CSV.
    let csv = t2.to_csv();
    assert_eq!(csv.lines().count(), 4);
    for line in csv.lines().skip(1) {
        assert_eq!(line.split(',').count(), 5);
    }
}

#[test]
fn fixed_work_means_faster_runs_at_scale() {
    // The sweep holds each benchmark's work fixed (§III framing), so every
    // benchmark's wall time at 128 cores must be at most its 16-core time.
    let (sweep, _) = fixtures();
    let first = &sweep.points()[0];
    let last = &sweep.points()[7];
    for (a, b) in first.measurements.iter().zip(&last.measurements) {
        assert_eq!(a.id(), b.id());
        assert!(
            b.time().value() <= a.time().value() * 1.05,
            "{}: {} -> {}",
            a.id(),
            a.time(),
            b.time()
        );
    }
}
