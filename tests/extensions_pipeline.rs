//! Integration tests for the extension features: distributed benchmarks,
//! config-driven suites, sensitivity analysis, power capping, and the
//! experiment bundle.

use tgi::cluster::{power_cap, ClusterSpec, ExecutionEngine, Workload};
use tgi::core::sensitivity;
use tgi::core::vector::{Dominance, EfficiencyVector};
use tgi::harness::{extensions, system_g_reference, ExperimentBundle};
use tgi::mpi::{benchmarks as dist, World};
use tgi::prelude::*;
use tgi::suite::{BenchmarkSpec, SuiteSpec};

#[test]
fn config_driven_suite_to_tgi_end_to_end() {
    // JSON spec → suite → measurements → reference → TGI = self-comparison.
    let json = r#"{
        "benchmarks": [
            {"kind": "hpl", "n": 96},
            {"kind": "stream", "array_size": 32768, "ntimes": 2},
            {"kind": "iozone", "file_size": 524288, "fsync": false}
        ]
    }"#;
    let spec: SuiteSpec = serde_json::from_str(json).expect("valid spec");
    let reference = spec.build().run_as_reference("self").expect("suite runs");
    let measurements = spec.build().run_all().expect("suite runs");
    let tgi = Tgi::builder()
        .reference(reference)
        .measurements(measurements)
        .compute()
        .expect("ids match");
    assert!(tgi.value() > 0.1 && tgi.value() < 10.0, "self-TGI {}", tgi.value());
}

#[test]
fn hpcc_style_spec_runs_seven_benchmarks() {
    let mut spec = SuiteSpec::hpcc_style();
    // Shrink for test speed.
    for b in &mut spec.benchmarks {
        match b {
            BenchmarkSpec::Hpl { n } | BenchmarkSpec::Dgemm { n } | BenchmarkSpec::Ptrans { n } => {
                *n = 64
            }
            BenchmarkSpec::Fft { n } => *n = 1 << 10,
            BenchmarkSpec::Stream { array_size, ntimes } => {
                *array_size = 1 << 14;
                *ntimes = 2;
            }
            BenchmarkSpec::Gups { log2_size } => *log2_size = 12,
            BenchmarkSpec::Comm { ranks } => *ranks = 2,
            _ => {}
        }
    }
    let ms = spec.build().run_all().expect("suite runs");
    assert_eq!(ms.len(), 7);
    let ids: Vec<&str> = ms.iter().map(|m| m.id()).collect();
    assert_eq!(ids, vec!["hpl", "dgemm", "stream", "ptrans", "gups", "fft", "comm"]);
}

#[test]
fn distributed_stream_and_io_through_minimpi() {
    let stream_out =
        World::run(2, |comm| dist::stream(comm, tgi::kernels::stream::StreamConfig::small()));
    assert!(stream_out[0].aggregate_triad_mbps > stream_out[0].local_triad_mbps * 0.99);

    let io_out = World::run(2, |comm| dist::io_write(comm, 128 << 10));
    assert!(io_out[0].aggregate_write_mbps > 0.0);
    assert_eq!(io_out[0].aggregate_write_mbps, io_out[1].aggregate_write_mbps);
}

#[test]
fn sensitivity_flip_is_consistent_with_dominance() {
    // Fire vs Fire-GPU are Pareto-incomparable, so a flip must exist; a
    // system compared against itself scaled down is dominated, so none may.
    let reference = system_g_reference();
    let measure = |cluster: &ClusterSpec| -> Vec<Measurement> {
        ExecutionEngine::new(cluster.clone())
            .run_suite(&Workload::fire_suite(), cluster.total_cores())
            .into_iter()
            .map(|r| r.measurement())
            .collect()
    };
    let fire_ms = measure(&ClusterSpec::fire());
    let gpu_ms = measure(&ClusterSpec::fire_gpu());

    let tgi = |ms: &[Measurement]| {
        Tgi::builder()
            .reference(reference.clone())
            .measurements(ms.iter().cloned())
            .compute()
            .expect("valid")
    };
    let va = EfficiencyVector::from_suite(&reference, &fire_ms).expect("valid");
    let vb = EfficiencyVector::from_suite(&reference, &gpu_ms).expect("valid");
    assert_eq!(va.dominance(&vb).expect("comparable"), Dominance::Incomparable);
    let rob =
        sensitivity::compare("fire", &tgi(&fire_ms), "gpu", &tgi(&gpu_ms)).expect("comparable");
    assert!(rob.flip.is_some(), "incomparable pair must have a flip");

    // Dominated pair: the same system with every performance halved.
    let worse: Vec<Measurement> = fire_ms
        .iter()
        .map(|m| {
            Measurement::new(
                m.id(),
                Perf::new(m.performance().value() / 2.0, m.performance().unit().clone())
                    .expect("valid"),
                m.power(),
                m.time(),
            )
            .expect("valid")
        })
        .collect();
    let rob2 =
        sensitivity::compare("fire", &tgi(&fire_ms), "half", &tgi(&worse)).expect("comparable");
    assert_eq!(rob2.leader, "fire");
    assert!(rob2.flip.is_none(), "dominated pair cannot flip: {:?}", rob2.flip);
}

#[test]
fn capped_tgi_is_below_uncapped_tgi() {
    let reference = system_g_reference();
    let fire = ClusterSpec::fire();
    let suite = Workload::fire_suite();

    let capped_measurements: Vec<Measurement> = suite
        .iter()
        .map(|w| {
            // Cap at 80% of each workload's natural draw.
            let natural = ExecutionEngine::new(fire.clone()).run(*w, 128);
            power_cap::run_capped(&fire, *w, 128, natural.average_power.value() * 0.8)
                .run
                .measurement()
        })
        .collect();
    let uncapped: Vec<Measurement> = ExecutionEngine::new(fire.clone())
        .run_suite(&suite, 128)
        .into_iter()
        .map(|r| r.measurement())
        .collect();

    let tgi = |ms: Vec<Measurement>| {
        Tgi::builder()
            .reference(reference.clone())
            .measurements(ms)
            .compute()
            .expect("valid")
            .value()
    };
    let (capped, full) = (tgi(capped_measurements), tgi(uncapped));
    // Capping only throttles the CPU: HPL slows while the memory- and
    // I/O-bound benchmarks keep their throughput at lower power, so the
    // capped system is at least as green and not wildly different.
    assert!(capped > 0.5 * full && capped < 2.0 * full, "capped {capped} vs full {full}");
}

#[test]
fn experiment_bundle_round_trips_through_disk() {
    let reference = system_g_reference();
    let sweep = tgi::harness::FireSweep::run();
    let bundle = ExperimentBundle::new(
        reference.name(),
        vec![tgi::harness::fig5_tgi_arithmetic(&sweep, &reference)],
        vec![
            tgi::harness::table2_pcc(&sweep, &reference),
            extensions::gpu_platform_comparison(&reference).expect("runs"),
        ],
    );
    let path = std::env::temp_dir().join(format!("tgi_it_bundle_{}.json", std::process::id()));
    bundle.write(&path).expect("writable");
    let back = ExperimentBundle::read(&path).expect("readable");
    assert_eq!(bundle, back);
    assert!(back.figure("fig5").is_some());
    assert!(back.table("table2").is_some());
    assert!(back.table("ext-gpu").is_some());
    assert!(back.to_markdown().contains("### fig5"));
    std::fs::remove_file(&path).expect("cleanup");
}
