//! Integration: power substrate — models, meters, traces, cooling — wired
//! together the way Figure 1 wires the physical setup.

use std::sync::Arc;
use std::time::Duration;
use tgi::power::meter::IdealMeter;
use tgi::power::sampler::ConstantSource;
use tgi::power::{
    BackgroundSampler, CoolingModel, MeterSpec, NodePowerModel, PowerMeter, UtilizationProfile,
    UtilizationSample, WattsUpPro,
};
use tgi::prelude::*;

#[test]
fn profile_through_model_through_meter_to_energy() {
    // A three-phase workload on a Fire node, observed through the simulated
    // Watts Up? PRO: the measured energy must match ground truth within the
    // instrument's accuracy.
    let node = NodePowerModel::fire_node();
    let mut profile = UtilizationProfile::new();
    profile.push(30.0, UtilizationSample::cpu_bound(1.0));
    profile.push(20.0, UtilizationSample::memory_bound(0.8));
    profile.push(10.0, UtilizationSample::io_bound(0.6));

    let ground_truth = |t: f64| node.wall_power(profile.at(t));

    let mut fine = IdealMeter::new(0.05);
    let truth = fine.record(&ground_truth, profile.duration_s()).energy().value();

    let mut meter = WattsUpPro::new(77);
    let trace = meter.record(&ground_truth, profile.duration_s());
    let measured = trace.energy().value();
    assert!((measured - truth).abs() < 0.05 * truth, "measured {measured} vs truth {truth}");
    // The trace also yields a valid tgi-core measurement.
    let m = Measurement::new(
        "phase-workload",
        Perf::gflops(10.0),
        trace.average_power(),
        Seconds::new(profile.duration_s()),
    )
    .and_then(|m| m.with_energy(Joules::new(measured)))
    .expect("valid measurement");
    assert!(m.energy_efficiency() > 0.0);
}

#[test]
fn one_hz_meter_underestimates_bursty_energy_fine_meter_does_not() {
    // The sampling-rate limitation quantified: sub-second spikes between
    // 1 Hz samples are invisible.
    let spiky = |t: f64| {
        if (t % 1.0) > 0.4 && (t % 1.0) < 0.6 {
            Watts::new(1000.0)
        } else {
            Watts::new(100.0)
        }
    };
    let mut fine = IdealMeter::new(0.01);
    let truth = fine.record(&spiky, 30.0).energy().value();
    let mut coarse = WattsUpPro::calibrated(3);
    let coarse_e = coarse.record(&spiky, 30.0).energy().value();
    // 1 Hz samples land at whole seconds, exactly in the 100 W region.
    assert!(coarse_e < truth * 0.8, "coarse {coarse_e} vs truth {truth}");
}

#[test]
fn background_sampler_feeds_measurement_pipeline() {
    let sampler =
        BackgroundSampler::start(Arc::new(ConstantSource(222.0)), Duration::from_millis(5));
    std::thread::sleep(Duration::from_millis(40));
    let trace = sampler.stop();
    assert!((trace.average_power().value() - 222.0).abs() < 1e-9);
    let m = Measurement::new("sampled", Perf::mbps(100.0), trace.average_power(), trace.duration())
        .expect("valid");
    assert!(m.power().value() > 0.0);
}

#[test]
fn facility_tgi_is_lower_than_it_tgi() {
    // Cooling extension: folding PUE into power must reduce TGI by exactly
    // the PUE factor under the arithmetic mean with a fixed-power reference.
    let reference = ReferenceSystem::builder("ref")
        .benchmark(
            Measurement::new("hpl", Perf::gflops(10.0), Watts::new(1000.0), Seconds::new(60.0))
                .expect("valid"),
        )
        .build()
        .expect("non-empty");
    let it = Measurement::new("hpl", Perf::gflops(8.0), Watts::new(900.0), Seconds::new(60.0))
        .expect("valid");
    let cooling = CoolingModel::fixed(1.5);
    let facility = Measurement::new(
        "hpl",
        it.performance().clone(),
        cooling.facility_power(it.power()),
        it.time(),
    )
    .expect("valid");

    let tgi_it = Tgi::builder()
        .reference(reference.clone())
        .measurement(it)
        .compute()
        .expect("valid")
        .value();
    let tgi_fac =
        Tgi::builder().reference(reference).measurement(facility).compute().expect("valid").value();
    assert!((tgi_fac - tgi_it / 1.5).abs() < 1e-12);
}

#[test]
fn meter_specs_expose_instrument_limits() {
    let wu = MeterSpec::watts_up_pro_es();
    assert_eq!(wu.sample_interval_s, 1.0);
    // The PDU variant raises the ceiling for cluster-level metering.
    let meter = WattsUpPro::pdu(5);
    assert!(meter.spec().max_watts > 50_000.0);
    // A 40 kW cluster reading is not clamped by the PDU meter.
    let mut meter = WattsUpPro::pdu(5);
    let trace = meter.record(&|_| Watts::new(40_000.0), 5.0);
    assert!(trace.peak_power().value() > 38_000.0);
}
