//! Integration: real kernels → sampled power → measurements → TGI.
//!
//! Exercises the full native path of the stack on this machine with
//! test-sized workloads.

use tgi::prelude::*;
use tgi::suite::native::{
    NativeDgemm, NativeFft, NativeGups, NativeHpl, NativeIozone, NativePtrans, NativeStream,
};
use tgi::suite::{Benchmark, BenchmarkSuite};

fn small_suite() -> BenchmarkSuite {
    let mut stream = NativeStream::new(1 << 15);
    stream.config.ntimes = 2;
    let mut iozone = NativeIozone::new(256 << 10);
    iozone.config.fsync = false;
    BenchmarkSuite::new().with(NativeHpl::new(96)).with(stream).with(iozone)
}

#[test]
fn native_suite_produces_three_valid_measurements() {
    let measurements = small_suite().run_all().expect("suite runs");
    assert_eq!(measurements.len(), 3);
    let ids: Vec<&str> = measurements.iter().map(|m| m.id()).collect();
    assert_eq!(ids, vec!["hpl", "stream", "iozone"]);
    for m in &measurements {
        assert!(m.performance().value() > 0.0, "{}", m.id());
        assert!(m.power().value() > 0.0, "{}", m.id());
        assert!(m.time().value() > 0.0, "{}", m.id());
        assert!(m.energy().value() > 0.0, "{}", m.id());
    }
}

#[test]
fn native_run_promotes_to_reference_and_scores_one_against_itself() {
    // A machine measured against its own suite run scores TGI ≈ 1 — not
    // exactly 1, because the two runs sample power independently.
    let reference = small_suite().run_as_reference("this-machine").expect("runs");
    let again = small_suite().run_all().expect("runs");
    let tgi = Tgi::builder()
        .reference(reference)
        .measurements(again)
        .compute()
        .expect("same benchmark ids");
    assert!(
        tgi.value() > 0.2 && tgi.value() < 5.0,
        "self-TGI should be near 1, got {}",
        tgi.value()
    );
}

#[test]
fn extension_benchmarks_integrate_with_tgi() {
    // §II: TGI is not limited to three benchmarks. Build a 7-test suite
    // (like HPCC's seven) and compute TGI over all of them.
    let mut stream = NativeStream::new(1 << 15);
    stream.config.ntimes = 2;
    let mut iozone = NativeIozone::new(256 << 10);
    iozone.config.fsync = false;
    let suite = BenchmarkSuite::new()
        .with(NativeHpl::new(96))
        .with(stream)
        .with(iozone)
        .with(NativeDgemm::new(96))
        .with(NativeFft::new(1 << 10))
        .with(NativePtrans::new(128))
        .with(NativeGups::new(12));
    assert_eq!(suite.len(), 7);

    let reference = suite.run_as_reference("seven-test-reference").expect("runs");
    assert_eq!(reference.len(), 7);

    let measurements = suite.run_all().expect("runs");
    let tgi = Tgi::builder()
        .reference(reference)
        .measurements(measurements)
        .compute()
        .expect("all ids match");
    assert_eq!(tgi.contributions().len(), 7);
    let weight_sum: f64 = tgi.contributions().iter().map(|c| c.weight).sum();
    assert!((weight_sum - 1.0).abs() < 1e-9);
}

#[test]
fn benchmark_subsystem_labels_cover_cpu_memory_io() {
    let suite = small_suite();
    let _ = suite.ids();
    let subsystems: Vec<&str> = vec![
        NativeHpl::new(16).subsystem(),
        NativeStream::new(16).subsystem(),
        NativeIozone::new(1 << 16).subsystem(),
    ];
    assert_eq!(subsystems, vec!["cpu", "memory", "io"]);
}

#[test]
fn validation_failures_surface_as_errors() {
    // A mis-configured I/O benchmark (record > file) errors rather than
    // producing a bogus measurement.
    let mut bad = NativeIozone::new(1 << 10);
    bad.config.record_size = 1 << 20;
    assert!(bad.run().is_err());
}
