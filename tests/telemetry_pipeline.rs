//! End-to-end telemetry acceptance: one instrumented run across the whole
//! pipeline — resilient suite with a forced retry, memoized grid sweep,
//! explicit thread-pool work — must produce a valid Chrome trace with
//! correctly nesting spans and a Prometheus snapshot whose retry, memo-hit,
//! and pool-steal counters are all nonzero.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use rayon::prelude::*;
use serde::Value;
use tgi::cluster::ClusterSpec;
use tgi::core::Measurement;
use tgi::harness::{system_g_reference, GridSweep};
use tgi::suite::{Benchmark, BenchmarkSuite, SuiteError, SuiteRunner};

/// The collector is process-global; serialize the tests that install it.
static GATE: Mutex<()> = Mutex::new(());

/// Fails with a transient I/O error on the first attempt, then succeeds.
struct FlakyOnce {
    attempts: AtomicUsize,
}

impl Benchmark for FlakyOnce {
    fn id(&self) -> &str {
        "flaky"
    }
    fn subsystem(&self) -> &'static str {
        "test"
    }
    fn run(&self) -> Result<Measurement, SuiteError> {
        if self.attempts.fetch_add(1, Ordering::SeqCst) == 0 {
            return Err(SuiteError::Io(std::io::Error::other("scratch disk busy")));
        }
        Ok(Measurement::new(
            "flaky",
            tgi::core::Perf::gflops(1.0),
            tgi::core::Watts::new(100.0),
            tgi::core::Seconds::new(1.0),
        )?)
    }
}

/// Runs the whole instrumented pipeline and returns (events, snapshot).
fn run_instrumented_pipeline() -> (Vec<tgi::telemetry::Event>, tgi::telemetry::MetricsSnapshot) {
    assert!(tgi::telemetry::install(), "collector must install");

    // 1. Resilient suite with a forced retry (transient failure, then ok).
    let suite = BenchmarkSuite::new().with(FlakyOnce { attempts: AtomicUsize::new(0) });
    let report = SuiteRunner::new().retries(2).backoff(Duration::from_millis(1)).run(&suite);
    assert_eq!(report.measurements().len(), 1, "flaky benchmark must recover");

    // 2. Grid sweep run twice: the second pass is answered from the memo.
    let sweep = GridSweep::new().cluster("Fire", ClusterSpec::fire()).cores(&[32, 64]).paper_axes();
    let reference = system_g_reference();
    sweep.run(&reference).expect("grid evaluates");
    sweep.run(&reference).expect("grid re-evaluates");
    let (hits, _misses) = sweep.memo_stats();
    assert!(hits > 0, "second sweep must hit the memo");

    // 3. Chunky work on an explicit 4-thread pool so workers take jobs
    //    from the shared queue (counted as steals).
    let pool = rayon::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
    let items: Vec<u64> = (0..256).collect();
    let total: u64 = pool.install(|| {
        items.par_iter().map(|&i| (0..2_000u64).fold(i, |a, b| a ^ b.wrapping_mul(31))).sum()
    });
    assert!(total > 0);

    let events = tgi::telemetry::uninstall();
    let snapshot = tgi::telemetry::metrics::snapshot();
    (events, snapshot)
}

#[test]
fn full_pipeline_produces_nonzero_counters_and_a_nesting_trace() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let (events, snapshot) = run_instrumented_pipeline();

    // Acceptance counters: retries, memo hits, and pool steals all moved.
    for name in ["tgi_suite_retries_total", "tgi_memo_hits_total", "tgi_pool_steals_total"] {
        let v = snapshot.counter(name).unwrap_or(0);
        assert!(v > 0, "{name} must be nonzero, snapshot: {snapshot:?}");
    }

    // The Prometheus exposition carries them too.
    let prom = tgi::telemetry::export::prometheus(&snapshot);
    assert!(prom.contains("# TYPE tgi_suite_retries_total counter"), "{prom}");
    assert!(prom.contains("# TYPE tgi_memo_hits_total counter"), "{prom}");
    assert!(prom.contains("# TYPE tgi_pool_steals_total counter"), "{prom}");

    // The Chrome trace parses, pairs, and nests within each thread lane.
    let trace = tgi::telemetry::export::chrome_trace(&events);
    let doc: Value = serde_json::from_str(&trace).expect("trace is valid JSON");
    let trace_events = doc.get("traceEvents").and_then(Value::as_array).expect("traceEvents");
    assert_eq!(trace_events.len(), events.len());

    // Collect complete ("X") events per tid as [start, end) microsecond
    // intervals; within a lane every pair must nest or be disjoint.
    let mut lanes: Vec<(f64, Vec<(f64, f64)>)> = Vec::new();
    for ev in trace_events {
        if ev.get("ph").and_then(Value::as_str) != Some("X") {
            continue;
        }
        let tid = ev.get("tid").and_then(Value::as_f64).expect("tid");
        let ts = ev.get("ts").and_then(Value::as_f64).expect("ts");
        let dur = ev.get("dur").and_then(Value::as_f64).expect("dur");
        assert!(dur >= 0.0);
        let lane = match lanes.iter_mut().find(|(t, _)| *t == tid) {
            Some((_, lane)) => lane,
            None => {
                lanes.push((tid, Vec::new()));
                &mut lanes.last_mut().unwrap().1
            }
        };
        lane.push((ts, ts + dur));
    }
    assert!(!lanes.is_empty(), "trace must contain complete spans");
    for (tid, lane) in &lanes {
        for (i, &(s1, e1)) in lane.iter().enumerate() {
            for &(s2, e2) in &lane[i + 1..] {
                let nested = (s1 <= s2 && e2 <= e1) || (s2 <= s1 && e1 <= e2);
                let disjoint = e1 <= s2 || e2 <= s1;
                assert!(
                    nested || disjoint,
                    "spans overlap without nesting on tid {tid}: \
                     [{s1}, {e1}) vs [{s2}, {e2})"
                );
            }
        }
    }

    // The suite retry left an instant marker in the timeline.
    let has_retry_marker = trace_events.iter().any(|ev| {
        ev.get("ph").and_then(Value::as_str) == Some("i")
            && ev.get("name").and_then(Value::as_str) == Some("suite.retry")
    });
    assert!(has_retry_marker, "expected a suite.retry instant in the trace");
}

#[test]
fn disabled_runs_record_nothing() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    assert!(!tgi::telemetry::installed());

    let suite = BenchmarkSuite::new().with(FlakyOnce { attempts: AtomicUsize::new(1) });
    let report = SuiteRunner::new().run(&suite);
    assert_eq!(report.measurements().len(), 1);

    assert!(tgi::telemetry::drain().is_empty(), "no collector, no events");
}
