//! Rank a fleet of simulated clusters by TGI, Green500-style.
//!
//! ```sh
//! cargo run --example green500_ranking
//! ```
//!
//! The paper's motivation (§I) is rankability: a single number that lets a
//! list like the Green500 order systems — but one that reflects the *whole*
//! system, not just FLOPS/W under LINPACK. This example builds several
//! cluster variants, runs the three-benchmark suite on each through the
//! simulator, and prints both rankings so the difference is visible.

use tgi::cluster::{ClusterSpec, ExecutionEngine, Workload};
use tgi::prelude::*;

/// Build a few plausible cluster variants from the Fire baseline.
fn fleet() -> Vec<ClusterSpec> {
    let fire = ClusterSpec::fire();

    // A memory-upgraded Fire: double the memory bandwidth.
    let mut fat_memory = fire.clone();
    fat_memory.name = "Fire-FatMem".to_string();
    fat_memory.node.mem_bandwidth_gbps *= 2.0;

    // A storage-upgraded Fire: a faster file server.
    let mut fat_io = fire.clone();
    fat_io.name = "Fire-FastIO".to_string();
    fat_io.shared_fs.server_cap_mbps *= 3.0;
    fat_io.shared_fs.per_client_mbps *= 2.0;

    // A compute-tuned Fire: better HPL kernel efficiency.
    let mut tuned = fire.clone();
    tuned.name = "Fire-TunedBLAS".to_string();
    tuned.scaling.hpl_serial_efficiency *= 2.0;

    vec![fire, fat_memory, fat_io, tuned]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Reference: SystemG at full scale (regenerates Table I's data).
    let reference = tgi::harness::system_g_reference();

    let mut tgi_ranking = Ranking::new();
    let mut flops_per_watt_ranking = Ranking::new();

    for cluster in fleet() {
        let name = cluster.name.clone();
        let engine = ExecutionEngine::new(cluster.clone());
        let measurements: Vec<Measurement> = engine
            .run_suite(&Workload::fire_suite(), cluster.total_cores())
            .into_iter()
            .map(|r| r.measurement())
            .collect();

        // Traditional metric: MFLOPS/W under HPL only.
        let hpl = measurements.iter().find(|m| m.id() == "hpl").expect("suite has hpl");
        flops_per_watt_ranking.add(name.clone(), hpl.energy_efficiency() / 1e6);

        // TGI across the whole suite.
        let result =
            Tgi::builder().reference(reference.clone()).measurements(measurements).compute()?;
        tgi_ranking.add_result(name, result);
    }

    println!("== Ranked by HPL MFLOPS/W (the Green500 convention) ==");
    print!("{flops_per_watt_ranking}");
    println!("\n== Ranked by TGI (system-wide, vs {}) ==", reference.name());
    print!("{tgi_ranking}");

    println!(
        "\nNote how the I/O-upgraded system moves up under TGI while being\n\
         invisible to FLOPS/W — the paper's core argument for a system-wide metric."
    );
    Ok(())
}
