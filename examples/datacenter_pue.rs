//! Center-wide TGI: folding cooling overhead into the metric (§II / §VI).
//!
//! ```sh
//! cargo run --example datacenter_pue
//! ```
//!
//! The paper lists as an advantage that "TGI can be extended to incorporate
//! power consumed outside the HPC system, e.g., cooling", and names the
//! center-wide view as future work. This example computes TGI twice — at
//! the PDU (IT power) and at the facility meter (IT × PUE) — for the same
//! cluster hosted in two different machine rooms, across a range of outside
//! temperatures.

use tgi::cluster::{ClusterSpec, ExecutionEngine, Workload};
use tgi::power::CoolingModel;
use tgi::prelude::*;

/// Rebuilds a measurement with facility power substituted for IT power.
fn at_facility(m: &Measurement, cooling: &CoolingModel, temp_c: f64) -> Measurement {
    Measurement::new(
        m.id(),
        m.performance().clone(),
        cooling.facility_power_at(m.power(), temp_c),
        m.time(),
    )
    .expect("facility power remains positive")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let reference = tgi::harness::system_g_reference();
    let cluster = ClusterSpec::fire();
    let engine = ExecutionEngine::new(cluster);
    let measurements: Vec<Measurement> = engine
        .run_suite(&Workload::fire_suite(), 128)
        .into_iter()
        .map(|r| r.measurement())
        .collect();

    let it_tgi = Tgi::builder()
        .reference(reference.clone())
        .measurements(measurements.iter().cloned())
        .compute()?;
    println!("TGI at the PDU (IT power only): {:.4}\n", it_tgi.value());

    let rooms = [
        ("legacy machine room", CoolingModel::typical_2012()),
        ("free-cooled facility", CoolingModel::free_cooled()),
    ];

    println!("{:<22} {:>8} {:>8} {:>8} {:>8}", "facility", "10C", "20C", "30C", "40C");
    for (name, cooling) in &rooms {
        print!("{name:<22}");
        for temp in [10.0, 20.0, 30.0, 40.0] {
            let facility_measurements: Vec<Measurement> =
                measurements.iter().map(|m| at_facility(m, cooling, temp)).collect();
            let tgi = Tgi::builder()
                .reference(reference.clone())
                .measurements(facility_measurements)
                .compute()?;
            print!(" {:>8.4}", tgi.value());
        }
        println!("  (PUE {:.2} at design point)", cooling.base_pue);
    }

    println!(
        "\nThe same cluster looks up to {:.0}% less green once its cooling bill is\n\
         included — the center-wide view the paper proposes as future work.",
        (1.0 - 1.0 / CoolingModel::typical_2012().pue_at(30.0)) * 100.0
    );
    Ok(())
}
