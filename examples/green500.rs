//! Synthetic Green500: generate a Top500-scale fleet and rank it by TGI.
//!
//! ```sh
//! cargo run --release --example green500
//! ```
//!
//! Where `green500_ranking` ranks a handful of hand-built Fire variants,
//! this example runs the machinery at list scale: 500 clusters sampled
//! from Top500-style distributions ([`tgi::cluster::FleetConfig`]), every
//! one simulated and scored across the paper's full weighting × mean grid
//! in one parallel [`tgi::harness::FleetSweep`], then the energy-weighted
//! geometric column sorted into a Green500-style top 20.

use tgi::cluster::{FleetConfig, Workload};
use tgi::core::{MeanKind, Weighting};
use tgi::harness::{system_g_reference, FleetSweep};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 500 systems, deterministically sampled from seed 42: log-normal node
    // counts and idle power, categorical interconnects and socket configs,
    // facility PUE — every spec valid and runnable.
    let fleet = FleetConfig::new(42).generate();

    let sweep = FleetSweep::new().fleet(fleet).suite("fire", Workload::fire_suite()).paper_axes();
    let reference = system_g_reference();
    let table = sweep.run(&reference)?;

    // Pick the energy-weighted geometric-mean column for the headline list.
    let weighting = table
        .weightings()
        .iter()
        .position(|w| *w == Weighting::Energy)
        .expect("paper axes include the energy weighting");
    let mean = table
        .means()
        .iter()
        .position(|m| *m == MeanKind::Geometric)
        .expect("paper axes include the geometric mean");
    let ranking = table.green500_ranking(0, weighting, mean)?;

    println!(
        "Synthetic Green500 — {} systems vs {}, energy-weighted geometric TGI",
        table.systems().len(),
        table.reference_name()
    );
    println!(
        "{:>4}  {:<12} {:>6} {:>8} {:>5} {:>10}",
        "Rank", "System", "Nodes", "Cores", "PUE", "TGI"
    );
    for (rank, entry) in ranking.entries().iter().take(20).enumerate() {
        let s = table
            .systems()
            .iter()
            .position(|name| name == &entry.name)
            .expect("ranked system is in the table");
        println!(
            "{:>4}  {:<12} {:>6} {:>8} {:>5.2} {:>10.4}",
            rank + 1,
            entry.name,
            table.nodes()[s],
            table.cores()[s],
            table.pues()[s],
            entry.tgi
        );
    }

    let (_, misses) = sweep.memo_stats();
    println!(
        "\n{} cells from {} simulations ({} duplicates) — all {} weighting × mean \
         columns share each system's one simulated suite.",
        table.len(),
        misses,
        sweep.duplicate_simulations(),
        table.weightings().len() * table.means().len()
    );
    Ok(())
}
