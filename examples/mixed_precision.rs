//! Mixed precision as an energy lever: f32 factorization + refinement.
//!
//! ```sh
//! cargo run --release --example mixed_precision
//! ```
//!
//! The decade after the paper made precision the biggest green-HPC lever
//! (HPL-AI / HPL-MxP). The idea: factor in f32 — half the memory traffic —
//! then recover full f64 accuracy with a few cheap refinement sweeps. This
//! example solves the same system both ways under the background power
//! sampler and reports time, energy, and the achieved residual, plus the
//! honest failure mode: an ill-conditioned system where the f32 factors
//! cannot converge and the solver says so.

use std::sync::Arc;
use std::time::{Duration, Instant};
use tgi::kernels::matrix::Matrix;
use tgi::kernels::{lu, mixed};
use tgi::power::sampler::ModeledSource;
use tgi::power::{BackgroundSampler, NodePowerModel, UtilizationSample};

fn metered<T>(work: impl FnOnce() -> T) -> (T, f64, f64) {
    let source = Arc::new(
        ModeledSource::new(NodePowerModel::fire_node())
            .with_assumed(UtilizationSample::cpu_bound(1.0)),
    );
    let sampler = BackgroundSampler::start(source, Duration::from_millis(20));
    let start = Instant::now();
    let out = work();
    let secs = start.elapsed().as_secs_f64();
    let trace = sampler.stop();
    (out, secs, trace.average_power().value() * secs)
}

fn main() {
    let n = 512;
    let a = Matrix::random(n, n, 2026);
    let b: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.37).sin()).collect();

    let (x64, t64, e64) = metered(|| lu::solve(a.clone(), &b, 64).expect("non-singular"));
    let (ir, tir, eir) = metered(|| mixed::solve_refined(&a, &b, 64, 10).expect("non-singular"));

    println!("dense solve, N = {n}:\n");
    println!("{:<28} {:>9} {:>11} {:>12}", "method", "time (s)", "energy (J)", "residual");
    let res64 = tgi::kernels::hpl::scaled_residual(&a, &x64, &b);
    println!("{:<28} {:>9.3} {:>11.1} {:>12.3e}", "f64 LU", t64, e64, res64);
    println!(
        "{:<28} {:>9.3} {:>11.1} {:>12.3e}  ({} refinement sweeps)",
        "f32 LU + refinement", tir, eir, ir.scaled_residual, ir.iterations
    );
    println!(
        "\nenergy ratio: {:.2}x — and on hardware with 2x-wide f32 SIMD or tensor\n\
         units the gap multiplies; both solutions pass HPL's residual test.",
        e64 / eir.max(1e-9)
    );

    // The honest failure mode.
    let h = Matrix::from_fn(12, 12, |i, j| 1.0 / (i + j + 1) as f64);
    let bh = vec![1.0; 12];
    let r = mixed::solve_refined(&h, &bh, 4, 25).expect("factorable");
    println!(
        "\nHilbert(12), κ ≈ 1e16: refinement reports converged = {} (residual {:.1e})\n\
         — the solver refuses to silently return a wrong answer.",
        r.converged, r.scaled_residual
    );
}
