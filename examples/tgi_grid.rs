//! The full TGI study grid in one shot: Fire vs Fire-GPU, every weighting
//! scheme × every mean kind, across the paper's core-count sweep.
//!
//! ```sh
//! cargo run --release --example tgi_grid
//! ```
//!
//! Figures 5/6 and Table II each slice one axis of the same underlying
//! question. `GridSweep` evaluates the whole (cluster × cores × weighting
//! × mean) grid at once: cluster simulations are memoized per
//! (workload set, cores), the (cluster, cores) points run in parallel, and
//! every cell is bit-identical to the equivalent `Tgi::builder` call.

use tgi::cluster::ClusterSpec;
use tgi::harness::sweep::FIRE_CORE_COUNTS;
use tgi::harness::{system_g_reference, GridSweep};

fn main() {
    let sweep = GridSweep::new()
        .cluster("Fire", ClusterSpec::fire())
        .cluster("Fire-GPU", ClusterSpec::fire_gpu())
        .cores(&FIRE_CORE_COUNTS)
        .paper_axes();

    let reference = system_g_reference();
    let table = sweep.run(&reference).expect("grid evaluates against SystemG");
    let (hits, misses) = sweep.memo_stats();
    println!(
        "{} cells = {} clusters x {} core counts x {} weightings x {} means \
         ({misses} simulations run, {hits} memo hits)\n",
        table.len(),
        table.clusters().len(),
        table.cores().len(),
        table.weightings().len(),
        table.means().len(),
    );

    // The paper's headline slice: every weighting × mean table at full scale.
    for cluster in table.clusters() {
        let full = *table.cores().last().expect("non-empty axis");
        println!("{}", table.table_at(cluster, full).expect("cell exists").to_text());
    }

    // And the Figure-5 shape for the arithmetic cell, one series per cluster.
    println!("{}", table.figure(0, 0).to_text());
}
