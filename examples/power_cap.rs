//! Running under a power budget: capping via DVFS.
//!
//! ```sh
//! cargo run --example power_cap
//! ```
//!
//! A facility cap forces the cluster below its natural draw; the engine
//! bisects the DVFS range to find the highest clock that fits. The sweep
//! shows the classic result: moderate caps cost little performance (cubic
//! dynamic-power savings vs linear slowdown), and the energy per job can
//! even *improve* under a cap.

use tgi::cluster::{power_cap, ClusterSpec, ExecutionEngine, Workload};

fn main() {
    let fire = ClusterSpec::fire();
    let workload = Workload::Hpl { n: 57_344 };
    let full = ExecutionEngine::new(fire.clone()).run(workload, 128);
    let base_power = full.average_power.value();

    println!(
        "uncapped: {:.1} GFLOPS at {:.0} W ({:.1} MJ per solve)\n",
        full.performance.as_gflops(),
        base_power,
        full.energy_joules / 1e6
    );
    println!(
        "{:>10} {:>8} {:>12} {:>10} {:>12} {:>12}",
        "cap (W)", "clock", "GFLOPS", "perf %", "energy (MJ)", "MFLOPS/W"
    );
    for frac in [1.0, 0.95, 0.9, 0.85, 0.8, 0.75, 0.7] {
        let cap = base_power * frac;
        let capped = power_cap::run_capped(&fire, workload, 128, cap);
        let run = &capped.run;
        println!(
            "{:>10.0} {:>7.0}% {:>12.1} {:>9.1}% {:>12.2} {:>12.2}{}",
            cap,
            capped.freq_ratio * 100.0,
            run.performance.as_gflops(),
            run.performance.as_gflops() / full.performance.as_gflops() * 100.0,
            run.energy_joules / 1e6,
            run.energy_efficiency() / 1e6,
            if capped.satisfied { "" } else { "  (cap unsatisfiable)" }
        );
    }
    println!(
        "\nEach watt shaved costs less than a watt's worth of performance (cubic\n\
         dynamic power vs linear slowdown), so MFLOPS/W and energy-per-solve both\n\
         improve monotonically toward the DVFS sweep's (ext-dvfs) optimum clock."
    );
}
