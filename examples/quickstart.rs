//! Quickstart: compute The Green Index of a system in ~30 lines.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Follows the paper's four-step algorithm (§II): per-benchmark energy
//! efficiency → relative efficiency against a reference system → weights →
//! weighted sum.

use tgi::prelude::*;

fn main() -> Result<(), TgiError> {
    // 1. Reference system measurements (performance, average power, time).
    //    In a real deployment these come from running the suite once on the
    //    agreed reference machine.
    let reference = ReferenceSystem::builder("SystemG")
        .benchmark(Measurement::new(
            "hpl",
            Perf::tflops(8.1),
            Watts::new(30_000.0),
            Seconds::new(7_200.0),
        )?)
        .benchmark(Measurement::new(
            "stream",
            Perf::gbps(828.0),
            Watts::new(28_000.0),
            Seconds::new(600.0),
        )?)
        .benchmark(Measurement::new(
            "iozone",
            Perf::mbps(462.0),
            Watts::new(23_700.0),
            Seconds::new(900.0),
        )?)
        .build()?;

    // 2. The system under test (the paper's Fire cluster at full scale).
    let fire_suite = vec![
        Measurement::new("hpl", Perf::gflops(90.0), Watts::new(2_900.0), Seconds::new(1_400.0))?,
        Measurement::new("stream", Perf::gbps(168.0), Watts::new(1_400.0), Seconds::new(750.0))?,
        Measurement::new("iozone", Perf::mbps(341.0), Watts::new(1_150.0), Seconds::new(125.0))?,
    ];

    // 3–4. Weights + weighted sum. The arithmetic mean is the paper's
    //      default; try `Weighting::Time` / `Energy` / `Power` as well.
    let tgi = Tgi::builder()
        .reference(reference)
        .weighting(Weighting::Arithmetic)
        .measurements(fire_suite)
        .compute()?;

    println!("TGI({} weights) vs {} = {:.4}\n", tgi.weighting(), tgi.reference_name(), tgi.value());
    println!("{:<10} {:>14} {:>14} {:>10} {:>10}", "benchmark", "EE", "EE(ref)", "REE", "weight");
    for c in tgi.contributions() {
        println!(
            "{:<10} {:>14.4e} {:>14.4e} {:>10.4} {:>10.4}",
            c.benchmark, c.energy_efficiency, c.reference_efficiency, c.ree, c.weight
        );
    }
    if let Some(worst) = tgi.least_efficient() {
        println!(
            "\nleast-efficient subsystem: {} (REE {:.3}) — the paper expects TGI to be\nbound by this benchmark's behaviour",
            worst.benchmark, worst.ree
        );
    }
    Ok(())
}
