//! Meter-log workflow: record, archive, reload, analyze.
//!
//! ```sh
//! cargo run --example meter_log_analysis
//! ```
//!
//! The paper's methodology ends at a wall meter's log file. This example
//! walks the full loop the way a measurement study does: simulate a
//! three-phase workload on a Fire node, record it through the simulated
//! Watts Up? PRO, archive the trace as a `seconds,watts` CSV (the format
//! real loggers emit), reload it, and run the analysis pass — idle
//! estimation, phase segmentation, and energy accounting.

use tgi::power::analysis;
use tgi::power::meter::{PowerMeter, WattsUpPro};
use tgi::power::{trace_io, NodePowerModel, UtilizationProfile, UtilizationSample};
use tgi::prelude::Watts;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A three-phase job: compute burst, memory sweep, I/O flush.
    let node = NodePowerModel::fire_node();
    let mut profile = UtilizationProfile::new();
    profile.push(40.0, UtilizationSample::cpu_bound(1.0));
    profile.push(25.0, UtilizationSample::memory_bound(0.9));
    profile.push(15.0, UtilizationSample::io_bound(0.8));
    profile.push(10.0, UtilizationSample::IDLE);

    let ground_truth = |t: f64| node.wall_power(profile.at(t));
    let mut meter = WattsUpPro::new(2024);
    let trace = meter.record(&ground_truth, profile.duration_s());

    // Archive and reload, as a study would.
    let path = std::env::temp_dir().join("tgi_example_meter.csv");
    trace_io::write_log_file(&trace, &path)?;
    let reloaded = trace_io::read_log(&path)?;
    println!("archived {} samples to {} and reloaded them\n", reloaded.len(), path.display());

    println!("energy   : {}", reloaded.energy());
    println!("average  : {}", reloaded.average_power());
    println!("peak     : {}", reloaded.peak_power());
    println!("idle est.: {} (5th percentile)", analysis::estimate_idle(&reloaded));
    println!("median   : {}", analysis::percentile(&reloaded, 50.0));

    println!("\ndetected phases (threshold 25 W):");
    for phase in analysis::segment_phases(&reloaded, Watts::new(25.0)) {
        println!("  {:>6.1}s – {:>6.1}s  at {:>6.1} W", phase.start_s, phase.end_s, phase.mean_w);
    }
    println!(
        "\nThe segmentation recovers the job's compute/memory/io/idle structure\n\
         from power alone — the same signal the paper's meter records."
    );
    std::fs::remove_file(&path)?;
    Ok(())
}
