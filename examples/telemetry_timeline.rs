//! Observability quickstart: record a full run timeline and metrics.
//!
//! ```sh
//! cargo run --release --example telemetry_timeline
//! ```
//!
//! Installs the telemetry collector, runs a small simulated suite plus a
//! grid sweep, then writes `results/trace.json` (Chrome `trace_event`
//! JSON — drag it into <https://ui.perfetto.dev> or `chrome://tracing`)
//! and `results/metrics.prom` (Prometheus text exposition), and prints
//! the end-of-run span/metric summary.

use tgi::cluster::{ClusterSpec, Workload};
use tgi::harness::{system_g_reference, GridSweep};
use tgi::suite::{BenchmarkSuite, SimulatedBenchmark, SuiteRunner};

fn main() {
    assert!(
        tgi::telemetry::install(),
        "collector must install (build without --no-default-features)"
    );

    // A small simulated suite: the paper's three benchmarks on Fire,
    // two repeats each, run through the resilient SuiteRunner.
    let cluster = ClusterSpec::fire();
    let suite = BenchmarkSuite::new()
        .with(SimulatedBenchmark::new(cluster.clone(), Workload::fire_suite()[0], 64))
        .with(SimulatedBenchmark::new(cluster.clone(), Workload::fire_suite()[1], 64))
        .with(SimulatedBenchmark::new(cluster.clone(), Workload::fire_suite()[2], 8));
    let report = SuiteRunner::new().repeats(2).run(&suite);
    println!("suite: {} items, {} succeeded", report.entries.len(), report.measurements().len());

    // A grid sweep on top: parallel evaluation plus memoized simulations,
    // so the timeline shows pool activity and the memo counters move.
    let sweep =
        GridSweep::new().cluster("Fire", ClusterSpec::fire()).cores(&[32, 64, 128]).paper_axes();
    let table = sweep.run(&system_g_reference()).expect("grid evaluates");
    let (hits, misses) = sweep.memo_stats();
    println!("grid: {} cells ({misses} simulations, {hits} memo hits)", table.len());

    // Stop recording and export.
    let events = tgi::telemetry::uninstall();
    let snapshot = tgi::telemetry::metrics::snapshot();
    tgi::telemetry::export::write_chrome_trace("results/trace.json", &events)
        .expect("write results/trace.json");
    tgi::telemetry::export::write_prometheus("results/metrics.prom", &snapshot)
        .expect("write results/metrics.prom");
    println!(
        "wrote results/trace.json ({} events; open in chrome://tracing or ui.perfetto.dev)",
        events.len()
    );
    println!("wrote results/metrics.prom");
    println!();
    print!("{}", tgi::telemetry::summary(&events, &snapshot));
}
