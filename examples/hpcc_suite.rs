//! The seven-test suite: TGI over an HPCC-style benchmark set.
//!
//! ```sh
//! cargo run --release --example hpcc_suite
//! ```
//!
//! §I of the paper holds up the HPC Challenge suite (seven tests) as the
//! performance-side model for multi-component benchmarking, and §II makes
//! TGI explicitly open-ended: "TGI is neither limited by the metrics used
//! in each benchmark nor by the number of benchmarks." This example runs
//! all seven native kernels — HPL, DGEMM, STREAM, PTRANS, RandomAccess,
//! FFT, and the b_eff-style communication test — and aggregates them into
//! one Green Index, with per-benchmark weights surfaced so the 7-way
//! decomposition is visible.

use tgi::prelude::*;
use tgi::suite::{SuiteRunner, SuiteSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = SuiteSpec::hpcc_style();
    println!("running the 7-test HPCC-style suite natively...\n");

    // Reference: this machine's own first pass (SPEC-style self-reference;
    // swap in a community reference file via `tgi-native --reference`).
    let reference = spec.build().run_as_reference("first-pass")?;
    // Second pass through the resilient runner: one retry for transient
    // I/O errors, and a report that records attempts per benchmark.
    let report = SuiteRunner::new().retries(1).run(&spec.build());
    let attempts: usize = report.entries.iter().map(|e| e.attempts).sum();
    let measurements = report.into_result()?;
    println!("second pass took {attempts} attempts across {} tests\n", measurements.len());

    println!(
        "{:<8} {:>12} {:>18} {:>12} {:>14}",
        "test", "subsystem", "performance", "power", "EE (unit/W)"
    );
    let subsystems = ["cpu", "cpu", "memory", "memory", "memory", "cpu+memory", "network"];
    for (m, sub) in measurements.iter().zip(subsystems) {
        println!(
            "{:<8} {:>12} {:>18} {:>12} {:>14.4e}",
            m.id(),
            sub,
            m.performance().to_string(),
            m.power().to_string(),
            m.energy_efficiency()
        );
    }

    let tgi = Tgi::builder().reference(reference).measurements(measurements).compute()?;
    println!("\nTGI over all seven tests = {:.4} (second pass vs first pass)", tgi.value());
    println!("\nper-test decomposition (weight × REE = contribution):");
    for c in tgi.contributions() {
        println!(
            "  {:<8} w={:.4}  REE={:.4}  -> {:.4}",
            c.benchmark, c.weight, c.ree, c.contribution
        );
    }
    if let Some(worst) = tgi.least_efficient() {
        println!(
            "\nleast-repeatable subsystem this run: {} (REE {:.3})",
            worst.benchmark, worst.ree
        );
    }
    Ok(())
}
