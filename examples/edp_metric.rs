//! TGI with an alternative efficiency metric: the energy-delay product.
//!
//! ```sh
//! cargo run --example edp_metric
//! ```
//!
//! §II: "although we use the performance-per-watt metric for energy
//! efficiency in this paper, the methodology used for computing TGI can be
//! used with any other energy-efficient metric, such as the energy-delay
//! product." The [`EfficiencyMetric`] trait makes that a one-line swap.
//! This example scores two systems — one fast-and-hungry, one slow-and-
//! frugal — under perf/W, 1/EDP, and 1/ED²P, showing where each wins.

use tgi::prelude::*;

fn suite(label: &str, speed: f64, watts: f64) -> Vec<Measurement> {
    // `speed` scales performance up and time down; `watts` is average draw.
    let t = |base: f64| Seconds::new(base / speed);
    vec![
        Measurement::new(
            format!("hpl{}", ""),
            Perf::gflops(90.0 * speed),
            Watts::new(watts),
            t(1400.0),
        )
        .unwrap_or_else(|e| panic!("{label} hpl: {e}")),
        Measurement::new("stream", Perf::gbps(160.0 * speed), Watts::new(watts * 0.9), t(700.0))
            .unwrap_or_else(|e| panic!("{label} stream: {e}")),
        Measurement::new("iozone", Perf::mbps(300.0 * speed), Watts::new(watts * 0.8), t(400.0))
            .unwrap_or_else(|e| panic!("{label} iozone: {e}")),
    ]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let reference = ReferenceSystem::builder("reference")
        .benchmark(Measurement::new(
            "hpl",
            Perf::gflops(90.0),
            Watts::new(2900.0),
            Seconds::new(1400.0),
        )?)
        .benchmark(Measurement::new(
            "stream",
            Perf::gbps(160.0),
            Watts::new(2600.0),
            Seconds::new(700.0),
        )?)
        .benchmark(Measurement::new(
            "iozone",
            Perf::mbps(300.0),
            Watts::new(2300.0),
            Seconds::new(400.0),
        )?)
        .build()?;

    // Sprinter: 1.8× the speed at 2.4× the power.
    // Marathoner: 0.8× the speed at 0.5× the power.
    let systems = [
        ("sprinter", suite("sprinter", 1.8, 7000.0)),
        ("marathoner", suite("marathoner", 0.8, 1450.0)),
    ];

    println!("{:<12} {:>12} {:>12} {:>12}", "system", "perf/W", "1/EDP", "1/ED2P");
    for (name, measurements) in &systems {
        let perf_w = Tgi::builder()
            .reference(reference.clone())
            .measurements(measurements.iter().cloned())
            .compute()?;
        let edp = Tgi::builder()
            .metric(EnergyDelayProduct)
            .reference(reference.clone())
            .measurements(measurements.iter().cloned())
            .compute()?;
        let ed2p = Tgi::builder()
            .metric(EnergyDelaySquaredProduct)
            .reference(reference.clone())
            .measurements(measurements.iter().cloned())
            .compute()?;
        println!(
            "{:<12} {:>12.4} {:>12.4} {:>12.4}",
            name,
            perf_w.value(),
            edp.value(),
            ed2p.value()
        );
    }

    println!(
        "\nperf/W favours the frugal marathoner; ED²P's extra delay term pulls the\n\
         ranking back toward the sprinter — choose the metric to match your priorities,\n\
         then let TGI aggregate it across the whole suite."
    );
    Ok(())
}
