//! GPU platforms under TGI — the paper's §VI platform extension.
//!
//! ```sh
//! cargo run --example gpu_cluster
//! ```
//!
//! Accelerators transform FLOPS/W (the Green500 lens) but leave memory and
//! I/O untouched while raising idle power. TGI makes that visible: the same
//! upgrade that multiplies HPL efficiency several-fold can *lower* the
//! system-wide index.

use tgi::harness::{extensions, system_g_reference};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let reference = system_g_reference();

    let comparison = extensions::gpu_platform_comparison(&reference)?;
    println!("{}", comparison.to_text());

    let ranking = extensions::more_systems_ranking(&reference)?;
    println!("== All built-in systems ranked by TGI ==");
    print!("{ranking}");

    println!(
        "\nReading: the GPU upgrade multiplies HPL MFLOPS/W yet *lowers* TGI —\n\
         STREAM and IOzone see the same machine with hotter idle nodes — and a\n\
         GPU system with a slow filesystem ranks below its well-fed twin."
    );
    Ok(())
}
