//! Repeated runs and error bars on TGI.
//!
//! ```sh
//! cargo run --release --example repeated_runs
//! ```
//!
//! One run of a noisy system is not a result: benchmarking methodology
//! (Green500 run rules, SPEC medians) demands repeats. This example runs
//! the native suite several times, aggregates each benchmark's repeats
//! into a [`MeasurementSet`], and reports TGI with a propagated ±2σ
//! interval — the honest way to publish a Green Index.

use tgi::core::repeats::{self, MeasurementSet};
use tgi::prelude::*;
use tgi::suite::SuiteSpec;

const REPEATS: usize = 5;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = SuiteSpec::quick();

    // Reference: one suite run promoted to the reference system.
    let reference = spec.build().run_as_reference("this-machine")?;

    // Repeats, grouped per benchmark.
    let mut sets: Vec<MeasurementSet> = Vec::new();
    for round in 0..REPEATS {
        eprintln!("round {}/{}...", round + 1, REPEATS);
        for m in spec.build().run_all()? {
            match sets.iter_mut().find(|s| s.id() == m.id()) {
                Some(set) => set.push(m)?,
                None => {
                    let mut set = MeasurementSet::new(m.id());
                    set.push(m)?;
                    sets.push(set);
                }
            }
        }
    }

    println!("\nper-benchmark run-to-run dispersion ({REPEATS} runs):");
    println!("{:<10} {:>14} {:>12} {:>8}", "benchmark", "mean EE", "std EE", "CoV");
    for set in &sets {
        println!(
            "{:<10} {:>14.4e} {:>12.4e} {:>7.2}%",
            set.id(),
            set.ee_mean()?,
            set.ee_std()?,
            set.ee_cov()? * 100.0
        );
    }

    for weighting in [Weighting::Arithmetic, Weighting::Energy] {
        let t = repeats::tgi_with_uncertainty(&reference, &sets, weighting.clone())?;
        let (lo, hi) = t.interval95();
        println!(
            "\nTGI ({:<15}) = {:.4} ± {:.4}  (95% ≈ [{:.4}, {:.4}])",
            weighting.to_string(),
            t.value(),
            2.0 * t.std_dev,
            lo,
            hi
        );
    }
    println!(
        "\nSelf-comparison: the interval should bracket 1.0 — if it does not, the\n\
         machine's behaviour drifted between the reference run and the repeats."
    );
    Ok(())
}
