//! HPL as a real distributed program: a native miniature of Figure 2.
//!
//! ```sh
//! cargo run --release --example distributed_hpl
//! ```
//!
//! The paper's Figure 2 plots HPL energy efficiency against the number of
//! MPI processes. This example runs the *actual* distributed solver — LU
//! with row partial pivoting over a column block-cyclic distribution on the
//! mini-MPI runtime — at increasing rank counts on this machine, with
//! modeled power sampled in the background, and prints the same
//! MFLOPS/W-vs-processes series.

use tgi::suite::native::NativeDistributedHpl;
use tgi::suite::Benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 512; // scale up for a serious run

    println!("distributed HPL, N = {n} (validated by the HPL residual test)\n");
    println!("{:>6} {:>12} {:>10} {:>14}", "ranks", "GFLOPS", "power", "MFLOPS/W");
    // Ranks are threads: sweeping past the physical core count still
    // exercises the distribution and message traffic.
    let mut ranks = 1;
    while ranks <= 4 {
        let m = NativeDistributedHpl::new(n, ranks).run()?;
        println!(
            "{:>6} {:>12.3} {:>10} {:>14.3}",
            ranks,
            m.performance().as_gflops(),
            m.power().to_string(),
            m.energy_efficiency() / 1e6,
        );
        ranks *= 2;
    }
    // The general 2D process grid (the paper's exact phrasing: "distributed
    // on a two-dimensional grid using a cyclic scheme"): same problem, three
    // grid shapes, identical answers.
    use tgi::mpi::hpl2d::{run as run2d, Grid2dConfig};
    use tgi::mpi::World;
    println!("\n2D block-cyclic grids on N = 192 (same problem, same answer):");
    println!("{:>8} {:>12} {:>18}", "grid", "residual", "max |Δx| vs 1x1");
    let reference = World::run(1, move |comm| {
        run2d(comm, Grid2dConfig { n: 192, block_size: 16, p: 1, q: 1, seed: 9 })
    })
    .remove(0);
    for (p, q) in [(1usize, 1usize), (2, 2), (1, 4), (4, 1)] {
        let config = Grid2dConfig { n: 192, block_size: 16, p, q, seed: 9 };
        let out = World::run(p * q, move |comm| run2d(comm, config)).remove(0);
        let max_dx =
            out.x.iter().zip(&reference.x).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
        println!("{:>5}x{:<2} {:>12.3e} {:>18.3e}", p, q, out.scaled_residual, max_dx);
        assert!(out.passed);
    }

    println!(
        "\nEvery run solved the same dense system over a block-cyclic\n\
         distribution with pivot reductions, row interchanges, and panel\n\
         broadcasts — the algorithm the paper's HPL runs execute, scaled to\n\
         one machine."
    );
    Ok(())
}
