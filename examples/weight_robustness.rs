//! How robust is a TGI ranking to the choice of weights?
//!
//! ```sh
//! cargo run --example weight_robustness
//! ```
//!
//! The paper makes weights user-assignable (§II advantage 1), which invites
//! the question every procurement committee will ask: *would a different
//! committee, with different weights, have bought the other machine?*
//! `tgi-core`'s sensitivity module answers exactly: because TGI is linear
//! in the weights, the smallest tilt toward any single benchmark that flips
//! a comparison has a closed form — and if the winner Pareto-dominates, no
//! tilt can flip it at all.

use tgi::cluster::{ClusterSpec, ExecutionEngine, Workload};
use tgi::core::sensitivity;
use tgi::core::vector::EfficiencyVector;
use tgi::prelude::*;

fn tgi_of(reference: &ReferenceSystem, cluster: &ClusterSpec) -> (TgiResult, Vec<Measurement>) {
    let measurements: Vec<Measurement> = ExecutionEngine::new(cluster.clone())
        .run_suite(&Workload::fire_suite(), cluster.total_cores())
        .into_iter()
        .map(|r| r.measurement())
        .collect();
    let result = Tgi::builder()
        .reference(reference.clone())
        .measurements(measurements.iter().cloned())
        .compute()
        .expect("suite matches reference");
    (result, measurements)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let reference = tgi::harness::system_g_reference();
    let fire = ClusterSpec::fire();
    let gpu = ClusterSpec::fire_gpu();

    let (fire_tgi, fire_ms) = tgi_of(&reference, &fire);
    let (gpu_tgi, gpu_ms) = tgi_of(&reference, &gpu);

    println!("TGI(Fire)     = {:.4}", fire_tgi.value());
    println!("TGI(Fire-GPU) = {:.4}\n", gpu_tgi.value());

    println!("weight gradients (∂TGI/∂W_i = REE_i):");
    for (name, result) in [("Fire", &fire_tgi), ("Fire-GPU", &gpu_tgi)] {
        let grad = sensitivity::weight_gradient(result);
        let cells: Vec<String> = grad.iter().map(|(b, g)| format!("{b}: {g:.3}")).collect();
        println!("  {:<9} {}", name, cells.join("  "));
    }

    // Pareto view: does either system dominate?
    let va = EfficiencyVector::from_suite(&reference, &fire_ms)?;
    let vb = EfficiencyVector::from_suite(&reference, &gpu_ms)?;
    println!("\nPareto comparison (Fire vs Fire-GPU): {:?}", va.dominance(&vb)?);

    // The exact flip analysis.
    let rob = sensitivity::compare("Fire", &fire_tgi, "Fire-GPU", &gpu_tgi)?;
    println!("\nleader under equal weights: {} (gap {:.4})", rob.leader, rob.gap);
    match rob.flip {
        Some(flip) => println!(
            "cheapest flip: move {:.1}% of the weight toward `{}` and the ranking inverts —\n\
             a committee that values {} that much would buy the other machine.",
            flip.epsilon * 100.0,
            flip.benchmark,
            flip.benchmark
        ),
        None => println!("no single-benchmark tilt can flip this ranking: the leader dominates."),
    }
    Ok(())
}
