//! Weighting TGI for a procurement decision (§II, advantage 1).
//!
//! ```sh
//! cargo run --example procurement_weights
//! ```
//!
//! "Each weighting factor can be assigned a value based on the specific
//! needs of the user, e.g., assigning a higher weighting factor for the
//! memory benchmark if we are evaluating a supercomputer to execute a
//! memory-intensive application." This example evaluates two candidate
//! systems for three different application profiles and shows the purchase
//! decision flipping with the weights.

use tgi::cluster::{ClusterSpec, ExecutionEngine, Workload};
use tgi::prelude::*;

fn measure(cluster: ClusterSpec) -> Vec<Measurement> {
    let cores = cluster.total_cores();
    ExecutionEngine::new(cluster)
        .run_suite(&Workload::fire_suite(), cores)
        .into_iter()
        .map(|r| r.measurement())
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let reference = tgi::harness::system_g_reference();

    // Candidate A: compute-tuned. Candidate B: balanced I/O + memory.
    let mut a = ClusterSpec::fire();
    a.name = "Candidate-A (compute-tuned)".into();
    a.scaling.hpl_serial_efficiency *= 2.2;

    let mut b = ClusterSpec::fire();
    b.name = "Candidate-B (balanced)".into();
    b.shared_fs.server_cap_mbps *= 2.0;
    b.node.mem_bandwidth_gbps *= 1.4;

    let candidates = [(a.name.clone(), measure(a)), (b.name.clone(), measure(b))];

    // Application profiles as explicit weights over (hpl, stream, iozone).
    // Note the CPU profile's extreme weight: because Fire-class machines
    // have a far smaller relative efficiency (REE) on HPL than on the other
    // benchmarks, only a strongly CPU-committed buyer weights it enough to
    // dominate the index.
    let profiles: [(&str, Vec<f64>); 3] = [
        ("CPU-bound simulation", vec![0.92, 0.05, 0.03]),
        ("memory-intensive CFD", vec![0.20, 0.65, 0.15]),
        ("I/O-heavy genomics", vec![0.15, 0.15, 0.70]),
    ];

    println!("{:<24} {:>14} {:>14}", "application profile", "Candidate-A", "Candidate-B");
    for (profile, weights) in &profiles {
        let mut scores = Vec::new();
        for (_, measurements) in &candidates {
            let tgi = Tgi::builder()
                .reference(reference.clone())
                .weighting(Weighting::Custom(weights.clone()))
                .measurements(measurements.iter().cloned())
                .compute()?;
            scores.push(tgi.value());
        }
        let winner = if scores[0] > scores[1] { "A" } else { "B" };
        println!("{:<24} {:>14.4} {:>14.4}   -> pick {winner}", profile, scores[0], scores[1]);
    }

    println!("\nSame machines, same measurements — the weights encode what the buyer runs.");
    Ok(())
}
