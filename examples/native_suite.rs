//! Run the real benchmark kernels on *this* machine and compute its TGI.
//!
//! ```sh
//! cargo run --release --example native_suite
//! ```
//!
//! The kernels from `hpc-kernels` execute for real (LU solve, STREAM triad,
//! file writes, plus the HPCC-style extensions) while a background sampler
//! records modeled wall power — the role the paper's Watts Up? PRO plays.
//! The machine is then scored against a laptop-scale reference.

use std::time::Duration;
use tgi::prelude::*;
use tgi::suite::native::{
    NativeDgemm, NativeFft, NativeGups, NativeHpl, NativeIozone, NativeStream,
};
use tgi::suite::{Benchmark, BenchmarkSuite, SuiteRunner};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Sizes chosen to finish in seconds; scale them up for a serious run.
    let suite = BenchmarkSuite::new()
        .with(NativeHpl::new(768))
        .with(NativeStream::new(1 << 21))
        .with(NativeIozone::new(16 << 20));

    println!("running the paper's three-benchmark suite natively...");
    // The runner retries transient I/O hiccups and bounds each kernel's
    // wall clock; native benchmarks hold the exclusive meter token, so
    // they serialize even when the runner is parallel.
    let report = SuiteRunner::new().retries(2).timeout(Some(Duration::from_secs(300))).run(&suite);
    for entry in &report.entries {
        if let Some(m) = entry.measurement() {
            println!(
                "  {:<8} perf={:<16} power={:<10} time={} ({} attempt(s))",
                m.id(),
                m.performance().to_string(),
                m.power().to_string(),
                m.time(),
                entry.attempts,
            );
        }
    }
    let measurements = report.into_result()?;

    // A fixed reference: a nominal laptop-class machine's suite results.
    // (In practice the community would agree on one reference, as SPEC does.)
    let reference = ReferenceSystem::builder("nominal-laptop")
        .benchmark(Measurement::new(
            "hpl",
            Perf::gflops(2.0),
            Watts::new(180.0),
            Seconds::new(60.0),
        )?)
        .benchmark(Measurement::new(
            "stream",
            Perf::gbps(8.0),
            Watts::new(160.0),
            Seconds::new(30.0),
        )?)
        .benchmark(Measurement::new(
            "iozone",
            Perf::mbps(400.0),
            Watts::new(150.0),
            Seconds::new(30.0),
        )?)
        .build()?;

    for weighting in [Weighting::Arithmetic, Weighting::Time, Weighting::Energy, Weighting::Power] {
        let tgi = Tgi::builder()
            .reference(reference.clone())
            .weighting(weighting.clone())
            .measurements(measurements.iter().cloned())
            .compute()?;
        println!("TGI ({:<16}) = {:.4}", weighting.to_string(), tgi.value());
    }

    // The HPCC-style extension benchmarks (§II: TGI is not limited to three
    // benchmarks) — report their raw energy efficiencies.
    println!("\nextension benchmarks:");
    let extensions: Vec<Box<dyn Benchmark>> = vec![
        Box::new(NativeDgemm::new(256)),
        Box::new(NativeFft::new(1 << 14)),
        Box::new(NativeGups::new(16)),
    ];
    for b in &extensions {
        let m = b.run()?;
        println!(
            "  {:<8} perf={:<16} EE={:.4e} (canonical units per watt)",
            m.id(),
            m.performance().to_string(),
            m.energy_efficiency()
        );
    }
    Ok(())
}
