//! # tgi — The Green Index, end to end
//!
//! Facade crate re-exporting the full TGI reproduction stack:
//!
//! * [`core`] — the TGI metric itself (EE, REE, weights, means,
//!   Pearson correlation, EDP alternative, rankings).
//! * [`kernels`] — native benchmark kernels: HPL-style LU
//!   solver, STREAM, an IOzone-style file benchmark, and HPCC-style
//!   extensions (DGEMM, FFT, PTRANS, RandomAccess).
//! * [`power`] — power-measurement substrate: meter trait, a
//!   simulated Watts Up? PRO ES, component-level node power models, traces,
//!   and a background sampler.
//! * [`cluster`] — machine models for the paper's Fire and
//!   SystemG clusters plus analytic scaling models for the scale sweeps.
//! * [`suite`] — the uniform benchmark-suite layer gluing kernels,
//!   meters, and the simulator to `tgi-core` measurements.
//! * [`mpi`] — a thread-backed message-passing runtime with a
//!   distributed block-cyclic HPL, the form the paper's benchmarks ran in.
//! * [`harness`] — regenerates every figure and table of the
//!   paper's evaluation.
//! * [`telemetry`] — spans, metrics, and exportable run timelines
//!   (Chrome trace_event / Prometheus text) across the whole pipeline.
//!
//! See `examples/quickstart.rs` for the 30-second tour and
//! `examples/telemetry_timeline.rs` for the observability quickstart.

pub use cluster_sim as cluster;
pub use hpc_kernels as kernels;
pub use mini_mpi as mpi;
pub use power_model as power;
pub use tgi_core as core;
pub use tgi_harness as harness;
pub use tgi_suite as suite;
pub use tgi_telemetry as telemetry;

pub use tgi_core::prelude;
