//! Offline shim for `serde_derive`: `#[derive(Serialize, Deserialize)]`
//! implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`,
//! which are unavailable in this offline environment).
//!
//! Supported shapes — exactly what this workspace uses:
//! - named-field structs, with `#[serde(default)]` / `#[serde(default = "path")]`
//! - newtype and tuple structs (serialized transparently / as arrays)
//! - unit structs (serialized as `null`)
//! - unit-only enums (serialized as the variant name string)
//! - externally tagged enums with unit, newtype and struct variants
//! - internally tagged enums via `#[serde(tag = "...")]`, with optional
//!   `#[serde(rename_all = "snake_case")]`
//!
//! Generics, lifetimes, and the wider serde attribute surface are not
//! supported; unsupported input panics at compile time with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the shim's `serde::Serialize` (`to_value`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("serde shim: generated Serialize impl failed to parse")
}

/// Derives the shim's `serde::Deserialize` (`from_value`).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("serde shim: generated Deserialize impl failed to parse")
}

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

#[derive(Default)]
struct ContainerAttrs {
    /// `#[serde(tag = "...")]`: internally tagged enum representation.
    tag: Option<String>,
    /// `#[serde(rename_all = "...")]`: only `snake_case` is supported.
    rename_all: Option<String>,
}

enum DefaultKind {
    /// `#[serde(default)]` → `Default::default()`.
    Std,
    /// `#[serde(default = "path")]` → `path()`.
    Path(String),
}

struct Field {
    name: String,
    default: Option<DefaultKind>,
}

enum VariantKind {
    Unit,
    Newtype,
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    attrs: ContainerAttrs,
    shape: Shape,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut attrs = ContainerAttrs::default();

    // Leading attributes and visibility, collecting container-level serde args.
    let kind = loop {
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = toks.get(i + 1) {
                    for (key, val) in serde_attr_args(g.stream()) {
                        match key.as_str() {
                            "tag" => attrs.tag = val,
                            "rename_all" => attrs.rename_all = val,
                            _ => {}
                        }
                    }
                }
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                // `pub(crate)` and friends carry a parenthesized group.
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct" || id.to_string() == "enum" =>
            {
                break id.to_string();
            }
            other => panic!("serde shim: unsupported item token {other:?}"),
        }
    };
    i += 1;

    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim: expected type name, got {other:?}"),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("serde shim: generic types are not supported (deriving for `{name}`)");
        }
    }

    let shape = if kind == "struct" {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_top_level_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            None => Shape::UnitStruct,
            other => panic!("serde shim: unsupported struct body for `{name}`: {other:?}"),
        }
    } else {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde shim: expected enum body for `{name}`, got {other:?}"),
        }
    };

    Item { name, attrs, shape }
}

/// Extracts `key` / `key = "value"` pairs from a `#[serde(...)]` attribute
/// group (the group spans the outer brackets). Non-serde attributes yield
/// nothing.
fn serde_attr_args(attr_body: TokenStream) -> Vec<(String, Option<String>)> {
    let toks: Vec<TokenTree> = attr_body.into_iter().collect();
    match (toks.first(), toks.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args)))
            if id.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            let mut out = Vec::new();
            let inner: Vec<TokenTree> = args.stream().into_iter().collect();
            let mut j = 0;
            while j < inner.len() {
                if let TokenTree::Ident(key) = &inner[j] {
                    let key = key.to_string();
                    let mut val = None;
                    if let Some(TokenTree::Punct(eq)) = inner.get(j + 1) {
                        if eq.as_char() == '=' {
                            if let Some(TokenTree::Literal(lit)) = inner.get(j + 2) {
                                val = Some(unquote(&lit.to_string()));
                                j += 2;
                            }
                        }
                    }
                    out.push((key, val));
                }
                j += 1;
            }
            out
        }
        _ => Vec::new(),
    }
}

fn unquote(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

/// Parses the fields of a named-field body (struct or struct variant).
fn parse_fields(body: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let mut default = None;
        // Field attributes.
        while let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() != '#' {
                break;
            }
            if let Some(TokenTree::Group(g)) = toks.get(i + 1) {
                for (key, val) in serde_attr_args(g.stream()) {
                    if key == "default" {
                        default = Some(match val {
                            Some(path) => DefaultKind::Path(path),
                            None => DefaultKind::Std,
                        });
                    }
                }
            }
            i += 2;
        }
        // Visibility.
        if let Some(TokenTree::Ident(id)) = toks.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde shim: expected field name, got {other:?}"),
        };
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde shim: expected `:` after field `{name}`, got {other:?}"),
        }
        // Skip the type: everything until a comma outside angle brackets.
        let mut angle_depth = 0i32;
        while let Some(tok) = toks.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        i += 1; // past the comma (or the end)
        fields.push(Field { name, default });
    }
    fields
}

/// Counts fields of a tuple body by top-level commas (angle-bracket aware).
fn count_top_level_fields(body: TokenStream) -> usize {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut trailing_comma = false;
    for tok in &toks {
        trailing_comma = false;
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    count += 1;
                    trailing_comma = true;
                }
                _ => {}
            }
        }
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        // Variant attributes (e.g. `#[default]` for derive(Default)) — skip.
        while let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() != '#' {
                break;
            }
            i += 2;
        }
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde shim: expected variant name, got {other:?}"),
        };
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                if count_top_level_fields(g.stream()) != 1 {
                    panic!("serde shim: only 1-field tuple variants are supported (`{name}`)");
                }
                VariantKind::Newtype
            }
            _ => VariantKind::Unit,
        };
        // Skip to the separating comma.
        while let Some(tok) = toks.get(i) {
            if let TokenTree::Punct(p) = tok {
                if p.as_char() == ',' {
                    break;
                }
            }
            i += 1;
        }
        i += 1;
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------------------
// Renaming
// ---------------------------------------------------------------------------

fn rename_variant(attrs: &ContainerAttrs, variant: &str) -> String {
    match attrs.rename_all.as_deref() {
        Some("snake_case") => to_snake_case(variant),
        Some(other) => panic!("serde shim: rename_all = \"{other}\" is not supported"),
        None => variant.to_string(),
    }
}

fn to_snake_case(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 4);
    for (i, c) in s.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Codegen: Serialize
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let entries = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value(&self.{0}))",
                        f.name
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Object(::std::vec![{entries}])")
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let entries = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Array(::std::vec![{entries}])")
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms = variants
                .iter()
                .map(|v| gen_serialize_variant(name, &item.attrs, v))
                .collect::<Vec<_>>()
                .join("\n            ");
            format!("match self {{\n            {arms}\n        }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n    \
             fn to_value(&self) -> ::serde::Value {{\n        {body}\n    }}\n}}\n"
    )
}

fn gen_serialize_variant(enum_name: &str, attrs: &ContainerAttrs, v: &Variant) -> String {
    let vname = &v.name;
    let wire = rename_variant(attrs, vname);
    match (&v.kind, &attrs.tag) {
        (VariantKind::Unit, None) => format!(
            "{enum_name}::{vname} => ::serde::Value::Str(::std::string::String::from(\"{wire}\")),"
        ),
        (VariantKind::Unit, Some(tag)) => format!(
            "{enum_name}::{vname} => ::serde::Value::Object(::std::vec![\
             (::std::string::String::from(\"{tag}\"), ::serde::Value::Str(::std::string::String::from(\"{wire}\")))]),"
        ),
        (VariantKind::Newtype, None) => format!(
            "{enum_name}::{vname}(inner) => ::serde::Value::Object(::std::vec![\
             (::std::string::String::from(\"{wire}\"), ::serde::Serialize::to_value(inner))]),"
        ),
        (VariantKind::Newtype, Some(_)) => {
            panic!("serde shim: newtype variants are not supported with `tag` (`{enum_name}::{vname}`)")
        }
        (VariantKind::Struct(fields), tag) => {
            let binders = fields.iter().map(|f| f.name.as_str()).collect::<Vec<_>>().join(", ");
            let entries = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value({0}))",
                        f.name
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            match tag {
                None => format!(
                    "{enum_name}::{vname} {{ {binders} }} => ::serde::Value::Object(::std::vec![\
                     (::std::string::String::from(\"{wire}\"), ::serde::Value::Object(::std::vec![{entries}]))]),"
                ),
                Some(tag) => format!(
                    "{enum_name}::{vname} {{ {binders} }} => ::serde::Value::Object(::std::vec![\
                     (::std::string::String::from(\"{tag}\"), ::serde::Value::Str(::std::string::String::from(\"{wire}\"))), {entries}]),"
                ),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Codegen: Deserialize
// ---------------------------------------------------------------------------

/// Expression rebuilding one named field from an `entries` slice binding.
fn field_expr(type_name: &str, f: &Field) -> String {
    let fname = &f.name;
    let missing = match &f.default {
        Some(DefaultKind::Std) => "::std::default::Default::default()".to_string(),
        Some(DefaultKind::Path(path)) => format!("{path}()"),
        None => format!(
            "return ::std::result::Result::Err(::serde::DeError::new(\
             \"missing field `{fname}` in {type_name}\"))"
        ),
    };
    format!(
        "{fname}: match ::serde::Value::get_entry(entries, \"{fname}\") {{\n                \
             ::std::option::Option::Some(x) => ::serde::Deserialize::from_value(x)?,\n                \
             ::std::option::Option::None => {missing},\n            }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let field_exprs = fields
                .iter()
                .map(|f| field_expr(name, f))
                .collect::<Vec<_>>()
                .join(",\n            ");
            format!(
                "let entries = v.as_object().ok_or_else(|| \
                 ::serde::DeError::new(\"expected object for {name}\"))?;\n        \
                 ::std::result::Result::Ok({name} {{\n            {field_exprs}\n        }})"
            )
        }
        Shape::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::TupleStruct(n) => {
            let elems = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "let items = v.as_array().ok_or_else(|| \
                 ::serde::DeError::new(\"expected array for {name}\"))?;\n        \
                 if items.len() != {n} {{\n            \
                 return ::std::result::Result::Err(::serde::DeError::new(\
                 \"expected {n} elements for {name}\"));\n        }}\n        \
                 ::std::result::Result::Ok({name}({elems}))"
            )
        }
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => match &item.attrs.tag {
            Some(tag) => gen_deserialize_tagged_enum(name, &item.attrs, variants, tag),
            None => gen_deserialize_external_enum(name, &item.attrs, variants),
        },
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n    \
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n        \
             {body}\n    }}\n}}\n"
    )
}

fn gen_deserialize_external_enum(
    name: &str,
    attrs: &ContainerAttrs,
    variants: &[Variant],
) -> String {
    let mut unit_arms = String::new();
    let mut data_arms = String::new();
    for v in variants {
        let vname = &v.name;
        let wire = rename_variant(attrs, vname);
        match &v.kind {
            VariantKind::Unit => {
                unit_arms.push_str(&format!(
                    "\n                \"{wire}\" => ::std::result::Result::Ok({name}::{vname}),"
                ));
            }
            VariantKind::Newtype => {
                data_arms.push_str(&format!(
                    "\n                    \"{wire}\" => ::std::result::Result::Ok(\
                     {name}::{vname}(::serde::Deserialize::from_value(inner)?)),"
                ));
            }
            VariantKind::Struct(fields) => {
                let field_exprs = fields
                    .iter()
                    .map(|f| field_expr(name, f))
                    .collect::<Vec<_>>()
                    .join(",\n            ");
                data_arms.push_str(&format!(
                    "\n                    \"{wire}\" => {{\n                        \
                     let entries = inner.as_object().ok_or_else(|| \
                     ::serde::DeError::new(\"expected object body for {name}::{vname}\"))?;\n                        \
                     ::std::result::Result::Ok({name}::{vname} {{\n            {field_exprs}\n        }})\n                    \
                     }}"
                ));
            }
        }
    }
    format!(
        "if let ::std::option::Option::Some(s) = v.as_str() {{\n            \
             return match s {{{unit_arms}\n                \
             other => ::std::result::Result::Err(::serde::DeError::new(\
             ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n            }};\n        }}\n        \
         if let ::std::option::Option::Some(outer) = v.as_object() {{\n            \
             if outer.len() == 1 {{\n                \
                 let (key, inner) = &outer[0];\n                \
                 return match key.as_str() {{{data_arms}\n                    \
                 other => ::std::result::Result::Err(::serde::DeError::new(\
                 ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n                }};\n            }}\n        }}\n        \
         ::std::result::Result::Err(::serde::DeError::new(\"expected a {name} variant\"))"
    )
}

fn gen_deserialize_tagged_enum(
    name: &str,
    attrs: &ContainerAttrs,
    variants: &[Variant],
    tag: &str,
) -> String {
    let mut arms = String::new();
    for v in variants {
        let vname = &v.name;
        let wire = rename_variant(attrs, vname);
        match &v.kind {
            VariantKind::Unit => {
                arms.push_str(&format!(
                    "\n            \"{wire}\" => ::std::result::Result::Ok({name}::{vname}),"
                ));
            }
            VariantKind::Struct(fields) => {
                let field_exprs = fields
                    .iter()
                    .map(|f| field_expr(name, f))
                    .collect::<Vec<_>>()
                    .join(",\n            ");
                arms.push_str(&format!(
                    "\n            \"{wire}\" => ::std::result::Result::Ok({name}::{vname} {{\n            {field_exprs}\n        }}),"
                ));
            }
            VariantKind::Newtype => {
                panic!(
                    "serde shim: newtype variants are not supported with `tag` (`{name}::{vname}`)"
                )
            }
        }
    }
    format!(
        "let entries = v.as_object().ok_or_else(|| \
         ::serde::DeError::new(\"expected object for {name}\"))?;\n        \
         let tag = ::serde::Value::get_entry(entries, \"{tag}\")\n            \
         .and_then(::serde::Value::as_str)\n            \
         .ok_or_else(|| ::serde::DeError::new(\"missing `{tag}` tag for {name}\"))?;\n        \
         match tag {{{arms}\n            \
         other => ::std::result::Result::Err(::serde::DeError::new(\
         ::std::format!(\"unknown `{tag}` value `{{other}}` for {name}\"))),\n        }}"
    )
}
