//! Offline shim for `serde_json`: renders and parses JSON text against the
//! serde shim's [`serde::Value`] data model.
//!
//! Numbers are emitted with Rust's shortest round-trip float formatting, so
//! `f64` values survive a serialize → parse cycle exactly. Integers within
//! `f64`'s exact range render without a trailing `.0`.

use serde::{DeError, Deserialize, Serialize, Value};

/// Serialization or parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

/// Renders a value as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Renders a value as pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Parses a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------------------
// Emitter
// ---------------------------------------------------------------------------

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_number(out, *n)?,
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) -> Result<(), Error> {
    if !n.is_finite() {
        return Err(Error::new(format!("JSON cannot represent non-finite number {n}")));
    }
    if n == n.trunc() && n.abs() < 9.007_199_254_740_992e15 {
        // Exact integer within f64's contiguous range: render without `.0`.
        out.push_str(&format!("{}", n as i64));
    } else {
        // `{:?}` is Rust's shortest representation that round-trips.
        out.push_str(&format!("{n:?}"));
    }
    Ok(())
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this workspace.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&3.0f64).unwrap(), "3");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"hi\"").unwrap(), "hi");
    }

    #[test]
    fn float_precision_round_trips() {
        let x = 0.1f64 + 0.2f64;
        let s = to_string(&x).unwrap();
        assert_eq!(from_str::<f64>(&s).unwrap(), x);
    }

    #[test]
    fn pretty_has_spaced_colon() {
        let v = vec![("a".to_string(), 1.0f64)]
            .into_iter()
            .collect::<std::collections::BTreeMap<_, _>>();
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"a\": 1"), "pretty output was: {s}");
        assert!(s.contains('\n'));
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\nquote\"backslash\\tab\t".to_string();
        let rendered = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&rendered).unwrap(), s);
    }

    #[test]
    fn rejects_malformed() {
        assert!(from_str::<f64>("").is_err());
        assert!(from_str::<f64>("1.5 extra").is_err());
        assert!(from_str::<Vec<f64>>("[1,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn nested_containers() {
        let v: Vec<Vec<f64>> = vec![vec![1.0, 2.0], vec![]];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1,2],[]]");
        assert_eq!(from_str::<Vec<Vec<f64>>>(&s).unwrap(), v);
    }
}
