//! Offline shim for `parking_lot`: `Mutex`/`RwLock` whose lock methods return
//! guards directly (no `Result`), implemented over `std::sync` primitives.
//! Poisoning is ignored, matching parking_lot semantics.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` never returns an error.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, ignoring poison (parking_lot has no poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock whose methods return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
