//! Offline shim for `crossbeam`: the `channel` module subset this workspace
//! uses (`bounded`, `unbounded`, cloneable senders, `recv_timeout`), backed
//! by `std::sync::mpsc`.

pub mod channel {
    //! Multi-producer channels with bounded and unbounded flavours.

    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// The sending half of a channel (cloneable).
    #[derive(Debug)]
    pub enum Sender<T> {
        /// Bounded (rendezvous/buffered) sender.
        Bounded(mpsc::SyncSender<T>),
        /// Unbounded sender.
        Unbounded(mpsc::Sender<T>),
    }

    // Manual impl: the underlying senders clone regardless of `T: Clone`.
    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match self {
                Sender::Bounded(s) => Sender::Bounded(s.clone()),
                Sender::Unbounded(s) => Sender::Unbounded(s.clone()),
            }
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the message is accepted, erring if disconnected.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match self {
                Sender::Bounded(s) => s.send(msg),
                Sender::Unbounded(s) => s.send(msg),
            }
        }
    }

    /// The receiving half of a channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks for the next message; errs when all senders dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Blocks at most `timeout` for the next message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Blocking iterator over messages until disconnect.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    /// A channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender::Bounded(tx), Receiver(rx))
    }

    /// A channel with an unbounded buffer.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender::Unbounded(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn bounded_round_trip() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(7).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
    }

    #[test]
    fn unbounded_clone_senders() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = bounded::<u32>(1);
        assert!(rx.recv_timeout(Duration::from_millis(5)).is_err());
    }

    #[test]
    fn disconnect_errors() {
        let (tx, rx) = unbounded::<u32>();
        drop(tx);
        assert!(rx.recv().is_err());
    }
}
