//! Offline shim for `criterion`: the harness API used by `crates/bench`
//! (`criterion_group!`/`criterion_main!`, benchmark groups, throughput,
//! parameterized IDs) backed by a single-pass wall-clock timer.
//!
//! There is no statistical analysis, warm-up, or HTML report: each benchmark
//! runs `sample_size` iterations and prints the mean time per iteration.
//! This keeps `cargo bench` (and `cargo test --benches`) compiling and
//! running offline.

use std::fmt::Write as _;
use std::time::Instant;

/// Opaque measure of work per iteration, echoed in the output line.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, like `blocked/256`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { text: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id that is just the parameter, like `256`.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { text: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.text)
    }
}

/// Timing context handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    /// Mean seconds per iteration, recorded by [`Bencher::iter`].
    mean_secs: f64,
}

impl Bencher {
    /// Times `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.mean_secs = start.elapsed().as_secs_f64() / self.iters.max(1) as f64;
    }
}

/// Entry point: collects and runs benchmarks.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, id: &str, f: R) -> &mut Self {
        run_one(id, self.sample_size, None, f);
        self
    }
}

/// A named set of benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration count per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Declares how much work one iteration performs.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark identified by `id`.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: R,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, self.throughput, f);
        self
    }

    /// Runs a benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: R,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op beyond upstream API compatibility).
    pub fn finish(self) {}
}

fn run_one<R: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: R,
) {
    let mut b = Bencher { iters: sample_size.max(1) as u64, mean_secs: 0.0 };
    f(&mut b);
    let mut line = format!("{label}: {:.3e} s/iter", b.mean_secs);
    if let Some(t) = throughput {
        if b.mean_secs > 0.0 {
            match t {
                Throughput::Elements(n) => {
                    let _ = write!(line, " ({:.3e} elem/s)", n as f64 / b.mean_secs);
                }
                Throughput::Bytes(n) => {
                    let _ = write!(line, " ({:.3e} B/s)", n as f64 / b.mean_secs);
                }
            }
        }
    }
    println!("{line}");
}

/// Re-export of `std::hint::black_box` for API compatibility.
pub use std::hint::black_box;

/// Declares a group of benchmark functions, as upstream criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
        c.bench_function("top", |b| b.iter(|| black_box(0)));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("blocked", 256).to_string(), "blocked/256");
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
    }
}
