//! Offline shim for the `bytes` crate: a cheaply cloneable, immutable byte
//! container. Only the surface this workspace uses is provided.

use std::sync::Arc;

/// A cheaply cloneable contiguous slice of bytes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty byte buffer.
    pub fn new() -> Self {
        Bytes { data: Arc::from(&[][..]) }
    }

    /// Wraps a static byte slice (no copy semantics guarantee needed here;
    /// the shim copies once into an `Arc`).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes { data: Arc::from(bytes) }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v.into_boxed_slice()) }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_storage() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(&a[..], &b[..]);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn static_and_empty() {
        let s = Bytes::from_static(b"x");
        assert_eq!(s.len(), 1);
        assert!(Bytes::new().is_empty());
    }
}
