//! Opt-in thread affinity and NUMA-aware first-touch initialization.
//!
//! Set `TGI_PIN_THREADS=1` and every pool worker pins itself to CPU
//! `index % available_parallelism()` as it starts (the caller thread —
//! participant 0 of every dispatch — can pin itself with
//! [`pin_current_thread`]). With workers pinned, pages initialized by
//! [`resize_first_touch`] are faulted in by the same worker that later
//! streams them, so on a NUMA machine the OS's first-touch policy places
//! each page on the touching worker's local node.
//!
//! Pinning is Linux-only (raw `sched_setaffinity(2)` — the process links
//! libc already, so no new dependency); elsewhere both entry points are
//! no-ops that report `false`. Unpinned operation is always correct, just
//! potentially slower on multi-socket hosts.

use crate::prelude::*;
use std::mem::MaybeUninit;

/// Environment variable enabling worker-thread pinning
/// (`1` / `true` / `yes` / `on`).
pub const PIN_THREADS_ENV: &str = "TGI_PIN_THREADS";

/// Elements initialized per first-touch task: 64 KiB of `f64`s — a
/// multiple of every page size that still splits a large array across
/// all workers.
const FIRST_TOUCH_CHUNK: usize = 8 << 10;

/// Whether `TGI_PIN_THREADS` asks for pinning. Read per call (not
/// cached): tests toggle it around pool construction.
pub(crate) fn pin_requested() -> bool {
    match std::env::var(PIN_THREADS_ENV) {
        Ok(v) => matches!(v.trim().to_ascii_lowercase().as_str(), "1" | "true" | "yes" | "on"),
        Err(_) => false,
    }
}

#[cfg(target_os = "linux")]
mod sys {
    // `cpu_set_t` is 1024 bits; sixteen u64 words. Bindings are declared
    // here directly because the offline build has no libc crate — the
    // symbols come from the glibc the binary already links.
    pub const MASK_WORDS: usize = 1024 / 64;

    extern "C" {
        // int sched_setaffinity(pid_t pid, size_t cpusetsize, const cpu_set_t *mask);
        pub fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }
}

/// Pins the calling thread to one CPU (`cpu % available_parallelism()`),
/// returning whether the kernel accepted the mask. No-op returning
/// `false` off Linux.
pub fn pin_current_thread(cpu: usize) -> bool {
    let ncpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let cpu = cpu % ncpus;
    pin_to(cpu)
}

#[cfg(target_os = "linux")]
fn pin_to(cpu: usize) -> bool {
    let mut mask = [0u64; sys::MASK_WORDS];
    mask[(cpu / 64) % sys::MASK_WORDS] |= 1u64 << (cpu % 64);
    // SAFETY: pid 0 addresses the calling thread; the mask is a live,
    // correctly-sized buffer for the whole call.
    let rc = unsafe { sys::sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) };
    rc == 0
}

#[cfg(not(target_os = "linux"))]
fn pin_to(_cpu: usize) -> bool {
    false
}

/// Clears `vec` and grows it to `new_len` copies of `value`, writing the
/// fresh elements **in parallel chunks** so each pool worker first-touches
/// the pages it initializes. Combined with `TGI_PIN_THREADS=1` this places
/// pages NUMA-locally; without pinning it is simply a parallel fill.
///
/// The chunk grid matches the kernels' own `par_chunks_mut` dispatch, so
/// the worker that initializes a region is (statistically) the one that
/// later streams it.
pub fn resize_first_touch<T: Copy + Send + Sync>(vec: &mut Vec<T>, new_len: usize, value: T) {
    vec.clear();
    vec.reserve_exact(new_len);
    let spare = &mut vec.spare_capacity_mut()[..new_len];
    spare.par_chunks_mut(FIRST_TOUCH_CHUNK).for_each(|chunk| {
        for slot in chunk {
            *slot = MaybeUninit::new(value);
        }
    });
    // SAFETY: every element in 0..new_len was initialized by exactly one
    // chunk above (par_chunks_mut partitions the spare capacity), and
    // capacity was reserved up front.
    unsafe { vec.set_len(new_len) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resize_first_touch_fills_exactly() {
        for n in [0usize, 1, 7, FIRST_TOUCH_CHUNK - 1, FIRST_TOUCH_CHUNK, 3 * FIRST_TOUCH_CHUNK + 5]
        {
            let mut v: Vec<f64> = vec![99.0; 3];
            resize_first_touch(&mut v, n, 1.5);
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&x| x == 1.5), "n={n}");
        }
    }

    #[test]
    fn resize_first_touch_discards_old_contents() {
        let mut v = vec![1u64, 2, 3, 4, 5];
        resize_first_touch(&mut v, 2, 0u64);
        assert_eq!(v, vec![0, 0]);
    }

    #[test]
    fn pin_current_thread_is_safe_to_call() {
        // Accept either outcome (containers may forbid affinity calls);
        // the contract under test is "never crashes, in-range CPU".
        let _ = pin_current_thread(0);
        let _ = pin_current_thread(usize::MAX);
    }

    #[test]
    fn pin_env_parsing() {
        // Avoid mutating the process env (other tests read it): parse
        // logic is exercised through the matcher's accepted spellings.
        for v in ["1", "true", "YES", " on "] {
            let norm = v.trim().to_ascii_lowercase();
            assert!(matches!(norm.as_str(), "1" | "true" | "yes" | "on"), "{v}");
        }
    }
}
