//! The thread-pool core: a lazily-initialized global registry of
//! `std::thread` workers plus explicitly-built pools ([`ThreadPool`]),
//! a work-sharing [`join`], and the indexed dispatch the parallel
//! iterators drive through.
//!
//! ## Execution model
//!
//! * Each [`Registry`] owns `n − 1` worker threads (the caller is the
//!   n-th participant) and one shared FIFO injector queue guarded by a
//!   mutex + condvar. Workers block on the condvar when idle.
//! * [`join`] pushes the right-hand closure onto the current registry's
//!   queue, runs the left-hand closure inline, then *helps*: while the
//!   right half is pending or running elsewhere, the caller pops and
//!   executes other queued jobs instead of blocking — this is the
//!   work-stealing discipline that keeps nested joins deadlock-free
//!   (every waiter makes global progress).
//! * Jobs borrow stack data from their spawner. The single `unsafe`
//!   surface of this crate is the lifetime erasure in [`JobRef`]; it is
//!   sound because the spawner never leaves `join` — by return **or by
//!   unwind** — until the job is reclaimed from the queue or its latch
//!   is set, so the borrowed frame outlives every access (the same
//!   argument rayon itself makes).
//! * The pool size comes from `TGI_NUM_THREADS` (if set to a positive
//!   integer) or `std::thread::available_parallelism()`. A size of 1
//!   spawns no workers at all: every entry point degenerates to plain
//!   sequential execution, which is what `TGI_NUM_THREADS=1` promises.
//!
//! Panics inside a job are caught on the worker, carried back through
//! the latch, and resumed on the thread that owns the join — a panic in
//! a kernel closure therefore unwinds the caller exactly as the
//! sequential shim did, and never kills a pool worker. A panic in the
//! *inline* half of a join first reclaims (or waits out) the spawned
//! half before unwinding, so no worker is ever left holding a pointer
//! into a dead frame.

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};
use std::thread;
use std::time::Duration;

/// Environment variable overriding the global pool size.
pub const NUM_THREADS_ENV: &str = "TGI_NUM_THREADS";

// ---------------------------------------------------------------------------
// Registry: the shared state of one pool.
// ---------------------------------------------------------------------------

/// A type-erased pointer to a [`StackJob`] living on a spawner's stack.
///
/// Soundness: the spawner blocks (while helping) until the job's latch
/// is set, and the latch is set only after `execute` finishes touching
/// the job, so the pointee is always alive when dereferenced.
#[derive(Clone, Copy)]
struct JobRef {
    execute: unsafe fn(*const ()),
    data: *const (),
}

// SAFETY: a JobRef is only ever executed once, and the StackJob it
// points to synchronizes hand-off through its latch; the closures it
// carries are constrained to `Send` by `join`'s bounds.
unsafe impl Send for JobRef {}

struct Shared {
    queue: VecDeque<JobRef>,
    terminating: bool,
}

pub(crate) struct Registry {
    shared: Mutex<Shared>,
    job_ready: Condvar,
    num_threads: usize,
}

impl Registry {
    fn new(num_threads: usize) -> Arc<Registry> {
        let num_threads = num_threads.max(1);
        let registry = Arc::new(Registry {
            shared: Mutex::new(Shared { queue: VecDeque::new(), terminating: false }),
            job_ready: Condvar::new(),
            num_threads,
        });
        // The caller of every parallel entry point participates, so a
        // pool of size n needs only n − 1 dedicated workers.
        for i in 1..num_threads {
            let reg = Arc::clone(&registry);
            thread::Builder::new()
                .name(format!("tgi-rayon-{i}"))
                .spawn(move || reg.worker_loop(i))
                .expect("failed to spawn pool worker thread");
        }
        registry
    }

    /// The blocking loop each dedicated worker runs.
    fn worker_loop(self: Arc<Registry>, index: usize) {
        WORKER_REGISTRY.with(|cell| cell.set(Arc::as_ptr(&self) as usize));
        // Opt-in affinity: worker i takes CPU i (the caller thread is
        // participant 0), wrapping on oversubscribed pools. Best-effort —
        // a refused mask just means unpinned operation.
        if crate::affinity::pin_requested() {
            let _ = crate::affinity::pin_current_thread(index);
        }
        // Per-worker busy-time gauge, resolved lazily so an uninstrumented
        // run never touches the metrics registry.
        let mut busy_gauge = None;
        loop {
            let job = {
                let mut shared = self.shared.lock().expect("pool queue poisoned");
                loop {
                    if let Some(job) = shared.queue.pop_front() {
                        break Some(job);
                    }
                    if shared.terminating {
                        break None;
                    }
                    shared = self.job_ready.wait(shared).expect("pool queue poisoned");
                }
            };
            match job {
                // SAFETY: see JobRef — the spawner keeps the pointee
                // alive until the latch this call sets.
                Some(job) => {
                    if tgi_telemetry::enabled() {
                        let started = std::time::Instant::now();
                        unsafe { (job.execute)(job.data) }
                        let busy = started.elapsed().as_secs_f64();
                        tgi_telemetry::counter!("tgi_pool_jobs_total").inc();
                        tgi_telemetry::counter!("tgi_pool_steals_total").inc();
                        tgi_telemetry::gauge!("tgi_pool_busy_seconds").add(busy);
                        busy_gauge
                            .get_or_insert_with(|| {
                                tgi_telemetry::metrics::gauge(&format!(
                                    "tgi_pool_worker_{index}_busy_seconds"
                                ))
                            })
                            .add(busy);
                    } else {
                        unsafe { (job.execute)(job.data) }
                    }
                }
                None => return,
            }
        }
    }

    fn inject(&self, job: JobRef) {
        let mut shared = self.shared.lock().expect("pool queue poisoned");
        shared.queue.push_back(job);
        drop(shared);
        self.job_ready.notify_one();
    }

    /// Pops one pending job, if any. Used by helpers while they wait.
    fn try_pop(&self) -> Option<JobRef> {
        self.shared.lock().expect("pool queue poisoned").queue.pop_front()
    }

    /// Removes `job` from the queue if nobody has claimed it yet.
    ///
    /// Poison-tolerant: this runs on `join`'s unwind path, where a
    /// second panic would abort the process.
    fn try_reclaim(&self, job: &JobRef) -> bool {
        let mut shared = self.shared.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(pos) = shared.queue.iter().position(|j| std::ptr::eq(j.data, job.data)) {
            shared.queue.remove(pos);
            true
        } else {
            false
        }
    }
}

// ---------------------------------------------------------------------------
// Current-registry resolution.
// ---------------------------------------------------------------------------

thread_local! {
    /// Raw pointer (as usize) to the registry this thread works for:
    /// set permanently on pool workers, temporarily by `install`.
    /// 0 means "no registry" → the global one.
    static WORKER_REGISTRY: Cell<usize> = const { Cell::new(0) };
}

fn global_registry() -> &'static Arc<Registry> {
    static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
    GLOBAL.get_or_init(|| Registry::new(default_num_threads()))
}

/// Pool size: `TGI_NUM_THREADS` if set to a positive integer, else the
/// machine's available parallelism.
fn default_num_threads() -> usize {
    if let Ok(v) = std::env::var(NUM_THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The registry the current thread should dispatch into.
fn current_registry() -> Arc<Registry> {
    let ptr = WORKER_REGISTRY.with(|cell| cell.get());
    if ptr == 0 {
        Arc::clone(global_registry())
    } else {
        // SAFETY: the pointee is alive: for workers, the worker loop
        // holds an Arc for its whole life; for `install` frames, the
        // ThreadPool holds one for the duration of the closure.
        unsafe {
            let reg = ptr as *const Registry;
            Arc::increment_strong_count(reg);
            Arc::from_raw(reg)
        }
    }
}

/// Number of threads in the current pool (the global one unless called
/// inside [`ThreadPool::install`] or on a pool worker).
pub fn current_num_threads() -> usize {
    current_registry().num_threads
}

// ---------------------------------------------------------------------------
// StackJob + join.
// ---------------------------------------------------------------------------

const PENDING: u8 = 0;
const EXECUTING: u8 = 1;
const DONE: u8 = 2;

/// How long a waiter parks on a job's completion condvar before
/// re-checking the queue for newly injected jobs it could help with.
const PARK_TIMEOUT: Duration = Duration::from_micros(200);

/// How many `yield_now` spins a waiter burns before parking: short jobs
/// usually finish within a few quanta, and parking costs a syscall.
const SPINS_BEFORE_PARK: u32 = 8;

/// A job whose closure and result live on the spawning thread's stack.
struct StackJob<F, R> {
    func: Mutex<Option<F>>,
    result: Mutex<Option<thread::Result<R>>>,
    /// Signalled (with `state` already DONE, under the `result` lock)
    /// when the job finishes, so waiters can park instead of spinning.
    done: Condvar,
    state: AtomicU8,
}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    fn new(func: F) -> Self {
        StackJob {
            func: Mutex::new(Some(func)),
            result: Mutex::new(None),
            done: Condvar::new(),
            state: AtomicU8::new(PENDING),
        }
    }

    fn as_job_ref(&self) -> JobRef {
        JobRef { execute: Self::execute, data: self as *const Self as *const () }
    }

    /// Entry point workers call through the type-erased [`JobRef`].
    ///
    /// # Safety
    /// `data` must point to a live `StackJob<F, R>` that has not been
    /// executed yet.
    unsafe fn execute(data: *const ()) {
        let job = unsafe { &*(data as *const Self) };
        job.state.store(EXECUTING, Ordering::Release);
        let func = job.func.lock().expect("job slot poisoned").take();
        let Some(f) = func else {
            // Reclaimed by the spawner between pop and execute: cannot
            // happen (reclaim only succeeds while queued), but be safe.
            return;
        };
        let outcome = panic::catch_unwind(AssertUnwindSafe(f));
        // DONE is stored while the result lock is held: a waiter that
        // observes !DONE under the same lock is therefore guaranteed to
        // receive the notify below — no lost wakeup.
        let mut slot = job.result.lock().expect("job result poisoned");
        *slot = Some(outcome);
        job.state.store(DONE, Ordering::Release);
        drop(slot);
        job.done.notify_all();
    }

    fn run_inline(&self) -> R {
        let f = self.func.lock().expect("job slot poisoned").take().expect("job already taken");
        f()
    }

    /// Waits for a spawned job, executing other queued jobs meanwhile;
    /// propagates the job's result or panic to the caller.
    fn wait_helping(&self, registry: &Registry) -> R {
        self.help_until_done(registry);
        let outcome =
            self.result.lock().expect("job result poisoned").take().expect("done job has a result");
        match outcome {
            Ok(r) => r,
            Err(payload) => panic::resume_unwind(payload),
        }
    }

    /// Waits for a spawned job while the caller is already unwinding:
    /// blocks until no worker can still touch this frame, then discards
    /// the job's result — including any panic payload, since the
    /// caller's own panic is the one being propagated. Poison-tolerant
    /// throughout: a second panic here would abort the process.
    fn wait_quiet(&self, registry: &Registry) {
        self.help_until_done(registry);
        let _ = self.result.lock().unwrap_or_else(PoisonError::into_inner).take();
    }

    /// Drives the pool until this job reaches DONE. While the job is
    /// pending or running elsewhere the caller helps by executing other
    /// queued jobs; once the queue drains it briefly yields, then parks
    /// on the completion condvar (with a short timeout so newly
    /// injected jobs still get helped) instead of burning a core on an
    /// unbounded yield-spin.
    fn help_until_done(&self, registry: &Registry) {
        let mut idle_spins = 0u32;
        while self.state.load(Ordering::Acquire) != DONE {
            match registry.try_pop() {
                // Helping: run someone else's job while we wait.
                // SAFETY: see JobRef.
                Some(job) => {
                    idle_spins = 0;
                    if tgi_telemetry::enabled() {
                        let started = std::time::Instant::now();
                        unsafe { (job.execute)(job.data) }
                        tgi_telemetry::counter!("tgi_pool_jobs_total").inc();
                        tgi_telemetry::counter!("tgi_pool_steals_total").inc();
                        tgi_telemetry::gauge!("tgi_pool_busy_seconds")
                            .add(started.elapsed().as_secs_f64());
                    } else {
                        unsafe { (job.execute)(job.data) }
                    }
                }
                None if idle_spins < SPINS_BEFORE_PARK => {
                    idle_spins += 1;
                    thread::yield_now();
                }
                None => {
                    if tgi_telemetry::enabled() {
                        tgi_telemetry::counter!("tgi_pool_parks_total").inc();
                    }
                    let guard = self.result.lock().unwrap_or_else(PoisonError::into_inner);
                    // Re-check under the lock: execute() sets DONE while
                    // holding it, so seeing !DONE here guarantees the
                    // notify has not fired yet.
                    if self.state.load(Ordering::Acquire) != DONE {
                        let _ = self
                            .done
                            .wait_timeout(guard, PARK_TIMEOUT)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                }
            }
        }
    }
}

/// Runs `a` and `b`, potentially in parallel, returning both results.
///
/// `b` is offered to the current pool; the calling thread runs `a`,
/// then either reclaims `b` (if no worker picked it up) or helps drain
/// the queue until `b` completes. With a pool of size 1 both closures
/// simply run on the caller.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let registry = current_registry();
    if registry.num_threads <= 1 {
        return (a(), b());
    }
    let job_b = StackJob::new(b);
    registry.inject(job_b.as_job_ref());
    // Panic safety: if `a` unwinds while job_b is still queued or
    // running on a worker, the unwind would deallocate the StackJob in
    // this frame while that worker can still reach it through its
    // JobRef (use-after-free). Catch the panic, make the job
    // unreachable — reclaim it from the queue, or wait for the worker
    // to finish with it — and only then resume unwinding.
    let ra = match panic::catch_unwind(AssertUnwindSafe(a)) {
        Ok(ra) => ra,
        Err(payload) => {
            if !registry.try_reclaim(&job_b.as_job_ref()) {
                job_b.wait_quiet(&registry);
            }
            panic::resume_unwind(payload);
        }
    };
    let rb = if registry.try_reclaim(&job_b.as_job_ref()) {
        // Reclaimed before any worker saw it: executed here, so it counts
        // as a job but not as a steal.
        if tgi_telemetry::enabled() {
            tgi_telemetry::counter!("tgi_pool_jobs_total").inc();
        }
        job_b.run_inline()
    } else {
        job_b.wait_helping(&registry)
    };
    (ra, rb)
}

/// How many binary splits a parallel dispatch should perform: enough to
/// give every thread a handful of tasks for dynamic load balancing.
pub(crate) fn split_budget() -> usize {
    let threads = current_num_threads();
    if threads <= 1 {
        0
    } else {
        // ~4 leaves per thread: log2(threads) + 2 split levels.
        (usize::BITS - (threads - 1).leading_zeros()) as usize + 2
    }
}

// ---------------------------------------------------------------------------
// Explicit pools: ThreadPoolBuilder / ThreadPool.
// ---------------------------------------------------------------------------

/// Error building a [`ThreadPool`] (kept for rayon API compatibility;
/// construction cannot currently fail).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for an explicit [`ThreadPool`], mirroring rayon's API.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with default settings (pool sized like the global one).
    pub fn new() -> Self {
        ThreadPoolBuilder { num_threads: 0 }
    }

    /// Sets the pool size; 0 means "use the default sizing rule".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool, spawning its workers.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 { default_num_threads() } else { self.num_threads };
        Ok(ThreadPool { registry: Registry::new(n) })
    }
}

/// An explicitly-built pool. Parallel entry points called inside
/// [`ThreadPool::install`] dispatch into this pool instead of the
/// global one — the hook the oracle tests use to compare kernels at
/// 1, 2, and N threads within one process.
pub struct ThreadPool {
    registry: Arc<Registry>,
}

impl ThreadPool {
    /// Runs `f` with this pool as the current dispatch target.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = WORKER_REGISTRY.with(|cell| {
            let prev = cell.get();
            cell.set(Arc::as_ptr(&self.registry) as usize);
            prev
        });
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                WORKER_REGISTRY.with(|cell| cell.set(self.0));
            }
        }
        let _restore = Restore(prev);
        f()
    }

    /// Number of threads this pool dispatches across.
    pub fn current_num_threads(&self) -> usize {
        self.registry.num_threads
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Wake every worker with the termination flag so their Arcs
        // (and threads) are released; queued jobs have all completed by
        // now because each spawner waits on its latch before returning.
        let mut shared = self.registry.shared.lock().expect("pool queue poisoned");
        shared.terminating = true;
        drop(shared);
        self.registry.job_ready.notify_all();
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool").field("num_threads", &self.registry.num_threads).finish()
    }
}
