//! Genuinely parallel indexed iterators over slices, chunks, ranges,
//! and vectors, with the adaptors the kernels use (`zip`, `enumerate`,
//! `map`) and parallel consumers (`for_each`, `sum`, `count`,
//! `collect`).
//!
//! Every iterator here is an exact-length *splittable producer*: it
//! knows its length and can split itself at an index into two disjoint
//! halves. Consumers drive a producer by recursively splitting it (to a
//! budget of ~4 leaves per pool thread) and running the two halves via
//! [`crate::join`]; each leaf then drains sequentially through a plain
//! std iterator, so the innermost loops stay as vectorizable as the
//! sequential code. Mutable producers (`par_iter_mut`,
//! `par_chunks_mut`) split with `split_at_mut`, so every task owns a
//! disjoint `&mut` region — determinism for kernels like GEMM and
//! PTRANS falls out of that ownership, not of scheduling order.

use crate::pool::{join, split_budget};

// ---------------------------------------------------------------------------
// The core trait.
// ---------------------------------------------------------------------------

/// An exact-length, splittable, sequentially-drainable parallel
/// iterator. This single trait plays the role of rayon's
/// `ParallelIterator`/`IndexedParallelIterator` pair: everything the
/// kernels parallelize over is indexed.
pub trait ParallelIterator: Sized + Send {
    /// The element type.
    type Item: Send;
    /// The sequential iterator one leaf drains through.
    type SeqIter: Iterator<Item = Self::Item>;

    /// Exact number of items left.
    fn len(&self) -> usize;

    /// Whether no items are left.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Splits into `[0, index)` and `[index, len)`.
    fn split_at(self, index: usize) -> (Self, Self);

    /// The sequential form of this iterator (one leaf's work).
    fn into_seq_iter(self) -> Self::SeqIter;

    // --- adaptors -------------------------------------------------------

    /// Pairs items positionally with another parallel iterable.
    fn zip<B: IntoParallelIterator>(self, other: B) -> Zip<Self, B::Iter> {
        Zip { a: self, b: other.into_par_iter() }
    }

    /// Attaches each item's index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: 0, inner: self }
    }

    /// Transforms each item through `f`.
    ///
    /// `f` must be `Clone` because splitting hands a copy to each half
    /// (closures capturing only `Copy`/`Clone`/by-ref state qualify).
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send + Clone,
    {
        Map { inner: self, f }
    }

    // --- consumers ------------------------------------------------------

    /// Consumes every item in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        drive_for_each(self, &f, split_budget());
    }

    /// Sums the items in parallel (associativity-tolerant: exact for
    /// integers; for floats the split points, not the schedule,
    /// determine rounding, so results are reproducible per pool size).
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + std::iter::Sum<S> + Send,
    {
        drive_map_reduce(self, &|leaf: Self::SeqIter| leaf.sum::<S>(), split_budget())
            .into_iter()
            .sum()
    }

    /// Counts the items (trivially `len`, kept for API parity).
    fn count(self) -> usize {
        self.len()
    }

    /// Collects into any `FromIterator` collection, preserving order.
    /// The per-leaf work runs on the pool; the final gather is serial.
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        let leaves =
            drive_map_reduce(self, &|leaf: Self::SeqIter| leaf.collect::<Vec<_>>(), split_budget());
        leaves.into_iter().flatten().collect()
    }
}

/// Recursive splitter for `for_each`: splits while budget remains and
/// there is more than one item, running halves through the pool.
fn drive_for_each<P, F>(p: P, f: &F, budget: usize)
where
    P: ParallelIterator,
    F: Fn(P::Item) + Sync + Send,
{
    if budget == 0 || p.len() <= 1 {
        p.into_seq_iter().for_each(f);
    } else {
        let mid = p.len() / 2;
        let (left, right) = p.split_at(mid);
        join(|| drive_for_each(left, f, budget - 1), || drive_for_each(right, f, budget - 1));
    }
}

/// Recursive splitter that folds each leaf through `f` and returns the
/// per-leaf results in order (the caller reduces them).
fn drive_map_reduce<P, F, T>(p: P, f: &F, budget: usize) -> Vec<T>
where
    P: ParallelIterator,
    F: Fn(P::SeqIter) -> T + Sync + Send,
    T: Send,
{
    if budget == 0 || p.len() <= 1 {
        vec![f(p.into_seq_iter())]
    } else {
        let mid = p.len() / 2;
        let (left, right) = p.split_at(mid);
        let (mut l, r) = join(
            || drive_map_reduce(left, f, budget - 1),
            || drive_map_reduce(right, f, budget - 1),
        );
        l.extend(r);
        l
    }
}

// ---------------------------------------------------------------------------
// Conversion traits (the prelude surface).
// ---------------------------------------------------------------------------

/// Types convertible into a parallel iterator (`Vec`, ranges, and every
/// parallel iterator itself).
pub trait IntoParallelIterator {
    /// Element type of the resulting iterator.
    type Item: Send;
    /// The resulting parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// Shared-slice entry points (`par_iter`, `par_chunks`).
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over shared references.
    fn par_iter(&self) -> SliceIter<'_, T>;
    /// Parallel iterator over `size`-element chunks.
    fn par_chunks(&self, size: usize) -> ChunksIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> SliceIter<'_, T> {
        SliceIter { slice: self }
    }
    fn par_chunks(&self, size: usize) -> ChunksIter<'_, T> {
        assert!(size > 0, "chunk size must be positive");
        ChunksIter { slice: self, size }
    }
}

/// Mutable-slice entry points (`par_iter_mut`, `par_chunks_mut`).
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over mutable references.
    fn par_iter_mut(&mut self) -> SliceIterMut<'_, T>;
    /// Parallel iterator over mutable `size`-element chunks.
    fn par_chunks_mut(&mut self, size: usize) -> ChunksIterMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> SliceIterMut<'_, T> {
        SliceIterMut { slice: self }
    }
    fn par_chunks_mut(&mut self, size: usize) -> ChunksIterMut<'_, T> {
        assert!(size > 0, "chunk size must be positive");
        ChunksIterMut { slice: self, size }
    }
}

// ---------------------------------------------------------------------------
// Producers.
// ---------------------------------------------------------------------------

/// Parallel iterator over `&T` items of a slice.
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;
    type SeqIter = std::slice::Iter<'a, T>;
    fn len(&self) -> usize {
        self.slice.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at(index);
        (SliceIter { slice: l }, SliceIter { slice: r })
    }
    fn into_seq_iter(self) -> Self::SeqIter {
        self.slice.iter()
    }
}

/// Parallel iterator over `&mut T` items of a slice.
pub struct SliceIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParallelIterator for SliceIterMut<'a, T> {
    type Item = &'a mut T;
    type SeqIter = std::slice::IterMut<'a, T>;
    fn len(&self) -> usize {
        self.slice.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at_mut(index);
        (SliceIterMut { slice: l }, SliceIterMut { slice: r })
    }
    fn into_seq_iter(self) -> Self::SeqIter {
        self.slice.iter_mut()
    }
}

/// Parallel iterator over shared chunks of a slice.
pub struct ChunksIter<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParallelIterator for ChunksIter<'a, T> {
    type Item = &'a [T];
    type SeqIter = std::slice::Chunks<'a, T>;
    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let elems = (index * self.size).min(self.slice.len());
        let (l, r) = self.slice.split_at(elems);
        (ChunksIter { slice: l, size: self.size }, ChunksIter { slice: r, size: self.size })
    }
    fn into_seq_iter(self) -> Self::SeqIter {
        self.slice.chunks(self.size)
    }
}

/// Parallel iterator over mutable chunks of a slice. Each chunk is a
/// disjoint `&mut [T]`, so concurrent tasks can never alias.
pub struct ChunksIterMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParallelIterator for ChunksIterMut<'a, T> {
    type Item = &'a mut [T];
    type SeqIter = std::slice::ChunksMut<'a, T>;
    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let elems = (index * self.size).min(self.slice.len());
        let (l, r) = self.slice.split_at_mut(elems);
        (ChunksIterMut { slice: l, size: self.size }, ChunksIterMut { slice: r, size: self.size })
    }
    fn into_seq_iter(self) -> Self::SeqIter {
        self.slice.chunks_mut(self.size)
    }
}

/// Parallel iterator over an integer range.
pub struct RangeIter<T> {
    start: T,
    end: T,
}

macro_rules! range_iter_impl {
    ($($t:ty),*) => {$(
        impl ParallelIterator for RangeIter<$t> {
            type Item = $t;
            type SeqIter = std::ops::Range<$t>;
            fn len(&self) -> usize {
                if self.end > self.start { (self.end - self.start) as usize } else { 0 }
            }
            fn split_at(self, index: usize) -> (Self, Self) {
                let mid = self.start + (index as $t).min(self.end.saturating_sub(self.start));
                (
                    RangeIter { start: self.start, end: mid },
                    RangeIter { start: mid, end: self.end },
                )
            }
            fn into_seq_iter(self) -> Self::SeqIter {
                self.start..self.end
            }
        }

        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Iter = RangeIter<$t>;
            fn into_par_iter(self) -> RangeIter<$t> {
                RangeIter { start: self.start, end: self.end }
            }
        }
    )*};
}

range_iter_impl!(u32, u64, usize, i32, i64, isize);

/// Parallel iterator over owned `Vec` items (splitting allocates via
/// `split_off`; fine at dispatch granularity).
pub struct VecIter<T> {
    vec: Vec<T>,
}

impl<T: Send> ParallelIterator for VecIter<T> {
    type Item = T;
    type SeqIter = std::vec::IntoIter<T>;
    fn len(&self) -> usize {
        self.vec.len()
    }
    fn split_at(mut self, index: usize) -> (Self, Self) {
        let tail = self.vec.split_off(index);
        (self, VecIter { vec: tail })
    }
    fn into_seq_iter(self) -> Self::SeqIter {
        self.vec.into_iter()
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecIter<T>;
    fn into_par_iter(self) -> VecIter<T> {
        VecIter { vec: self }
    }
}

impl<T: Send, const N: usize> IntoParallelIterator for [T; N] {
    type Item = T;
    type Iter = VecIter<T>;
    fn into_par_iter(self) -> VecIter<T> {
        VecIter { vec: self.into() }
    }
}

// ---------------------------------------------------------------------------
// Adaptors.
// ---------------------------------------------------------------------------

/// Positional pairing of two parallel iterators (length = shorter).
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: ParallelIterator, B: ParallelIterator> ParallelIterator for Zip<A, B> {
    type Item = (A::Item, B::Item);
    type SeqIter = std::iter::Zip<A::SeqIter, B::SeqIter>;
    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (al, ar) = self.a.split_at(index);
        let (bl, br) = self.b.split_at(index);
        (Zip { a: al, b: bl }, Zip { a: ar, b: br })
    }
    fn into_seq_iter(self) -> Self::SeqIter {
        self.a.into_seq_iter().zip(self.b.into_seq_iter())
    }
}

/// Index-attaching adaptor.
pub struct Enumerate<A> {
    base: usize,
    inner: A,
}

impl<A: ParallelIterator> ParallelIterator for Enumerate<A> {
    type Item = (usize, A::Item);
    type SeqIter = EnumerateSeq<A::SeqIter>;
    fn len(&self) -> usize {
        self.inner.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.inner.split_at(index);
        (Enumerate { base: self.base, inner: l }, Enumerate { base: self.base + index, inner: r })
    }
    fn into_seq_iter(self) -> Self::SeqIter {
        EnumerateSeq { next: self.base, inner: self.inner.into_seq_iter() }
    }
}

/// Sequential drain of [`Enumerate`]: like `std`'s `enumerate` but
/// starting from the split-adjusted base index.
pub struct EnumerateSeq<I> {
    next: usize,
    inner: I,
}

impl<I: Iterator> Iterator for EnumerateSeq<I> {
    type Item = (usize, I::Item);
    fn next(&mut self) -> Option<Self::Item> {
        let item = self.inner.next()?;
        let i = self.next;
        self.next += 1;
        Some((i, item))
    }
}

/// Mapping adaptor; the closure is cloned into each split half.
pub struct Map<A, F> {
    inner: A,
    f: F,
}

impl<A, R, F> ParallelIterator for Map<A, F>
where
    A: ParallelIterator,
    R: Send,
    F: Fn(A::Item) -> R + Sync + Send + Clone,
{
    type Item = R;
    type SeqIter = std::iter::Map<A::SeqIter, F>;
    fn len(&self) -> usize {
        self.inner.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.inner.split_at(index);
        (Map { inner: l, f: self.f.clone() }, Map { inner: r, f: self.f })
    }
    fn into_seq_iter(self) -> Self::SeqIter {
        self.inner.into_seq_iter().map(self.f)
    }
}

// Identity conversions so adaptor chains (`a.par_iter().zip(b.par_iter()
// .zip(c.par_iter()))`) type-check: every producer/adaptor is itself an
// `IntoParallelIterator`.
macro_rules! identity_into_par_iter {
    ($(($($gen:tt)*) $ty:ty [$($bound:tt)*]),* $(,)?) => {$(
        impl<$($gen)*> IntoParallelIterator for $ty
        where
            $($bound)*
        {
            type Item = <$ty as ParallelIterator>::Item;
            type Iter = $ty;
            fn into_par_iter(self) -> Self {
                self
            }
        }
    )*};
}

identity_into_par_iter! {
    ('a, T) SliceIter<'a, T> [T: Sync],
    ('a, T) SliceIterMut<'a, T> [T: Send],
    ('a, T) ChunksIter<'a, T> [T: Sync],
    ('a, T) ChunksIterMut<'a, T> [T: Send],
    (A, B) Zip<A, B> [A: ParallelIterator, B: ParallelIterator],
    (A) Enumerate<A> [A: ParallelIterator],
    (T) VecIter<T> [T: Send],
}

impl<A, R, F> IntoParallelIterator for Map<A, F>
where
    A: ParallelIterator,
    R: Send,
    F: Fn(A::Item) -> R + Sync + Send + Clone,
{
    type Item = R;
    type Iter = Map<A, F>;
    fn into_par_iter(self) -> Self {
        self
    }
}

macro_rules! identity_range_into_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for RangeIter<$t> {
            type Item = $t;
            type Iter = RangeIter<$t>;
            fn into_par_iter(self) -> Self {
                self
            }
        }
    )*};
}

identity_range_into_par_iter!(u32, u64, usize, i32, i64, isize);
