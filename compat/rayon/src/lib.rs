//! Offline shim for `rayon`: a **real multi-threaded parallel backend**
//! built on `std::thread` only (no registry dependencies).
//!
//! Earlier revisions of this shim aliased every `par_*` entry point to
//! a sequential std iterator; the kernels compiled but silently ran
//! single-threaded. This version executes them on a genuine
//! work-sharing thread pool:
//!
//! * a **global, lazily-initialized pool** sized by
//!   `std::thread::available_parallelism()` and overridable with the
//!   `TGI_NUM_THREADS` environment variable (`TGI_NUM_THREADS=1`
//!   guarantees fully sequential execution — no worker threads are
//!   spawned at all);
//! * splittable indexed parallel iterators — [`prelude::ParallelSlice`]
//!   (`par_iter`, `par_chunks`), [`prelude::ParallelSliceMut`]
//!   (`par_iter_mut`, `par_chunks_mut`),
//!   [`prelude::IntoParallelIterator`] over ranges, `Vec`s and arrays —
//!   with `zip`/`enumerate`/`map` adaptors and
//!   `for_each`/`sum`/`count`/`collect` consumers;
//! * a real [`join`] with work-stealing waits (a blocked joiner
//!   executes other queued jobs, so nested joins cannot deadlock);
//! * explicit pools via [`ThreadPoolBuilder`]/[`ThreadPool::install`],
//!   which the kernel oracle tests use to pin 1-, 2- and N-thread runs
//!   inside one process.
//!
//! Mutable iterators split via `split_at_mut`, so every parallel task
//! owns a disjoint `&mut` region: kernels whose tasks write disjoint
//! output chunks (GEMM, PTRANS, the LU trailing update) produce
//! bit-identical results at every thread count.
//!
//! Beyond the rayon API the shim adds two NUMA-awareness hooks (see
//! [`affinity`]): `TGI_PIN_THREADS=1` pins each worker to a CPU, and
//! [`resize_first_touch`] initializes large arrays in parallel chunks so
//! pages are first-touched by the workers that will stream them.

pub mod affinity;
mod iter;
mod pool;

pub use affinity::{pin_current_thread, resize_first_touch, PIN_THREADS_ENV};
pub use iter::{
    ChunksIter, ChunksIterMut, Enumerate, IntoParallelIterator, Map, ParallelIterator,
    ParallelSlice, ParallelSliceMut, RangeIter, SliceIter, SliceIterMut, VecIter, Zip,
};
pub use pool::{
    current_num_threads, join, ThreadPool, ThreadPoolBuildError, ThreadPoolBuilder, NUM_THREADS_ENV,
};

pub mod prelude {
    //! Glob-import surface matching `rayon::prelude::*`.
    pub use crate::iter::{
        IntoParallelIterator, ParallelIterator, ParallelSlice, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn pool(n: usize) -> super::ThreadPool {
        super::ThreadPoolBuilder::new().num_threads(n).build().unwrap()
    }

    #[test]
    fn entry_points_behave_like_std() {
        let mut v = vec![1, 2, 3, 4];
        assert_eq!(v.par_iter().sum::<i32>(), 10);
        v.par_iter_mut().for_each(|x| *x *= 2);
        assert_eq!(v, vec![2, 4, 6, 8]);
        let chunks: Vec<usize> = v.par_chunks(2).map(|c| c.len()).collect();
        assert_eq!(chunks, vec![2, 2]);
        v.par_chunks_mut(3).for_each(|c| c[0] = 0);
        assert_eq!(v[0], 0);
        assert_eq!((0u64..5).into_par_iter().count(), 5);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1, || "x");
        assert_eq!((a, b), (1, "x"));
    }

    #[test]
    fn thread_count_positive() {
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn install_pins_thread_count() {
        let p = pool(3);
        assert_eq!(p.current_num_threads(), 3);
        p.install(|| assert_eq!(super::current_num_threads(), 3));
        let p1 = pool(1);
        p1.install(|| assert_eq!(super::current_num_threads(), 1));
    }

    #[test]
    fn for_each_visits_every_item_exactly_once() {
        for threads in [1, 2, 4] {
            pool(threads).install(|| {
                let n = 10_000usize;
                let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
                (0..n).into_par_iter().for_each(|i| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                });
                assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
            });
        }
    }

    #[test]
    fn mutable_chunks_partition_exactly() {
        for threads in [1, 2, 4] {
            pool(threads).install(|| {
                let mut v = vec![0u64; 1003];
                v.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
                    for x in chunk.iter_mut() {
                        *x = i as u64 + 1;
                    }
                });
                for (k, &x) in v.iter().enumerate() {
                    assert_eq!(x, (k / 10) as u64 + 1);
                }
            });
        }
    }

    #[test]
    fn zip_of_zip_matches_sequential() {
        let a: Vec<f64> = (0..2000).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..2000).map(|i| 2.0 * i as f64).collect();
        let mut c = vec![0.0f64; 2000];
        pool(4).install(|| {
            c.par_iter_mut()
                .zip(a.par_iter().zip(b.par_iter()))
                .for_each(|(c, (a, b))| *c = a + 3.0 * b);
        });
        for i in 0..2000 {
            assert_eq!(c[i], a[i] + 3.0 * b[i]);
        }
    }

    #[test]
    fn map_sum_collect_agree_with_std() {
        let v: Vec<u64> = (0..5000).collect();
        let expected: u64 = v.iter().map(|x| x * 2).sum();
        pool(4).install(|| {
            let doubled: Vec<u64> = v.par_iter().map(|x| *x * 2).collect();
            assert_eq!(doubled.iter().sum::<u64>(), expected);
            assert_eq!(doubled, v.iter().map(|x| x * 2).collect::<Vec<_>>());
            assert_eq!(v.par_iter().map(|x| *x * 2).sum::<u64>(), expected);
        });
    }

    #[test]
    fn nested_join_computes_fibonacci() {
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = super::join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        for threads in [1, 2, 4, 8] {
            pool(threads).install(|| assert_eq!(fib(18), 2584));
        }
    }

    /// The ISSUE's deadlock stress: hammer the pool with deeply nested
    /// joins and many small `for_each` dispatches concurrently.
    #[test]
    fn stress_nested_joins_and_small_dispatches() {
        let p = pool(4);
        p.install(|| {
            let total = AtomicUsize::new(0);
            (0..64usize).into_par_iter().for_each(|_| {
                // Each task itself runs a nested parallel dispatch.
                let local: usize = (0..100usize).into_par_iter().map(|i| i).sum();
                assert_eq!(local, 4950);
                total.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(total.load(Ordering::Relaxed), 64);
            // Many tiny dispatches in a row (dispatch overhead path).
            for _ in 0..200 {
                let mut v = [0u32; 7];
                v.par_iter_mut().for_each(|x| *x += 1);
                assert_eq!(v.iter().sum::<u32>(), 7);
            }
        });
    }

    #[test]
    fn panic_in_task_propagates_to_caller() {
        let p = pool(4);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.install(|| {
                (0..100usize).into_par_iter().for_each(|i| {
                    if i == 57 {
                        panic!("boom at 57");
                    }
                });
            })
        }));
        let err = caught.expect_err("panic must propagate");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or("");
        assert!(msg.contains("boom"), "got {msg:?}");
        // The pool must still be usable afterwards.
        p.install(|| {
            assert_eq!((0..10usize).into_par_iter().sum::<usize>(), 45);
        });
    }

    /// Regression: a panic in the *inline* half of `join` must not
    /// unwind while the spawned half is still queued or running on a
    /// worker (the StackJob lives in the unwinding frame). Hammer the
    /// race with spawned halves of varying cost so the panic lands both
    /// before and after a worker steals the job.
    #[test]
    fn panicking_inline_half_of_join_is_memory_safe() {
        let p = pool(4);
        for round in 0..300usize {
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                p.install(|| {
                    super::join(
                        || panic!("inline boom"),
                        move || {
                            // Touch memory so a use-after-free has teeth
                            // under sanitizers; vary the duration to
                            // race the steal both ways.
                            let v: Vec<usize> = (0..(round % 64) * 16).collect();
                            std::hint::black_box(v.iter().sum::<usize>())
                        },
                    )
                })
            }));
            let err = caught.expect_err("inline panic must propagate");
            let msg = err.downcast_ref::<&str>().copied().unwrap_or("");
            assert!(msg.contains("inline boom"), "got {msg:?}");
        }
        // The pool must still be usable afterwards.
        p.install(|| assert_eq!((0..10usize).into_par_iter().sum::<usize>(), 45));
    }

    /// When both halves panic, the inline half's payload propagates and
    /// the spawned half's payload is discarded — without aborting the
    /// process via a double panic.
    #[test]
    fn both_join_halves_panicking_propagates_inline_payload() {
        let p = pool(2);
        for _ in 0..50 {
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                p.install(|| super::join(|| panic!("left"), || panic!("right")))
            }));
            let err = caught.expect_err("panic must propagate");
            let msg = err.downcast_ref::<&str>().copied().unwrap_or("");
            assert_eq!(msg, "left", "the inline half's payload wins");
        }
        p.install(|| assert_eq!((0..10usize).into_par_iter().sum::<usize>(), 45));
    }

    #[test]
    fn empty_and_single_item_iterators() {
        pool(4).install(|| {
            let empty: Vec<u32> = vec![];
            empty.par_iter().for_each(|_| panic!("no items"));
            assert_eq!((0u32..0).into_par_iter().count(), 0);
            let one = [41u32];
            assert_eq!(one.par_iter().map(|x| x + 1).sum::<u32>(), 42);
        });
    }

    #[test]
    fn enumerate_indices_are_global_after_splits() {
        pool(4).install(|| {
            let v = vec![7u8; 513];
            let idx: Vec<usize> = v.par_iter().enumerate().map(|(i, _)| i).collect();
            assert_eq!(idx, (0..513).collect::<Vec<_>>());
        });
    }
}
