//! Offline shim for `rayon`: the parallel-iterator entry points used by the
//! kernels (`par_iter`, `par_iter_mut`, `par_chunks`, `par_chunks_mut`,
//! `into_par_iter`) return **sequential** std iterators, so every downstream
//! adaptor (`zip`, `enumerate`, `map`, `for_each`, …) is the std one.
//!
//! Kernels therefore stay correct but run single-threaded under this shim;
//! real concurrency in this workspace uses `std::thread` directly (mini-MPI,
//! the suite runner, the background power sampler).

/// Number of threads rayon would use: the machine's available parallelism.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Runs two closures (sequentially under this shim) and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Anything iterable gains `into_par_iter`, yielding its sequential iterator.
pub trait IntoParallelIterator: IntoIterator + Sized {
    /// "Parallel" iterator over the collection (sequential here).
    fn into_par_iter(self) -> Self::IntoIter {
        self.into_iter()
    }
}

impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

/// Shared-slice entry points.
pub trait ParallelSlice<T> {
    /// "Parallel" iterator over shared references (sequential here).
    fn par_iter(&self) -> std::slice::Iter<'_, T>;
    /// "Parallel" iterator over `size`-element chunks (sequential here).
    fn par_chunks(&self, size: usize) -> std::slice::Chunks<'_, T>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> std::slice::Iter<'_, T> {
        self.iter()
    }
    fn par_chunks(&self, size: usize) -> std::slice::Chunks<'_, T> {
        self.chunks(size)
    }
}

/// Mutable-slice entry points.
pub trait ParallelSliceMut<T> {
    /// "Parallel" iterator over mutable references (sequential here).
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
    /// "Parallel" iterator over mutable chunks (sequential here).
    fn par_chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, T>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.iter_mut()
    }
    fn par_chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, T> {
        self.chunks_mut(size)
    }
}

pub mod prelude {
    //! Glob-import surface matching `rayon::prelude::*`.
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn entry_points_behave_like_std() {
        let mut v = vec![1, 2, 3, 4];
        assert_eq!(v.par_iter().sum::<i32>(), 10);
        v.par_iter_mut().for_each(|x| *x *= 2);
        assert_eq!(v, vec![2, 4, 6, 8]);
        let chunks: Vec<usize> = v.par_chunks(2).map(|c| c.len()).collect();
        assert_eq!(chunks, vec![2, 2]);
        v.par_chunks_mut(3).for_each(|c| c[0] = 0);
        assert_eq!(v[0], 0);
        assert_eq!((0u64..5).into_par_iter().count(), 5);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1, || "x");
        assert_eq!((a, b), (1, "x"));
    }

    #[test]
    fn thread_count_positive() {
        assert!(super::current_num_threads() >= 1);
    }
}
