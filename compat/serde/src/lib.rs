//! Offline shim for `serde`: `Serialize`/`Deserialize` traits over a simple
//! JSON-like [`Value`] data model, plus re-exported derive macros.
//!
//! Unlike upstream serde there is no zero-copy visitor machinery: serializing
//! builds a [`Value`] tree and deserializing consumes one. `serde_json` (the
//! sibling shim) renders and parses that tree. The derive macros in
//! `serde_derive` generate impls of these traits.

use std::collections::BTreeMap;
use std::path::PathBuf;

/// A JSON-like value tree: the data model of this shim.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (f64 covers every number this workspace serializes).
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| Self::get_entry(o, key))
    }

    /// Looks up a key in an entry slice (used by derived code).
    pub fn get_entry<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
        entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Deserialization error: a human-readable message with context.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into the [`Value`] data model.
pub trait Serialize {
    /// Builds the value tree for `self`.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parses `self` out of a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// Re-export the derive macros under the trait names, as upstream serde does.
pub use serde_derive::{Deserialize, Serialize};

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// Identity impls: a `Value` is already in the data model, so parsing into
// one (`serde_json::from_str::<Value>`) keeps the raw tree — useful for
// inspecting arbitrary JSON (e.g. exported telemetry traces) in tests.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::new("expected boolean"))
    }
}

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_f64().ok_or_else(|| DeError::new("expected number"))?;
                let cast = n as $t;
                // Integer targets must round-trip exactly; float targets always do.
                if (cast as f64 - n).abs() > f64::EPSILON * n.abs().max(1.0) {
                    return Err(DeError::new(format!(
                        "number {n} does not fit in {}",
                        stringify!($t)
                    )));
                }
                Ok(cast)
            }
        }
    )*};
}
impl_num!(f64, f32, usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str().map(str::to_string).ok_or_else(|| DeError::new("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for PathBuf {
    fn to_value(&self) -> Value {
        Value::Str(self.display().to_string())
    }
}

impl Deserialize for PathBuf {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(PathBuf::from(String::from_value(v)?))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::new("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let a = v.as_array().ok_or_else(|| DeError::new("expected 2-element array"))?;
        if a.len() != 2 {
            return Err(DeError::new("expected 2-element array"));
        }
        Ok((A::from_value(&a[0])?, B::from_value(&a[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let a = v.as_array().ok_or_else(|| DeError::new("expected 3-element array"))?;
        if a.len() != 3 {
            return Err(DeError::new("expected 3-element array"));
        }
        Ok((A::from_value(&a[0])?, B::from_value(&a[1])?, C::from_value(&a[2])?))
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::new("expected object"))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(f64::from_value(&3.5f64.to_value()).unwrap(), 3.5);
        assert_eq!(usize::from_value(&7usize.to_value()).unwrap(), 7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"x".to_string().to_value()).unwrap(), "x");
    }

    #[test]
    fn integer_precision_guard() {
        // 2^53 + 1 is not representable in f64; parsing into u64 from a
        // rounded value must still be self-consistent.
        assert!(usize::from_value(&Value::Num(1.5)).is_err());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1.0f64, 2.0];
        assert_eq!(Vec::<f64>::from_value(&v.to_value()).unwrap(), v);
        let p: Option<f64> = None;
        assert_eq!(Option::<f64>::from_value(&p.to_value()).unwrap(), None);
        let t = (1.0f64, 2.0f64);
        assert_eq!(<(f64, f64)>::from_value(&t.to_value()).unwrap(), t);
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1.0f64);
        assert_eq!(BTreeMap::<String, f64>::from_value(&m.to_value()).unwrap(), m);
    }

    #[test]
    fn object_lookup() {
        let v = Value::Object(vec![("k".into(), Value::Num(1.0))]);
        assert_eq!(v.get("k").and_then(Value::as_f64), Some(1.0));
        assert!(v.get("missing").is_none());
    }
}
