//! Offline shim for `proptest`: the `proptest!` macro, `Strategy` trait, and
//! the strategies this workspace uses (numeric ranges, tuples,
//! `collection::vec`, `prop_flat_map`/`prop_map`).
//!
//! Differences from upstream: cases are generated from a deterministic
//! generator seeded by the test function's name, and failing cases are **not
//! shrunk** — the assertion failure reports the raw inputs instead.

/// Runner configuration; only the case count is honored.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

pub mod test_runner {
    //! Deterministic case generation for the `proptest!` macro.

    use super::ProptestConfig;

    /// Drives case generation: a SplitMix64 stream seeded by the test name.
    pub struct TestRunner {
        cases: u32,
        state: u64,
    }

    impl TestRunner {
        /// Builds a runner whose stream is a pure function of `test_name`.
        pub fn new_deterministic(config: ProptestConfig, test_name: &str) -> Self {
            let mut seed = 0xcbf29ce484222325u64; // FNV-1a
            for b in test_name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x100000001b3);
            }
            TestRunner { cases: config.cases, state: seed }
        }

        /// Number of cases to run.
        pub fn cases(&self) -> u32 {
            self.cases
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// A uniform draw from `[0, 1)`.
        pub fn next_unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! The `Strategy` trait and combinators.

    use super::test_runner::TestRunner;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, runner: &mut TestRunner) -> Self::Value;

        /// Derives a new strategy from each generated value.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { base: self, f }
        }

        /// Maps generated values through a function.
        fn prop_map<B, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> B,
        {
            Map { base: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, runner: &mut TestRunner) -> Self::Value {
            (self.f)(self.base.generate(runner)).generate(runner)
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, B, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> B,
    {
        type Value = B;
        fn generate(&self, runner: &mut TestRunner) -> Self::Value {
            (self.f)(self.base.generate(runner))
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, runner: &mut TestRunner) -> f64 {
            self.start + (self.end - self.start) * runner.next_unit_f64()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, runner: &mut TestRunner) -> $t {
                    let span = (self.end as i128 - self.start as i128) as u64;
                    assert!(span > 0, "cannot sample an empty range");
                    (self.start as i128 + (runner.next_u64() % span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32);

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, runner: &mut TestRunner) -> f64 {
            self.start() + (self.end() - self.start()) * runner.next_unit_f64()
        }
    }

    macro_rules! int_range_inclusive_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, runner: &mut TestRunner) -> $t {
                    let span = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                    (*self.start() as i128 + (runner.next_u64() % span) as i128) as $t
                }
            }
        )*};
    }
    int_range_inclusive_strategy!(usize, u64, u32, u16, u8, isize, i64, i32);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn generate(&self, runner: &mut TestRunner) -> Self::Value {
            (self.0.generate(runner), self.1.generate(runner))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn generate(&self, runner: &mut TestRunner) -> Self::Value {
            (self.0.generate(runner), self.1.generate(runner), self.2.generate(runner))
        }
    }

    /// Reference to a strategy is itself a strategy (lets closures reuse one).
    impl<S: Strategy> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, runner: &mut TestRunner) -> Self::Value {
            (**self).generate(runner)
        }
    }

    /// A strategy that always yields clones of one value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _runner: &mut TestRunner) -> T {
            self.0.clone()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRunner;

    /// Uniform over `{true, false}`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The any-bool strategy constant, as `proptest::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, runner: &mut TestRunner) -> bool {
            runner.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRunner;
    use std::ops::Range;

    /// Vector lengths: a fixed size or a range of sizes.
    #[derive(Debug, Clone)]
    pub enum SizeRange {
        /// Exactly this many elements.
        Fixed(usize),
        /// Uniformly drawn from `[start, end)`.
        Span(usize, usize),
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange::Fixed(n)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange::Span(r.start, r.end)
        }
    }

    /// Strategy for vectors of `element` values with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy produced by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, runner: &mut TestRunner) -> Self::Value {
            let n = match self.size {
                SizeRange::Fixed(n) => n,
                SizeRange::Span(lo, hi) => {
                    assert!(hi > lo, "cannot sample an empty size range");
                    lo + (runner.next_u64() % (hi - lo) as u64) as usize
                }
            };
            (0..n).map(|_| self.element.generate(runner)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.
    pub use super::strategy::{Just, Strategy};
    pub use super::{prop_assert, prop_assert_eq, proptest, ProptestConfig};
}

/// Runs each property over generated cases.
///
/// Supports an optional leading `#![proptest_config(...)]`, then any number
/// of `#[attr] fn name(bindings) { body }` items where bindings are
/// `pattern in strategy` pairs. No shrinking is performed.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new_deterministic(
                config,
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..runner.cases() {
                let _ = case;
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut runner);)+
                $body
            }
        }
    )*};
}

/// Asserts a property holds for the current case (no shrinking: plain assert).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Asserts two expressions are equal for the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range strategies stay within bounds.
        #[test]
        fn in_range(x in 0.25..0.75f64, n in 3usize..9) {
            prop_assert!((0.25..0.75).contains(&x));
            prop_assert!((3..9).contains(&n));
        }

        /// Tuple patterns destructure generated tuples.
        #[test]
        fn tuples((a, b) in (0.0..1.0f64, 1u64..5)) {
            prop_assert!(a < 1.0);
            prop_assert!((1..5).contains(&b));
        }
    }

    proptest! {
        /// `collection::vec` honors fixed and ranged sizes; flat_map chains.
        #[test]
        fn vec_sizes(
            fixed in crate::collection::vec(0.0..1.0f64, 4),
            ranged in crate::collection::vec(0.0..1.0f64, 1..6),
            (xs, ys) in (2usize..8).prop_flat_map(|n| (
                crate::collection::vec(0.0..1.0f64, n),
                crate::collection::vec(0.0..1.0f64, n),
            )),
        ) {
            prop_assert_eq!(fixed.len(), 4);
            prop_assert!((1..6).contains(&ranged.len()));
            prop_assert_eq!(xs.len(), ys.len());
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let mut a =
            crate::test_runner::TestRunner::new_deterministic(ProptestConfig::with_cases(1), "t");
        let mut b =
            crate::test_runner::TestRunner::new_deterministic(ProptestConfig::with_cases(1), "t");
        assert_eq!((0.0..1.0f64).generate(&mut a), (0.0..1.0f64).generate(&mut b));
    }
}
