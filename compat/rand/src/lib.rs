//! Offline shim for `rand` 0.8: `StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen`/`gen_range`, and `distributions::{Distribution, Uniform}`.
//!
//! The generator is SplitMix64-seeded xoshiro-style, deterministic for a
//! given seed but **not** bit-compatible with upstream `StdRng`.

/// Core trait for generators: produce uniformly distributed raw bits.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable from the "standard" distribution of their type.
pub trait Standard {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from a range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Concrete generator types.

    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (SplitMix64-based shim).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64: passes BigCrush for this use (test data generation).
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed.wrapping_mul(0x9E3779B97F4A7C15) ^ 0xD1B54A32D192ED03 }
        }
    }
}

pub mod distributions {
    //! Distributions over value ranges.

    use super::{RngCore, Standard};

    /// Something that can be sampled with a generator.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[low, high)`.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        low: T,
        high: T,
    }

    impl Uniform<f64> {
        /// Uniform over `[low, high)`.
        pub fn new(low: f64, high: f64) -> Self {
            assert!(low < high, "Uniform requires low < high");
            Uniform { low, high }
        }
    }

    impl Distribution<f64> for Uniform<f64> {
        fn sample<R: RngCore>(&self, rng: &mut R) -> f64 {
            self.low + (self.high - self.low) * f64::sample_standard(rng)
        }
    }

    pub mod uniform {
        //! Range sampling used by `Rng::gen_range`.

        use super::super::{RngCore, Standard};
        use std::ops::Range;

        /// A range a value can be drawn from.
        pub trait SampleRange<T> {
            /// Draws one value uniformly from the range.
            fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
        }

        impl SampleRange<f64> for Range<f64> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
                self.start + (self.end - self.start) * f64::sample_standard(rng)
            }
        }

        macro_rules! int_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                        let span = (self.end - self.start) as u64;
                        assert!(span > 0, "cannot sample an empty range");
                        self.start + (rng.next_u64() % span) as $t
                    }
                }
            )*};
        }
        int_range!(usize, u64, u32, i64, i32);
    }
}

pub use rngs::StdRng;

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let d = Uniform::new(-0.5, 0.5);
        let mut sum = 0.0;
        for _ in 0..2000 {
            let x = d.sample(&mut rng);
            assert!((-0.5..0.5).contains(&x));
            sum += x;
        }
        assert!((sum / 2000.0).abs() < 0.05, "mean should be near 0");
    }

    #[test]
    fn gen_range_ints() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let v: usize = rng.gen_range(3..10usize);
            assert!((3..10).contains(&v));
        }
    }
}
